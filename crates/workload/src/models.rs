//! Deriving communication ratios from real training setups.
//!
//! §2.1 *assumes* a 10 % communication ratio, citing the Alibaba HPN
//! workload. This module derives that number from first principles — a
//! model size, a parallelism layout, a batch size, and GPU/link specs —
//! so users can check how the assumption shifts for their own jobs and
//! feed the result straight into the what-if engine via
//! [`TrainingSetup::to_iteration_model`].
//!
//! The compute model is the standard `6 · params · tokens` FLOPs rule for
//! dense transformer training; the communication model is the
//! bandwidth-optimal ring all-reduce of bf16 gradients within each
//! data-parallel group (tensor/pipeline traffic is assumed overlapped or
//! minor, consistent with the paper's bulk-synchronous view).

use serde::{Deserialize, Serialize};

use npp_units::{Bytes, Gbps, Ratio, Seconds};

use crate::collectives::{allreduce_time, AllReduceAlgo};
use crate::iteration::IterationModel;
use crate::{Iteration, Result, WorkloadError};

/// GPU compute characteristics for training-time estimation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Dense bf16 throughput, in TFLOP/s.
    pub bf16_tflops: f64,
    /// Model FLOPs utilization actually achieved (0–1; ~0.35–0.45 for
    /// large-scale H100 training).
    pub mfu: f64,
}

impl GpuSpec {
    /// Nvidia H100 (SXM dense bf16 ≈ 989 TFLOP/s) at 40 % MFU.
    pub fn h100() -> Self {
        Self {
            bf16_tflops: 989.0,
            mfu: 0.40,
        }
    }

    /// Effective FLOP/s.
    pub fn effective_flops(&self) -> f64 {
        self.bf16_tflops * 1e12 * self.mfu
    }
}

/// A dense transformer model, by parameter count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LlmModel {
    /// Model name.
    pub name: String,
    /// Parameter count.
    pub parameters: f64,
}

impl LlmModel {
    /// A 7 B-parameter model.
    pub fn dense_7b() -> Self {
        Self {
            name: "dense-7B".into(),
            parameters: 7e9,
        }
    }

    /// A 70 B-parameter model (Llama-3-70B scale).
    pub fn dense_70b() -> Self {
        Self {
            name: "dense-70B".into(),
            parameters: 70e9,
        }
    }

    /// A 405 B-parameter model (Llama-3.1-405B scale).
    pub fn dense_405b() -> Self {
        Self {
            name: "dense-405B".into(),
            parameters: 405e9,
        }
    }

    /// Gradient volume in bf16 (2 bytes per parameter).
    pub fn gradient_bytes(&self) -> Bytes {
        Bytes::new(self.parameters * 2.0)
    }
}

/// A concrete training configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingSetup {
    /// The model being trained.
    pub model: LlmModel,
    /// GPU type.
    pub gpu: GpuSpec,
    /// Tensor-parallel degree (within a server, typically ≤ 8).
    pub tensor_parallel: usize,
    /// Pipeline-parallel degree.
    pub pipeline_parallel: usize,
    /// Data-parallel degree.
    pub data_parallel: usize,
    /// Tokens per global batch (per iteration).
    pub batch_tokens: f64,
    /// Per-GPU network interface speed.
    pub link: Gbps,
}

impl TrainingSetup {
    /// A setup mirroring the paper's baseline pod: 15,360 H100s at 400 G
    /// training a 70 B dense model with TP 8 × PP 12 × DP 160 and an 8 M
    /// token global batch.
    pub fn paper_pod_70b() -> Self {
        Self {
            model: LlmModel::dense_70b(),
            gpu: GpuSpec::h100(),
            tensor_parallel: 8,
            pipeline_parallel: 12,
            data_parallel: 160,
            batch_tokens: 8e6,
            link: Gbps::new(400.0),
        }
    }

    /// Total GPU count.
    pub fn gpus(&self) -> usize {
        self.tensor_parallel * self.pipeline_parallel * self.data_parallel
    }

    fn validate(&self) -> Result<()> {
        if self.tensor_parallel == 0 || self.pipeline_parallel == 0 || self.data_parallel == 0 {
            return Err(WorkloadError::TooFewParticipants(0));
        }
        if self.batch_tokens <= 0.0 {
            return Err(WorkloadError::NonPositive {
                what: "batch_tokens",
                value: self.batch_tokens,
            });
        }
        if self.gpu.mfu <= 0.0 || self.gpu.bf16_tflops <= 0.0 {
            return Err(WorkloadError::NonPositive {
                what: "gpu spec",
                value: self.gpu.mfu,
            });
        }
        Ok(())
    }

    /// Computation-phase time: `6 · P · tokens / (gpus · effective FLOPs)`.
    ///
    /// # Errors
    ///
    /// Rejects degenerate configurations.
    pub fn compute_time(&self) -> Result<Seconds> {
        self.validate()?;
        let flops = 6.0 * self.model.parameters * self.batch_tokens;
        Ok(Seconds::new(
            flops / (self.gpus() as f64 * self.gpu.effective_flops()),
        ))
    }

    /// Communication-phase time: ring all-reduce of each rank's gradient
    /// shard (`P / (tp·pp)` parameters in bf16) across the `dp` group at
    /// the per-GPU link speed.
    ///
    /// # Errors
    ///
    /// Rejects degenerate configurations; a data-parallel degree of 1
    /// yields zero communication.
    pub fn comm_time(&self) -> Result<Seconds> {
        self.validate()?;
        if self.data_parallel < 2 {
            return Ok(Seconds::ZERO);
        }
        let shard = Bytes::new(
            self.model.gradient_bytes().value()
                / (self.tensor_parallel * self.pipeline_parallel) as f64,
        );
        allreduce_time(AllReduceAlgo::Ring, self.data_parallel, shard, self.link)
    }

    /// The full iteration.
    ///
    /// # Errors
    ///
    /// Propagates validation errors.
    pub fn iteration(&self) -> Result<Iteration> {
        Ok(Iteration {
            compute: self.compute_time()?,
            comm: self.comm_time()?,
        })
    }

    /// The derived communication ratio.
    ///
    /// # Errors
    ///
    /// Propagates validation errors.
    pub fn comm_ratio(&self) -> Result<Ratio> {
        Ok(self.iteration()?.comm_ratio())
    }

    /// Converts to an [`IterationModel`] usable by the `npp-core` what-if
    /// engine (reference point = this setup).
    ///
    /// # Errors
    ///
    /// Propagates validation errors; requires nonzero communication.
    pub fn to_iteration_model(&self) -> Result<IterationModel> {
        let iter = self.iteration()?;
        if iter.comm.value() <= 0.0 {
            return Err(WorkloadError::InvalidCommRatio(0.0));
        }
        Ok(IterationModel {
            base_compute: iter.compute,
            base_comm: iter.comm,
            reference_gpus: self.gpus() as f64,
            reference_bandwidth: self.link,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_pod_derives_close_to_the_assumed_10_percent() {
        // The §2.1 assumption, recovered from first principles: the
        // 70B/15,360-GPU pod lands near a 10% communication ratio.
        let setup = TrainingSetup::paper_pod_70b();
        assert_eq!(setup.gpus(), 15_360);
        let ratio = setup.comm_ratio().unwrap();
        assert!(
            (ratio.percent() - 10.0).abs() < 4.0,
            "derived comm ratio {ratio} should be near the paper's 10%"
        );
    }

    #[test]
    fn bigger_models_at_same_cluster_shift_the_ratio_down() {
        // More parameters: compute grows linearly with P, and so does the
        // gradient volume — but the batch also typically grows. At fixed
        // batch, the ratio is invariant in P (both scale with P), so the
        // lever is the batch size.
        let small_batch = TrainingSetup {
            batch_tokens: 8e6,
            ..TrainingSetup::paper_pod_70b()
        };
        let large_batch = TrainingSetup {
            batch_tokens: 64e6,
            ..TrainingSetup::paper_pod_70b()
        };
        assert!(
            large_batch.comm_ratio().unwrap() < small_batch.comm_ratio().unwrap(),
            "larger batches amortize the all-reduce"
        );
    }

    #[test]
    fn faster_links_cut_comm_time_linearly() {
        let at_400 = TrainingSetup::paper_pod_70b();
        let at_800 = TrainingSetup {
            link: Gbps::new(800.0),
            ..at_400.clone()
        };
        let t400 = at_400.comm_time().unwrap();
        let t800 = at_800.comm_time().unwrap();
        assert!(t400.approx_eq(t800 * 2.0, 1e-9));
        // Compute is untouched.
        assert_eq!(
            at_400.compute_time().unwrap(),
            at_800.compute_time().unwrap()
        );
    }

    #[test]
    fn dp1_has_no_gradient_traffic() {
        let setup = TrainingSetup {
            data_parallel: 1,
            ..TrainingSetup::paper_pod_70b()
        };
        assert_eq!(setup.comm_time().unwrap(), Seconds::ZERO);
        assert!(setup.to_iteration_model().is_err());
    }

    #[test]
    fn to_iteration_model_round_trips() {
        let setup = TrainingSetup::paper_pod_70b();
        let model = setup.to_iteration_model().unwrap();
        let iter = model
            .iteration(
                setup.gpus() as f64,
                setup.link,
                crate::ScalingScenario::FixedWorkload,
            )
            .unwrap();
        let direct = setup.iteration().unwrap();
        assert!(iter.compute.approx_eq(direct.compute, 1e-12));
        assert!(iter.comm.approx_eq(direct.comm, 1e-12));
    }

    #[test]
    fn model_catalog() {
        assert_eq!(LlmModel::dense_7b().parameters, 7e9);
        assert_eq!(LlmModel::dense_70b().gradient_bytes(), Bytes::new(140e9));
        assert_eq!(LlmModel::dense_405b().parameters, 405e9);
        assert!((GpuSpec::h100().effective_flops() - 989e12 * 0.4).abs() < 1.0);
    }

    #[test]
    fn validation() {
        let mut s = TrainingSetup::paper_pod_70b();
        s.batch_tokens = 0.0;
        assert!(s.compute_time().is_err());
        let mut s = TrainingSetup::paper_pod_70b();
        s.data_parallel = 0;
        assert!(s.iteration().is_err());
        let mut s = TrainingSetup::paper_pod_70b();
        s.gpu.mfu = 0.0;
        assert!(s.comm_ratio().is_err());
    }
}

/// A mixture-of-experts model: only `active_parameters` participate per
/// token, but expert parallelism adds all-to-all dispatch traffic that
/// dense models do not have. The paper cites DeepSeek-V3 as a training
/// scheme that *overlaps* this communication — here we expose its volume
/// so the overlap analysis (`npp-core::overlap`) has a realistic input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MoeModel {
    /// Model name.
    pub name: String,
    /// Total parameter count (all experts).
    pub total_parameters: f64,
    /// Parameters active per token.
    pub active_parameters: f64,
    /// Bytes of activations dispatched per token per direction (hidden
    /// size × bytes/elem × routed experts).
    pub dispatch_bytes_per_token: f64,
}

impl MoeModel {
    /// A DeepSeek-V3-scale MoE: 671 B total / 37 B active parameters,
    /// 7168-wide hidden states in bf16 routed to 8 experts per token.
    pub fn deepseek_v3_like() -> Self {
        Self {
            name: "moe-671B-a37B".into(),
            total_parameters: 671e9,
            active_parameters: 37e9,
            dispatch_bytes_per_token: 7168.0 * 2.0 * 8.0,
        }
    }
}

/// Training configuration for an MoE model with expert parallelism.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MoeTrainingSetup {
    /// The model.
    pub model: MoeModel,
    /// GPU type.
    pub gpu: GpuSpec,
    /// Expert-parallel group size (all-to-all domain).
    pub expert_parallel: usize,
    /// Data-parallel degree (gradient all-reduce domain).
    pub data_parallel: usize,
    /// Number of MoE layers traversed per token (each pays a dispatch
    /// and a combine all-to-all).
    pub moe_layers: usize,
    /// Tokens per global batch.
    pub batch_tokens: f64,
    /// Per-GPU link speed.
    pub link: Gbps,
}

impl MoeTrainingSetup {
    /// A DeepSeek-V3-like pod on the paper's hardware: EP 64 × DP 240 =
    /// 15,360 GPUs at 400 G, 58 MoE layers, 8 M-token batches.
    pub fn paper_pod_moe() -> Self {
        Self {
            model: MoeModel::deepseek_v3_like(),
            gpu: GpuSpec::h100(),
            expert_parallel: 64,
            data_parallel: 240,
            moe_layers: 58,
            batch_tokens: 8e6,
            link: Gbps::new(400.0),
        }
    }

    /// Total GPUs.
    pub fn gpus(&self) -> usize {
        self.expert_parallel * self.data_parallel
    }

    fn validate(&self) -> Result<()> {
        if self.expert_parallel == 0 || self.data_parallel == 0 || self.moe_layers == 0 {
            return Err(WorkloadError::TooFewParticipants(0));
        }
        if self.batch_tokens <= 0.0 {
            return Err(WorkloadError::NonPositive {
                what: "batch_tokens",
                value: self.batch_tokens,
            });
        }
        Ok(())
    }

    /// Computation time: FLOPs follow the *active* parameters only.
    ///
    /// # Errors
    ///
    /// Rejects degenerate configurations.
    pub fn compute_time(&self) -> Result<Seconds> {
        self.validate()?;
        let flops = 6.0 * self.model.active_parameters * self.batch_tokens;
        Ok(Seconds::new(
            flops / (self.gpus() as f64 * self.gpu.effective_flops()),
        ))
    }

    /// Expert all-to-all time per iteration: each rank dispatches (and
    /// later combines) its tokens' routed activations to the EP group at
    /// every MoE layer, forward and backward (×2).
    ///
    /// # Errors
    ///
    /// Rejects degenerate configurations.
    pub fn alltoall_time(&self) -> Result<Seconds> {
        self.validate()?;
        if self.expert_parallel < 2 {
            return Ok(Seconds::ZERO);
        }
        let tokens_per_rank = self.batch_tokens / self.gpus() as f64;
        let ep = self.expert_parallel as f64;
        // Fraction of dispatched bytes leaving the rank: (ep−1)/ep.
        let bytes_per_layer =
            tokens_per_rank * self.model.dispatch_bytes_per_token * (ep - 1.0) / ep;
        // Dispatch + combine, forward + backward: ×4 per MoE layer.
        let total = Bytes::new(bytes_per_layer * 4.0 * self.moe_layers as f64);
        Ok(total.to_bits() / self.link)
    }

    /// Gradient all-reduce time: the *total* parameters are sharded over
    /// the EP group, each shard ring-reduced across DP.
    ///
    /// # Errors
    ///
    /// Rejects degenerate configurations.
    pub fn gradient_time(&self) -> Result<Seconds> {
        self.validate()?;
        if self.data_parallel < 2 {
            return Ok(Seconds::ZERO);
        }
        let shard = Bytes::new(self.model.total_parameters * 2.0 / self.expert_parallel as f64);
        allreduce_time(AllReduceAlgo::Ring, self.data_parallel, shard, self.link)
    }

    /// The full iteration (communication = all-to-all + gradients,
    /// serialized per the paper's no-overlap model).
    ///
    /// # Errors
    ///
    /// Propagates validation errors.
    pub fn iteration(&self) -> Result<Iteration> {
        Ok(Iteration {
            compute: self.compute_time()?,
            comm: self.alltoall_time()? + self.gradient_time()?,
        })
    }

    /// The derived communication ratio.
    ///
    /// # Errors
    ///
    /// Propagates validation errors.
    pub fn comm_ratio(&self) -> Result<Ratio> {
        Ok(self.iteration()?.comm_ratio())
    }
}

#[cfg(test)]
mod moe_tests {
    use super::*;

    #[test]
    fn moe_has_much_higher_comm_ratio_than_dense_at_same_active_compute() {
        // The overlap motivation the paper cites via DeepSeek: MoE
        // training is far more communication-intensive per FLOP.
        let moe = MoeTrainingSetup::paper_pod_moe();
        let dense = TrainingSetup::paper_pod_70b();
        let moe_ratio = moe.comm_ratio().unwrap();
        let dense_ratio = dense.comm_ratio().unwrap();
        assert!(
            moe_ratio.fraction() > 2.0 * dense_ratio.fraction(),
            "moe {moe_ratio} vs dense {dense_ratio}"
        );
        // And far beyond the paper's 10% assumption — no-overlap training
        // of MoE at this scale would waste the cluster, which is exactly
        // why DeepSeek overlaps (violating the paper's §2.2 assumption).
        assert!(moe_ratio.fraction() > 0.2, "moe ratio {moe_ratio}");
    }

    #[test]
    fn alltoall_scales_with_moe_layers_and_link() {
        let base = MoeTrainingSetup::paper_pod_moe();
        let deeper = MoeTrainingSetup {
            moe_layers: 116,
            ..base.clone()
        };
        assert!(deeper
            .alltoall_time()
            .unwrap()
            .approx_eq(base.alltoall_time().unwrap() * 2.0, 1e-9));
        let faster = MoeTrainingSetup {
            link: Gbps::new(800.0),
            ..base.clone()
        };
        assert!(faster
            .alltoall_time()
            .unwrap()
            .approx_eq(base.alltoall_time().unwrap() * 0.5, 1e-9));
    }

    #[test]
    fn ep1_has_no_alltoall_dp1_no_gradients() {
        let mut s = MoeTrainingSetup::paper_pod_moe();
        s.expert_parallel = 1;
        assert_eq!(s.alltoall_time().unwrap(), Seconds::ZERO);
        let mut s = MoeTrainingSetup::paper_pod_moe();
        s.data_parallel = 1;
        assert_eq!(s.gradient_time().unwrap(), Seconds::ZERO);
    }

    #[test]
    fn moe_validation() {
        let mut s = MoeTrainingSetup::paper_pod_moe();
        s.moe_layers = 0;
        assert!(s.iteration().is_err());
        let mut s = MoeTrainingSetup::paper_pod_moe();
        s.batch_tokens = -1.0;
        assert!(s.comm_ratio().is_err());
    }
}
