//! Scenario runners: one spec in, one deterministic metrics row out.
//!
//! Two evaluation paths share the [`Metrics`] shape:
//!
//! - **analytic** — the `npp-core` cluster model: average power under
//!   the spec's proportionality vs. a flat-power network baseline, and
//!   the iteration slowdown the chosen bandwidth costs;
//! - **simulation** — `npp-simnet`'s pipeline switch driven by a §4
//!   mechanism from `npp-mechanisms`, reporting achieved savings plus
//!   the loss/latency price.
//!
//! Runners must be pure functions of `(spec, seed)`: no wall-clock
//! values, no global RNG, no thread-dependent state. The sweep
//! executor's parallel == serial guarantee rests on this.

use serde::{Deserialize, Serialize};

use npp_core::savings::average_power;
use npp_power::Proportionality;
use npp_simnet::sources::{MergedSource, PoissonSource, TrafficSource};
use npp_simnet::switchsim::SwitchParams;
use npp_simnet::SimTime;
use npp_units::Gbps;

use npp_mechanisms::comparison::ml_workload;

use crate::spec::{ExperimentKind, FluidFabricSpec, ScenarioSpec, SimWorkload, SimulationSpec};
use crate::{Result, SweepError};

/// The deterministic per-scenario result row (this is what the cache
/// stores, keyed by the scenario's content hash).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct Metrics {
    /// Time-averaged power of the scenario's system, W.
    pub average_power_w: f64,
    /// Power of the same system with a flat (non-proportional) network
    /// — analytic path — or the all-on switch — simulation path, W.
    pub baseline_power_w: f64,
    /// `baseline_power_w - average_power_w`.
    pub power_saved_w: f64,
    /// Fractional saving vs. the baseline.
    pub savings: f64,
    /// Iteration-time inflation from the scenario's bandwidth:
    /// `(t_compute + t_comm) / t_compute`. 1.0 on the simulation path,
    /// where the switch mechanisms don't stretch iterations.
    pub slowdown: f64,
    /// Packet loss rate (simulation path; 0 analytically).
    pub loss_rate: f64,
    /// 99th-percentile switch latency, ns (simulation path; 0
    /// analytically).
    pub p99_latency_ns: f64,
}

/// Runs one scenario to completion on one worker thread.
///
/// # Errors
///
/// Propagates model, simulator, and spec-validation errors.
pub fn run_scenario(spec: &ScenarioSpec, seed: u64) -> Result<Metrics> {
    run_scenario_threaded(spec, seed, 1)
}

/// [`run_scenario`] with an explicit engine worker-thread count.
///
/// `threads` is an execution knob, not part of the scenario: every
/// thread count yields the bit-identical [`Metrics`] row (the fluid
/// path's sharded engine is digest-equal to its serial engine, and the
/// other paths are single-threaded regardless). It is therefore
/// excluded from the content hash that keys the result cache.
///
/// # Errors
///
/// Propagates model, simulator, and spec-validation errors.
pub fn run_scenario_threaded(spec: &ScenarioSpec, seed: u64, threads: usize) -> Result<Metrics> {
    match &spec.experiment {
        ExperimentKind::Analytic => run_analytic(spec),
        ExperimentKind::Simulation(sim) => run_simulation(sim, seed),
        ExperimentKind::FluidFabric(fab) => run_fluid_fabric(fab, threads),
    }
}

fn run_analytic(spec: &ScenarioSpec) -> Result<Metrics> {
    let cfg = spec.cluster_config()?;
    let scenario = spec.scaling.scenario();
    let power = average_power(&cfg, scenario)?;
    // The savings baseline: the identical cluster whose network burns
    // full power regardless of load (proportionality 0), as in Table 3.
    let flat = cfg
        .clone()
        .with_network_proportionality(Proportionality::FLAT);
    let baseline = average_power(&flat, scenario)?;

    let t_comp = cfg.workload.compute_time(cfg.gpus)?;
    let t_comm = cfg.workload.comm_time_fixed_workload(cfg.bandwidth)?;
    let slowdown = (t_comp.value() + t_comm.value()) / t_comp.value();

    let saved = baseline.value() - power.value();
    let savings_fraction = if baseline.value() > 0.0 {
        saved / baseline.value()
    } else {
        0.0
    };
    // Analytic scenarios have no simulated clock: one instant at t=0
    // carries the headline result into the trace.
    npp_telemetry::trace_event!("scenario.analytic", 0, savings_fraction);
    Ok(Metrics {
        average_power_w: power.value(),
        baseline_power_w: baseline.value(),
        power_saved_w: saved,
        savings: savings_fraction,
        slowdown,
        loss_rate: 0.0,
        p99_latency_ns: 0.0,
    })
}

fn run_simulation(sim: &SimulationSpec, seed: u64) -> Result<Metrics> {
    if sim.horizon_ms == 0 {
        return Err(SweepError::Spec(
            "simulation horizon must be positive".into(),
        ));
    }
    let params = SwitchParams::paper_51t2();
    let horizon = SimTime::from_millis(sim.horizon_ms);
    let mut source = build_source(sim, seed, horizon)?;
    npp_telemetry::trace_span!(begin "scenario.sim", 0);
    let outcome = sim
        .mechanism
        .run(params, sim.knobs(), source.as_mut(), horizon)?;
    npp_telemetry::trace_span!(end "scenario.sim", horizon.as_nanos());

    let all_on = params.max_power().value();
    let savings = outcome.savings.fraction();
    Ok(Metrics {
        average_power_w: all_on * (1.0 - savings),
        baseline_power_w: all_on,
        power_saved_w: all_on * savings,
        savings,
        slowdown: 1.0,
        loss_rate: outcome.loss_rate,
        p99_latency_ns: outcome.p99_latency_ns,
    })
}

/// Fluid path: runs the pod fat-tree scenario through the (optionally
/// component-sharded) max-min engine and prices ideal per-link
/// transceiver sleeping against always-on links, following the
/// `npp-mechanisms` fabric flow study.
fn run_fluid_fabric(fab: &FluidFabricSpec, threads: usize) -> Result<Metrics> {
    use npp_power::devices::DeviceDb;
    use npp_power::PowerModel;
    use npp_simnet::netsim::NetSim;
    use npp_simnet::scenarios::pod_fattree_scenario;

    if fab.flows == 0 {
        return Err(SweepError::Spec(
            "fluid fabric needs at least one flow".into(),
        ));
    }
    let scenario = pod_fattree_scenario(fab.flows)?;
    let mut sim = NetSim::new(scenario.topo.clone());
    scenario.inject_into(|at, s, d, b, p| sim.inject(at, s, d, b, p).map(|_| ()))?;
    npp_telemetry::trace_span!(begin "scenario.fluid_fabric", 0);
    sim.run_threads(threads)?;
    let makespan = sim
        .makespan()
        .ok_or_else(|| SweepError::Spec("fluid fabric simulated zero flows".into()))?;
    npp_telemetry::trace_span!(end "scenario.fluid_fabric", makespan.as_nanos());

    // The scenario's links all run at one speed; price one transceiver
    // pair per inter-switch link. With ideal sleeping a link burns power
    // only while transmitting, so its awake time is the race-to-idle
    // bound: bytes carried (both directions) over the line rate, capped
    // at the run — a link saturated in both directions the whole time is
    // simply awake the whole time.
    let speed = Gbps::new(400.0);
    let xcvr_pair_w = (DeviceDb::paper_baseline().transceiver(speed)?.max_power() * 2.0).value();
    let makespan_secs = makespan.as_seconds().value();
    let mut busy_joules = 0.0;
    let inter_switch = scenario.topo.inter_switch_links();
    for &lid in &inter_switch {
        let cap_bytes_per_sec = scenario
            .topo
            .link(lid)
            .ok_or_else(|| SweepError::Spec("inter-switch link id out of range".into()))?
            .capacity
            .value()
            * 1e9
            / 8.0;
        let wake_secs = (sim.link_bytes(lid) / cap_bytes_per_sec).min(makespan_secs);
        busy_joules += xcvr_pair_w * wake_secs;
    }
    let baseline_w = xcvr_pair_w * inter_switch.len() as f64;
    let average_w = if makespan_secs > 0.0 {
        busy_joules / makespan_secs
    } else {
        baseline_w
    };
    let saved = baseline_w - average_w;
    Ok(Metrics {
        average_power_w: average_w,
        baseline_power_w: baseline_w,
        power_saved_w: saved,
        savings: if baseline_w > 0.0 {
            saved / baseline_w
        } else {
            0.0
        },
        slowdown: 1.0,
        loss_rate: 0.0,
        p99_latency_ns: makespan.as_nanos() as f64,
    })
}

/// Builds the simulated traffic source. Stochastic workloads draw their
/// seeds from the scenario seed (itself a pure function of the spec),
/// so identical specs replay identical packet streams on any thread.
/// Shared with the PowerScope path ([`crate::power`]), which must offer
/// the bit-identical packet stream to reproduce the metrics run.
pub(crate) fn build_source(
    sim: &SimulationSpec,
    seed: u64,
    horizon: SimTime,
) -> Result<Box<dyn TrafficSource>> {
    match sim.workload {
        SimWorkload::MlPeriodic => Ok(Box::new(ml_workload(horizon))),
        SimWorkload::Poisson {
            rate_gbps,
            packet_bytes,
        } => {
            const PORTS: u64 = 4;
            let per_port = Gbps::new(rate_gbps / PORTS as f64);
            let sources = (0..PORTS)
                .map(|port| {
                    PoissonSource::new(
                        per_port,
                        packet_bytes,
                        port as usize,
                        SimTime::ZERO,
                        horizon,
                        seed ^ port.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    )
                    .map(|s| Box::new(s) as Box<dyn TrafficSource>)
                })
                .collect::<std::result::Result<Vec<_>, _>>()?;
            Ok(Box::new(MergedSource::new(sources)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npp_mechanisms::mechanism::Mechanism;

    #[test]
    fn analytic_baseline_matches_table3_zero_cell() {
        // At the paper baseline (400G, 10% proportionality is the
        // savings *knob* not the baseline): savings against flat must
        // be positive and modest, and slowdown is 1/(1-comm_ratio).
        let spec = ScenarioSpec::paper_baseline();
        let m = run_scenario(&spec, 1).unwrap();
        assert!(m.power_saved_w > 0.0);
        assert!(m.savings > 0.0 && m.savings < 0.2, "savings {}", m.savings);
        assert!(
            (m.slowdown - 1.0 / 0.9).abs() < 1e-9,
            "slowdown {}",
            m.slowdown
        );
        assert_eq!(m.loss_rate, 0.0);
    }

    #[test]
    fn analytic_power_slowdown_tradeoff() {
        // Lower bandwidth: less power, more slowdown — the Pareto axes.
        let mut fast = ScenarioSpec::paper_baseline();
        fast.network_proportionality = 0.9;
        let mut slow = fast.clone();
        slow.bandwidth_gbps = 100.0;
        let mf = run_scenario(&fast, 1).unwrap();
        let ms = run_scenario(&slow, 1).unwrap();
        assert!(ms.average_power_w < mf.average_power_w);
        assert!(ms.slowdown > mf.slowdown);
    }

    #[test]
    fn simulation_path_runs_and_is_seed_stable() {
        let mut spec = ScenarioSpec::paper_baseline();
        spec.experiment = ExperimentKind::Simulation(SimulationSpec {
            workload: SimWorkload::Poisson {
                rate_gbps: 10_000.0,
                packet_bytes: 1_500,
            },
            horizon_ms: 2,
            ..SimulationSpec::comparison_defaults(Mechanism::RateAdaptPerPipeline)
        });
        let a = run_scenario(&spec, 42).unwrap();
        let b = run_scenario(&spec, 42).unwrap();
        assert_eq!(a, b);
        assert!(a.savings > 0.0);
        let c = run_scenario(&spec, 43).unwrap();
        // Different seed, different packet stream (metrics may differ).
        assert!(c.savings > 0.0);
    }

    #[test]
    fn zero_horizon_rejected() {
        let mut spec = ScenarioSpec::paper_baseline();
        spec.experiment = ExperimentKind::Simulation(SimulationSpec {
            horizon_ms: 0,
            ..SimulationSpec::comparison_defaults(Mechanism::AllOn)
        });
        assert!(run_scenario(&spec, 1).is_err());
    }
}
