//! Serializable scenario and sweep specifications.
//!
//! A [`ScenarioSpec`] pins down one concrete experiment: cluster shape,
//! power-model overrides, workload, and whether it runs through the
//! analytic model (`npp-core`) or the switch simulator with a §4
//! mechanism (`npp-simnet` + `npp-mechanisms`). A [`SweepSpec`] is a
//! base scenario plus a list of [`Axis`] values; the cartesian product
//! of the axes expands into the concrete scenario grid (see
//! [`crate::grid`]).
//!
//! Every type rejects unknown fields so a typo in a spec file fails
//! loudly instead of silently running the wrong experiment.

use serde::{Deserialize, Serialize};

use npp_core::ClusterConfig;
use npp_mechanisms::mechanism::{Mechanism, MechanismKnobs};
use npp_power::Proportionality;
use npp_units::{Gbps, Seconds};
use npp_workload::{IterationModel, ScalingScenario};

use crate::{Result, SweepError};

/// How the cluster reacts to reduced bandwidth (Table 3's two columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScalingMode {
    /// Same job, longer communication phases.
    FixedWorkload,
    /// Job resized so the communication ratio stays constant.
    FixedCommRatio,
}

impl ScalingMode {
    /// The `npp-workload` scenario this mode selects.
    pub fn scenario(self) -> ScalingScenario {
        match self {
            ScalingMode::FixedWorkload => ScalingScenario::FixedWorkload,
            ScalingMode::FixedCommRatio => ScalingScenario::FixedCommRatio,
        }
    }
}

/// Traffic offered to the simulated switch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SimWorkload {
    /// The comparison harness's periodic ML pattern (1 ms iterations,
    /// 10 % communication, four ports). Deterministic by construction.
    MlPeriodic,
    /// Poisson arrivals at the given aggregate rate across four ports,
    /// seeded from the scenario's stable spec hash.
    Poisson {
        /// Aggregate mean offered rate, Gbit/s.
        rate_gbps: f64,
        /// Packet size, bytes.
        packet_bytes: u64,
    },
}

/// Simulation-path parameters: which mechanism runs, on what traffic,
/// for how long.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct SimulationSpec {
    /// The §4 mechanism under test.
    pub mechanism: Mechanism,
    /// Simulated horizon, ms.
    pub horizon_ms: u64,
    /// Controller interval, ns.
    pub control_interval_ns: u64,
    /// Controller utilization target in `(0, 1]`.
    pub target_utilization: f64,
    /// Offered traffic.
    pub workload: SimWorkload,
}

impl SimulationSpec {
    /// The comparison harness's setup for `mechanism`.
    pub fn comparison_defaults(mechanism: Mechanism) -> Self {
        let knobs = MechanismKnobs::default();
        Self {
            mechanism,
            horizon_ms: 10,
            control_interval_ns: knobs.control_interval_ns,
            target_utilization: knobs.target_utilization,
            workload: SimWorkload::MlPeriodic,
        }
    }

    /// The controller knobs this spec configures.
    pub fn knobs(&self) -> MechanismKnobs {
        MechanismKnobs {
            control_interval_ns: self.control_interval_ns,
            target_utilization: self.target_utilization,
        }
    }
}

/// Fluid fabric-simulation parameters: the component-sharded max-min
/// engine running the pod fat-tree scenario, priced for ideal per-link
/// transceiver sleeping. Worker-thread count is an *execution* option
/// ([`crate::SweepOptions::threads`]), never part of this spec — any
/// thread count produces the bit-identical result row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct FluidFabricSpec {
    /// Flows to inject (also picks the fabric tier — see
    /// `npp_simnet::scenarios::pod_fattree_scenario`).
    pub flows: usize,
}

/// Which evaluation path a scenario runs through.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ExperimentKind {
    /// Closed-form cluster power model (`npp-core`): §3 savings and
    /// slowdown numbers.
    Analytic,
    /// Event-driven switch simulation (`npp-simnet`) driving a §4
    /// mechanism (`npp-mechanisms`).
    Simulation(SimulationSpec),
    /// Flow-level max-min fluid simulation of a pod fat-tree fabric
    /// (`npp-simnet::netsim`, optionally component-sharded).
    FluidFabric(FluidFabricSpec),
}

/// One fully-specified experiment scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ScenarioSpec {
    /// GPU count (network endpoints).
    pub gpus: f64,
    /// Per-GPU interface bandwidth, Gbit/s.
    pub bandwidth_gbps: f64,
    /// Network power proportionality in `[0, 1]` (the paper's what-if
    /// knob; 0.10 is today's baseline).
    pub network_proportionality: f64,
    /// Override for compute proportionality (defaults to the §2.3.1
    /// value of 0.85 when absent).
    #[serde(default)]
    pub compute_proportionality: Option<f64>,
    /// Communication fraction of an iteration at the reference point.
    pub comm_ratio: f64,
    /// Optical transceivers per inter-switch link (2 in the paper).
    pub transceivers_per_link: f64,
    /// Bandwidth-scaling rule.
    pub scaling: ScalingMode,
    /// Evaluation path.
    pub experiment: ExperimentKind,
}

impl ScenarioSpec {
    /// The §2.1 baseline cluster on the analytic path.
    pub fn paper_baseline() -> Self {
        Self {
            gpus: 15_360.0,
            bandwidth_gbps: 400.0,
            network_proportionality: Proportionality::NETWORK_BASELINE.fraction(),
            compute_proportionality: None,
            comm_ratio: 0.1,
            transceivers_per_link: 2.0,
            scaling: ScalingMode::FixedWorkload,
            experiment: ExperimentKind::Analytic,
        }
    }

    /// Materializes the `npp-core` cluster configuration this spec
    /// describes.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range proportionalities and communication ratios.
    pub fn cluster_config(&self) -> Result<ClusterConfig> {
        let mut cfg = ClusterConfig::paper_baseline()
            .with_gpus(self.gpus)
            .with_bandwidth(Gbps::new(self.bandwidth_gbps))
            .with_network_proportionality(Proportionality::new(self.network_proportionality)?);
        if let Some(cp) = self.compute_proportionality {
            cfg.devices.compute_proportionality = Proportionality::new(cp)?;
        }
        cfg.transceivers_per_link = self.transceivers_per_link;
        cfg.workload = IterationModel::from_comm_ratio(
            self.comm_ratio,
            Seconds::new(1.0),
            cfg.workload.reference_gpus,
            cfg.workload.reference_bandwidth,
        )?;
        Ok(cfg)
    }

    /// The simulation parameters, if this is a simulation scenario.
    pub fn simulation(&self) -> Option<&SimulationSpec> {
        match &self.experiment {
            ExperimentKind::Simulation(sim) => Some(sim),
            ExperimentKind::Analytic | ExperimentKind::FluidFabric(_) => None,
        }
    }

    fn fluid_fabric_mut(&mut self) -> Result<&mut FluidFabricSpec> {
        match &mut self.experiment {
            ExperimentKind::FluidFabric(fab) => Ok(fab),
            ExperimentKind::Analytic | ExperimentKind::Simulation(_) => Err(SweepError::Spec(
                "fluid-fabric axis applied to a non-fluid base scenario; \
                 set base.experiment to FluidFabric"
                    .into(),
            )),
        }
    }

    fn simulation_mut(&mut self) -> Result<&mut SimulationSpec> {
        match &mut self.experiment {
            ExperimentKind::Simulation(sim) => Ok(sim),
            ExperimentKind::Analytic | ExperimentKind::FluidFabric(_) => Err(SweepError::Spec(
                "simulation axis applied to a non-simulation base scenario; \
                 set base.experiment to Simulation"
                    .into(),
            )),
        }
    }
}

/// One sweep dimension: the parameter to vary and the values to visit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Axis {
    /// GPU counts.
    Gpus(Vec<f64>),
    /// Per-GPU bandwidths, Gbit/s.
    BandwidthGbps(Vec<f64>),
    /// Network power proportionalities in `[0, 1]`.
    NetworkProportionality(Vec<f64>),
    /// Communication ratios in `(0, 1)`.
    CommRatio(Vec<f64>),
    /// Transceivers per inter-switch link.
    TransceiversPerLink(Vec<f64>),
    /// §4 mechanisms (simulation scenarios only).
    Mechanism(Vec<Mechanism>),
    /// Controller utilization targets (simulation scenarios only).
    TargetUtilization(Vec<f64>),
    /// Controller intervals, ns (simulation scenarios only).
    ControlIntervalNs(Vec<u64>),
    /// Concurrent flow counts (fluid-fabric scenarios only).
    FluidFlows(Vec<usize>),
}

impl Axis {
    /// The axis's display name.
    pub fn name(&self) -> &'static str {
        match self {
            Axis::Gpus(_) => "gpus",
            Axis::BandwidthGbps(_) => "bandwidth_gbps",
            Axis::NetworkProportionality(_) => "network_proportionality",
            Axis::CommRatio(_) => "comm_ratio",
            Axis::TransceiversPerLink(_) => "transceivers_per_link",
            Axis::Mechanism(_) => "mechanism",
            Axis::TargetUtilization(_) => "target_utilization",
            Axis::ControlIntervalNs(_) => "control_interval_ns",
            Axis::FluidFlows(_) => "fluid_flows",
        }
    }

    /// Number of values along this axis.
    pub fn len(&self) -> usize {
        match self {
            Axis::Gpus(v)
            | Axis::BandwidthGbps(v)
            | Axis::NetworkProportionality(v)
            | Axis::CommRatio(v)
            | Axis::TransceiversPerLink(v)
            | Axis::TargetUtilization(v) => v.len(),
            Axis::Mechanism(v) => v.len(),
            Axis::ControlIntervalNs(v) => v.len(),
            Axis::FluidFlows(v) => v.len(),
        }
    }

    /// `true` when the axis has no values (which makes the grid empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Display label for the `idx`-th value.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn label(&self, idx: usize) -> String {
        match self {
            Axis::Gpus(v)
            | Axis::BandwidthGbps(v)
            | Axis::NetworkProportionality(v)
            | Axis::CommRatio(v)
            | Axis::TransceiversPerLink(v)
            | Axis::TargetUtilization(v) => format!("{}", v[idx]),
            Axis::Mechanism(v) => format!("{:?}", v[idx]),
            Axis::ControlIntervalNs(v) => format!("{}", v[idx]),
            Axis::FluidFlows(v) => format!("{}", v[idx]),
        }
    }

    /// Writes the `idx`-th value into `spec`.
    ///
    /// # Errors
    ///
    /// Simulation-only axes fail on analytic base scenarios.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn apply(&self, idx: usize, spec: &mut ScenarioSpec) -> Result<()> {
        match self {
            Axis::Gpus(v) => spec.gpus = v[idx],
            Axis::BandwidthGbps(v) => spec.bandwidth_gbps = v[idx],
            Axis::NetworkProportionality(v) => spec.network_proportionality = v[idx],
            Axis::CommRatio(v) => spec.comm_ratio = v[idx],
            Axis::TransceiversPerLink(v) => spec.transceivers_per_link = v[idx],
            Axis::Mechanism(v) => spec.simulation_mut()?.mechanism = v[idx],
            Axis::TargetUtilization(v) => spec.simulation_mut()?.target_utilization = v[idx],
            Axis::ControlIntervalNs(v) => spec.simulation_mut()?.control_interval_ns = v[idx],
            Axis::FluidFlows(v) => spec.fluid_fabric_mut()?.flows = v[idx],
        }
        Ok(())
    }
}

/// A named sweep: base scenario plus the axes to expand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct SweepSpec {
    /// Sweep name, echoed in reports.
    pub name: String,
    /// The scenario every grid point starts from.
    pub base: ScenarioSpec,
    /// Sweep dimensions; the grid is their cartesian product. Empty
    /// axes are rejected at expansion.
    pub axes: Vec<Axis>,
}

impl SweepSpec {
    /// Total number of grid points (product of axis lengths; 1 with no
    /// axes).
    pub fn grid_size(&self) -> usize {
        self.axes.iter().map(Axis::len).product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_core_baseline() {
        let spec = ScenarioSpec::paper_baseline();
        let cfg = spec.cluster_config().unwrap();
        let reference = ClusterConfig::paper_baseline();
        assert_eq!(cfg.gpus, reference.gpus);
        assert_eq!(cfg.bandwidth, reference.bandwidth);
        assert!(
            (cfg.workload.comm_ratio().fraction() - reference.workload.comm_ratio().fraction())
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn rejects_bad_proportionality() {
        let mut spec = ScenarioSpec::paper_baseline();
        spec.network_proportionality = 1.5;
        assert!(spec.cluster_config().is_err());
    }

    #[test]
    fn simulation_axes_need_simulation_base() {
        let mut spec = ScenarioSpec::paper_baseline();
        let axis = Axis::Mechanism(vec![Mechanism::ParkReactive]);
        assert!(axis.apply(0, &mut spec).is_err());

        spec.experiment =
            ExperimentKind::Simulation(SimulationSpec::comparison_defaults(Mechanism::AllOn));
        axis.apply(0, &mut spec).unwrap();
        assert_eq!(
            spec.simulation().unwrap().mechanism,
            Mechanism::ParkReactive
        );
    }

    #[test]
    fn grid_size_is_axis_product() {
        let spec = SweepSpec {
            name: "t".into(),
            base: ScenarioSpec::paper_baseline(),
            axes: vec![
                Axis::BandwidthGbps(vec![100.0, 200.0, 400.0]),
                Axis::NetworkProportionality(vec![0.1, 0.5]),
            ],
        };
        assert_eq!(spec.grid_size(), 6);
    }
}
