//! PowerScope sweep path: per-device windowed power/energy documents.
//!
//! The metrics path ([`crate::runner`]) reduces each scenario to one
//! [`crate::Metrics`] row; this module re-runs the same grid but keeps
//! the *power timelines*. Every simulation scenario's switch is replayed
//! into an `npp_simnet::powerscope::Recorder`, producing windowed
//! residency/energy rows per device (pipelines plus chassis), and the
//! whole grid renders to one deterministic `npp.power/v1` JSONL
//! document.
//!
//! Invariants, inherited from the sweep engine and the recorder:
//!
//! - **parallel == serial, byte for byte** — scenarios run through the
//!   same index-addressed executor as the metrics path, the traffic
//!   source is seeded from the scenario content hash, and the renderer
//!   uses only the byte-stable `npp_telemetry::fmt` primitives;
//! - **energy is conserved bit for bit** — each device's window
//!   energies sum (in row order) to exactly the bits of its tracker's
//!   `energy_until(horizon)`; the recorder guarantees this and
//!   [`run_power_sweep`] re-checks it per device;
//! - **non-simulation paths degrade loudly** — analytic and
//!   fluid-fabric scenarios carry no per-device power timeline, so
//!   their documents say so instead of silently vanishing.

use serde::{Deserialize, Serialize};

use npp_power::Tier;
use npp_simnet::powerscope::{Recorder, WindowConfig, WindowRow, STATE_COUNT};
use npp_simnet::switchsim::SwitchParams;
use npp_simnet::SimTime;

use crate::spec::{ExperimentKind, SweepSpec};
use crate::{exec, grid, runner, Result, SweepError, SweepOptions};

/// One device of a scenario's power document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct PowerDevice {
    /// Stable device name (`s{index}/pipe{i}` or `s{index}/chassis`).
    pub name: String,
    /// Fabric tier of the device.
    pub tier: Tier,
    /// Peak electrical power, W.
    pub peak_w: f64,
    /// Total energy over the horizon, J — the in-order sum of this
    /// device's window energies, bit-identical to the simulator's own
    /// `energy_until(horizon)`.
    pub total_j: f64,
}

/// The power document of one grid scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioPower {
    /// Grid position (row-major over the axes).
    pub index: usize,
    /// `(axis, value)` coordinates in axis order.
    pub coords: Vec<(String, String)>,
    /// Content hash of the scenario spec.
    pub hash: String,
    /// Seed derived from the hash.
    pub seed: u64,
    /// Devices, in recorder registration order (pipelines then chassis).
    pub devices: Vec<PowerDevice>,
    /// Closed windows, ordered by close time then device.
    pub rows: Vec<WindowRow>,
    /// Why this scenario has no timeline (analytic / fluid paths).
    pub skipped: Option<&'static str>,
}

/// A full power sweep: one document per grid scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerSweepOutcome {
    /// Sweep name, echoed from the spec.
    pub name: String,
    /// Residency window width, ns.
    pub window_ns: u64,
    /// Per-scenario documents in grid order.
    pub scenarios: Vec<ScenarioPower>,
}

impl PowerSweepOutcome {
    /// Scenarios that produced device timelines.
    pub fn simulated(&self) -> impl Iterator<Item = &ScenarioPower> {
        self.scenarios.iter().filter(|s| s.skipped.is_none())
    }
}

/// Runs the sweep grid and collects windowed power documents.
///
/// `opts.jobs` fans scenarios out exactly like the metrics path;
/// `opts.threads` is accepted for CLI symmetry but the simulation path
/// is single-threaded regardless. The result cache is not consulted:
/// cached [`crate::Metrics`] rows cannot reproduce timelines.
///
/// # Errors
///
/// Propagates spec, simulator, and mechanism errors; fails if any
/// device's windowed energy does not conserve bit-for-bit.
pub fn run_power_sweep(
    spec: &SweepSpec,
    window_ns: u64,
    opts: &SweepOptions,
) -> Result<PowerSweepOutcome> {
    let cfg = WindowConfig::from_nanos(window_ns)?;
    let scenarios = grid::expand(spec)?;
    let total = scenarios.len();
    let jobs = opts.jobs.clamp(1, total.max(1));
    let outputs: Vec<Result<ScenarioPower>> = exec::run_indexed(total, jobs, |index| {
        let scenario = scenarios
            .get(index)
            .ok_or_else(|| SweepError::Spec(format!("grid index {index} out of range")))?;
        run_scenario_power(scenario, cfg)
    });
    let scenarios = outputs.into_iter().collect::<Result<Vec<_>>>()?;
    npp_telemetry::metrics::counter_add("powerscope.scenarios", total as u64);
    npp_telemetry::metrics::counter_add(
        "powerscope.rows",
        scenarios.iter().map(|s| s.rows.len() as u64).sum(),
    );
    Ok(PowerSweepOutcome {
        name: spec.name.clone(),
        window_ns,
        scenarios,
    })
}

fn run_scenario_power(scenario: &grid::Scenario, cfg: WindowConfig) -> Result<ScenarioPower> {
    let mut doc = ScenarioPower {
        index: scenario.index,
        coords: scenario.coords.clone(),
        hash: scenario.hash.clone(),
        seed: scenario.seed,
        devices: Vec::new(),
        rows: Vec::new(),
        skipped: None,
    };
    let sim = match &scenario.spec.experiment {
        ExperimentKind::Simulation(sim) => sim,
        ExperimentKind::Analytic => {
            doc.skipped = Some("analytic path has no device power timeline");
            return Ok(doc);
        }
        ExperimentKind::FluidFabric(_) => {
            doc.skipped = Some("fluid-fabric path has no per-device power timeline");
            return Ok(doc);
        }
    };
    if sim.horizon_ms == 0 {
        return Err(SweepError::Spec(
            "simulation horizon must be positive".into(),
        ));
    }
    let params = SwitchParams::paper_51t2();
    let horizon = SimTime::from_millis(sim.horizon_ms);
    let mut source = runner::build_source(sim, scenario.seed, horizon)?;
    let (_outcome, sw) = sim
        .mechanism
        .run_full(params, sim.knobs(), source.as_mut(), horizon)?;

    let mut rec = Recorder::new(cfg);
    let prefix = format!("s{}", scenario.index);
    // The paper's 51.2T switch is modeled as a ToR-class device.
    let keys = sw.record_powerscope(&mut rec, Tier::Tor, &prefix)?;
    rec.finish(horizon)?;
    doc.devices = rec
        .metas()
        .iter()
        .zip(&keys)
        .map(|(meta, &key)| PowerDevice {
            name: meta.name.clone(),
            tier: meta.tier,
            peak_w: meta.peak.value(),
            total_j: rec.emitted_energy(key).unwrap_or(0.0),
        })
        .collect();
    doc.rows = rec.drain_closed();

    // Defense in depth: the recorder proves conservation in its own
    // tests, but a power document is a claim about joules — re-sum the
    // rows and refuse to emit one that does not telescope exactly.
    for (dev, device) in doc.devices.iter().enumerate() {
        let sum = doc
            .rows
            .iter()
            .filter(|r| r.device == dev)
            .map(|r| r.energy_j)
            .fold(0.0, |a, b| a + b);
        if sum.to_bits() != device.total_j.to_bits() {
            return Err(SweepError::Spec(format!(
                "energy conservation violated for {}: windows sum to {sum:?}, tracker says {:?}",
                device.name, device.total_j
            )));
        }
    }
    Ok(doc)
}

/// Appends the `npp.power/v1` header line (with trailing newline).
///
/// `scenarios` is the number of scenario documents the stream will
/// carry — callers that stream (the diurnal CLI path) know it up front.
pub fn render_power_header(out: &mut String, name: &str, window_ns: u64, scenarios: u64) {
    use npp_telemetry::fmt::{push_escaped, push_u64};
    out.push_str("{\"schema\":\"npp.power/v1\",\"sweep\":\"");
    push_escaped(out, name);
    out.push_str("\",\"window_ns\":");
    push_u64(out, window_ns);
    out.push_str(",\"scenarios\":");
    push_u64(out, scenarios);
    out.push_str(",\"states\":[\"off\",\"waking\",\"on_low\",\"on_full\"]}\n");
}

/// Appends one `scenario` line (devices, coords, totals; trailing
/// newline).
pub fn render_scenario_line(out: &mut String, s: &ScenarioPower) {
    use npp_telemetry::fmt::{push_escaped, push_f64, push_hex16, push_u64};
    out.push_str("{\"kind\":\"scenario\",\"index\":");
    push_u64(out, s.index as u64);
    out.push_str(",\"hash\":\"");
    push_escaped(out, &s.hash);
    out.push_str("\",\"seed\":\"");
    push_hex16(out, s.seed);
    out.push_str("\",\"coords\":[");
    for (i, (axis, value)) in s.coords.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("[\"");
        push_escaped(out, axis);
        out.push_str("\",\"");
        push_escaped(out, value);
        out.push_str("\"]");
    }
    out.push_str("],\"devices\":[");
    for (i, d) in s.devices.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        push_escaped(out, &d.name);
        out.push_str("\",\"tier\":\"");
        out.push_str(d.tier.name());
        out.push_str("\",\"peak_w\":");
        push_f64(out, d.peak_w);
        out.push_str(",\"total_j\":");
        push_f64(out, d.total_j);
        out.push('}');
    }
    out.push(']');
    if let Some(reason) = s.skipped {
        out.push_str(",\"skipped\":\"");
        push_escaped(out, reason);
        out.push('"');
    }
    out.push_str("}\n");
}

/// Appends one `window` line for a row of scenario `scenario` (trailing
/// newline).
pub fn render_window_row(out: &mut String, scenario: u64, r: &WindowRow) {
    use npp_telemetry::fmt::{push_f64, push_u64};
    out.push_str("{\"kind\":\"window\",\"scenario\":");
    push_u64(out, scenario);
    out.push_str(",\"device\":");
    push_u64(out, r.device as u64);
    out.push_str(",\"window\":");
    push_u64(out, r.window);
    out.push_str(",\"start_ns\":");
    push_u64(out, r.start_ns);
    out.push_str(",\"end_ns\":");
    push_u64(out, r.end_ns);
    out.push_str(",\"energy_j\":");
    push_f64(out, r.energy_j);
    out.push_str(",\"events\":");
    push_u64(out, u64::from(r.events));
    out.push_str(",\"transitions\":");
    push_u64(out, u64::from(r.transitions));
    out.push_str(",\"residency_ns\":[");
    for (i, ns) in r.residency_ns.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_u64(out, *ns);
    }
    debug_assert_eq!(r.residency_ns.len(), STATE_COUNT);
    out.push_str("]}\n");
}

/// Renders the outcome as a deterministic `npp.power/v1` JSONL
/// document: one header line, then per scenario one `scenario` line
/// followed by its `window` lines. Built exclusively from the
/// byte-stable `npp_telemetry::fmt` primitives, so the bytes are
/// identical at any `--jobs`/`--threads` value.
pub fn render_power_jsonl(outcome: &PowerSweepOutcome) -> String {
    let mut out = String::new();
    render_power_header(
        &mut out,
        &outcome.name,
        outcome.window_ns,
        outcome.scenarios.len() as u64,
    );
    for s in &outcome.scenarios {
        render_scenario_line(&mut out, s);
        for r in &s.rows {
            render_window_row(&mut out, s.index as u64, r);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Axis, ScenarioSpec, SimulationSpec};
    use npp_mechanisms::mechanism::Mechanism;

    fn sim_spec() -> SweepSpec {
        let mut base = ScenarioSpec::paper_baseline();
        base.experiment = ExperimentKind::Simulation(SimulationSpec {
            horizon_ms: 2,
            ..SimulationSpec::comparison_defaults(Mechanism::AllOn)
        });
        SweepSpec {
            name: "power-unit".into(),
            base,
            axes: vec![Axis::Mechanism(vec![
                Mechanism::AllOn,
                Mechanism::RateAdaptPerPipeline,
                Mechanism::ParkPredictive,
            ])],
        }
    }

    #[test]
    fn power_sweep_emits_conserving_documents() {
        let outcome = run_power_sweep(&sim_spec(), 100_000, &SweepOptions::serial()).unwrap();
        assert_eq!(outcome.scenarios.len(), 3);
        for s in outcome.simulated() {
            // paper_51t2: 4 pipelines + chassis.
            assert_eq!(s.devices.len(), 5);
            assert!(!s.rows.is_empty());
            // 2 ms horizon, 100 µs windows → 20 windows per device.
            assert_eq!(s.rows.len(), 20 * s.devices.len());
            // The all-on scenario burns peak power in every window.
            if s.index == 0 {
                for d in &s.devices {
                    assert!((d.total_j - d.peak_w * 0.002).abs() < 1e-9, "{}", d.name);
                }
            }
        }
    }

    #[test]
    fn jobs_do_not_change_the_bytes() {
        let spec = sim_spec();
        let serial = run_power_sweep(&spec, 250_000, &SweepOptions::serial()).unwrap();
        let parallel = run_power_sweep(
            &spec,
            250_000,
            &SweepOptions {
                jobs: 8,
                cache_dir: None,
                threads: 1,
            },
        )
        .unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(
            render_power_jsonl(&serial),
            render_power_jsonl(&parallel),
            "npp.power/v1 bytes must be --jobs invariant"
        );
    }

    #[test]
    fn analytic_scenarios_degrade_loudly() {
        let spec = SweepSpec {
            name: "analytic".into(),
            base: ScenarioSpec::paper_baseline(),
            axes: vec![],
        };
        let outcome = run_power_sweep(&spec, 1_000_000, &SweepOptions::serial()).unwrap();
        assert_eq!(outcome.scenarios.len(), 1);
        let s = outcome.scenarios.first().unwrap();
        assert!(s.skipped.is_some());
        assert!(s.devices.is_empty() && s.rows.is_empty());
        let doc = render_power_jsonl(&outcome);
        assert!(doc.contains("\"skipped\":\"analytic path has no device power timeline\""));
    }

    #[test]
    fn jsonl_lines_are_valid_json_with_stable_header() {
        let outcome = run_power_sweep(&sim_spec(), 500_000, &SweepOptions::serial()).unwrap();
        let doc = render_power_jsonl(&outcome);
        let mut lines = doc.lines();
        let header = lines.next().unwrap_or_default();
        assert!(header.starts_with("{\"schema\":\"npp.power/v1\""));
        for line in doc.lines() {
            let v: serde_json::Value = serde_json::from_str(line).expect(line);
            drop(v);
        }
    }

    #[test]
    fn rejects_zero_window() {
        assert!(run_power_sweep(&sim_spec(), 0, &SweepOptions::serial()).is_err());
    }
}
