//! # npp-sweep
//!
//! Parallel scenario-sweep and experiment-orchestration engine for the
//! HotNets'25 power-proportionality study.
//!
//! A sweep is a serializable [`SweepSpec`]: a base [`ScenarioSpec`]
//! (cluster shape, power-model overrides, workload, evaluation path)
//! plus axes whose cartesian product expands into a grid of concrete
//! scenarios. The engine runs the grid on a deterministic parallel
//! executor, answers repeated scenarios from a content-addressed result
//! cache, and aggregates the grid into best-per-axis tables and a
//! power-saved vs. slowdown Pareto frontier.
//!
//! Three invariants define the engine:
//!
//! 1. **parallel == serial, bit for bit** — scenario seeds derive from
//!    a stable hash of each spec (never thread order), workers write
//!    results into index-addressed slots, and wall-clock metrics stay
//!    out of the deterministic document;
//! 2. **the cache key is the spec** — results are stored under the
//!    SHA-256 of the scenario's canonical JSON, so any edit to a
//!    scenario (or a format-version bump) invalidates exactly the
//!    affected entries;
//! 3. **one metrics shape for both paths** — analytic (`npp-core`)
//!    and simulated (`npp-simnet` + `npp-mechanisms`) scenarios land in
//!    the same [`Metrics`] row, so grids can mix them.
//!
//! ```
//! use npp_sweep::{run_sweep, Axis, ScenarioSpec, SweepOptions, SweepSpec};
//!
//! let spec = SweepSpec {
//!     name: "doc-example".into(),
//!     base: ScenarioSpec::paper_baseline(),
//!     axes: vec![Axis::BandwidthGbps(vec![100.0, 400.0])],
//! };
//! let outcome = run_sweep(&spec, &SweepOptions::serial(), None).unwrap();
//! assert_eq!(outcome.results.scenarios.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod cache;
pub mod exec;
pub mod grid;
pub mod hash;
pub mod power;
pub mod report;
pub mod runner;
pub mod spec;

pub use cache::{CacheStats, ResultCache};
pub use grid::{expand, Scenario};
pub use power::{
    render_power_header, render_power_jsonl, render_scenario_line, render_window_row,
    run_power_sweep, PowerDevice, PowerSweepOutcome, ScenarioPower,
};
pub use report::{
    assemble_results, best_per_axis, frontier_table, power_slowdown_frontier, run_summary,
    ScenarioResult, SweepOutcome, SweepReport, SweepResults,
};
pub use runner::{run_scenario, run_scenario_threaded, Metrics};
pub use spec::{
    Axis, ExperimentKind, FluidFabricSpec, ScalingMode, ScenarioSpec, SimWorkload, SimulationSpec,
    SweepSpec,
};

/// Errors produced by this crate.
#[derive(Debug)]
pub enum SweepError {
    /// Invalid sweep or scenario specification.
    Spec(String),
    /// Propagated analytic-model error.
    Core(npp_core::CoreError),
    /// Propagated power-model error.
    Power(npp_power::PowerError),
    /// Propagated workload-model error.
    Workload(npp_workload::WorkloadError),
    /// Propagated simulator error.
    Sim(npp_simnet::SimError),
    /// Propagated mechanism error.
    Mechanism(npp_mechanisms::MechanismError),
    /// Spec or result (de)serialization failure.
    Serde(serde_json::Error),
    /// Cache or spec-file I/O failure.
    Io(std::io::Error),
}

impl core::fmt::Display for SweepError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SweepError::Spec(msg) => write!(f, "invalid sweep spec: {msg}"),
            SweepError::Core(e) => write!(f, "analytic model: {e}"),
            SweepError::Power(e) => write!(f, "power model: {e}"),
            SweepError::Workload(e) => write!(f, "workload model: {e}"),
            SweepError::Sim(e) => write!(f, "simulation: {e}"),
            SweepError::Mechanism(e) => write!(f, "mechanism: {e}"),
            SweepError::Serde(e) => write!(f, "serialization: {e}"),
            SweepError::Io(e) => write!(f, "I/O: {e}"),
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::Spec(_) => None,
            SweepError::Core(e) => Some(e),
            SweepError::Power(e) => Some(e),
            SweepError::Workload(e) => Some(e),
            SweepError::Sim(e) => Some(e),
            SweepError::Mechanism(e) => Some(e),
            SweepError::Serde(e) => Some(e),
            SweepError::Io(e) => Some(e),
        }
    }
}

impl From<npp_core::CoreError> for SweepError {
    fn from(e: npp_core::CoreError) -> Self {
        SweepError::Core(e)
    }
}
impl From<npp_power::PowerError> for SweepError {
    fn from(e: npp_power::PowerError) -> Self {
        SweepError::Power(e)
    }
}
impl From<npp_workload::WorkloadError> for SweepError {
    fn from(e: npp_workload::WorkloadError) -> Self {
        SweepError::Workload(e)
    }
}
impl From<npp_simnet::SimError> for SweepError {
    fn from(e: npp_simnet::SimError) -> Self {
        SweepError::Sim(e)
    }
}
impl From<npp_mechanisms::MechanismError> for SweepError {
    fn from(e: npp_mechanisms::MechanismError) -> Self {
        SweepError::Mechanism(e)
    }
}
impl From<serde_json::Error> for SweepError {
    fn from(e: serde_json::Error) -> Self {
        SweepError::Serde(e)
    }
}
impl From<std::io::Error> for SweepError {
    fn from(e: std::io::Error) -> Self {
        SweepError::Io(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, SweepError>;

/// Execution options for a sweep run.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker threads (clamped to the grid size; 1 = serial reference).
    pub jobs: usize,
    /// Result-cache directory; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Engine worker threads *inside* each scenario (the fluid-fabric
    /// path's component-sharded engine). Purely an execution knob:
    /// results are bit-identical at any value, so it stays out of the
    /// cache key.
    pub threads: usize,
}

impl SweepOptions {
    /// Serial execution, no cache — the determinism reference.
    pub fn serial() -> Self {
        Self {
            jobs: 1,
            cache_dir: None,
            threads: 1,
        }
    }

    /// One worker per available core, no cache.
    pub fn parallel() -> Self {
        let jobs = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Self {
            jobs,
            cache_dir: None,
            threads: 1,
        }
    }

    /// Adds a result-cache directory.
    #[must_use]
    pub fn with_cache(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Sets the per-scenario engine worker-thread count (0 is clamped
    /// to 1).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

/// Progress notifications emitted while a sweep runs. Delivery order
/// between workers is nondeterministic — hooks are for humans and run
/// metrics, never for results.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgressEvent {
    /// The grid was expanded and execution is starting.
    Started {
        /// Sweep name.
        name: String,
        /// Grid size.
        total: usize,
        /// Worker threads.
        jobs: usize,
    },
    /// One scenario finished.
    ScenarioDone {
        /// Grid index of the finished scenario.
        index: usize,
        /// Whether it was answered from the cache.
        cached: bool,
    },
    /// The whole sweep finished.
    Finished {
        /// Grid size.
        total: usize,
        /// Cache hits.
        cache_hits: usize,
        /// Executed scenarios.
        cache_misses: usize,
        /// Wall-clock duration, ms.
        wall_ms: u64,
    },
}

/// Progress-hook type: called from worker threads, so it must be
/// `Sync`.
pub type ProgressHook<'a> = dyn Fn(&ProgressEvent) + Sync + 'a;

/// Runs a sweep end to end: expand, execute (parallel, cached),
/// aggregate.
///
/// # Errors
///
/// Returns the first scenario error encountered (by grid index), or
/// spec/cache errors.
pub fn run_sweep(
    spec: &SweepSpec,
    opts: &SweepOptions,
    progress: Option<&ProgressHook<'_>>,
) -> Result<SweepOutcome> {
    let cache = match &opts.cache_dir {
        Some(dir) => Some(ResultCache::open(dir)?),
        None => None,
    };
    run_sweep_cached(spec, opts, cache.as_ref(), progress)
}

/// [`run_sweep`] against an already-open cache handle (ignores
/// `opts.cache_dir`). Long-lived callers — the serve daemon — keep one
/// handle for the process lifetime instead of rebuilding the index per
/// request.
///
/// # Errors
///
/// As [`run_sweep`].
pub fn run_sweep_cached(
    spec: &SweepSpec,
    opts: &SweepOptions,
    cache: Option<&ResultCache>,
    progress: Option<&ProgressHook<'_>>,
) -> Result<SweepOutcome> {
    // npp-lint: allow(wall-clock) reason="wall_ms is run telemetry in the volatile SweepReport, never part of the deterministic results document"
    let started = npp_telemetry::wall_clock();
    let scenarios = grid::expand(spec)?;
    let total = scenarios.len();
    let jobs = opts.jobs.clamp(1, total.max(1));
    if let Some(hook) = progress {
        hook(&ProgressEvent::Started {
            name: spec.name.clone(),
            total,
            jobs,
        });
    }

    let hits = AtomicUsize::new(0);
    let misses = AtomicUsize::new(0);
    let outputs: Vec<Result<Metrics>> = exec::run_indexed(total, jobs, |index| {
        let scenario = &scenarios[index];
        // Scope the trace to this scenario: records carry the scenario's
        // content-hash seed, so the canonical merge is identical however
        // threads interleave.
        let _scope = npp_telemetry::scope(scenario.seed);
        // npp-lint: allow(wall-clock) reason="per-scenario timing feeds the volatile telemetry histograms only, never the results document"
        let scenario_started = npp_telemetry::wall_clock();
        let (metrics, cached) = match cache.and_then(|c| c.get(&scenario.hash)) {
            Some(found) => (Ok(found), true),
            None => {
                let computed =
                    runner::run_scenario_threaded(&scenario.spec, scenario.seed, opts.threads);
                if let (Some(c), Ok(m)) = (cache, &computed) {
                    c.put(&scenario.hash, m)?;
                }
                (computed, false)
            }
        };
        if cached {
            hits.fetch_add(1, Ordering::Relaxed);
            npp_telemetry::metrics::counter_add("sweep.cache_hits", 1);
            npp_telemetry::metrics::observe(
                "sweep.cache_hit_ns",
                scenario_started.elapsed().as_nanos() as u64,
            );
        } else {
            misses.fetch_add(1, Ordering::Relaxed);
            npp_telemetry::metrics::counter_add("sweep.cache_misses", 1);
            npp_telemetry::metrics::observe(
                "sweep.scenario_run_ns",
                scenario_started.elapsed().as_nanos() as u64,
            );
        }
        if let Some(hook) = progress {
            hook(&ProgressEvent::ScenarioDone { index, cached });
        }
        metrics
    });

    let metrics: Vec<Metrics> = outputs.into_iter().collect::<Result<_>>()?;

    npp_telemetry::metrics::counter_add("sweep.scenarios", total as u64);
    let report = SweepReport {
        jobs,
        cache_hits: hits.load(Ordering::Relaxed),
        cache_misses: misses.load(Ordering::Relaxed),
        wall_ms: u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX),
    };
    if let Some(hook) = progress {
        hook(&ProgressEvent::Finished {
            total,
            cache_hits: report.cache_hits,
            cache_misses: report.cache_misses,
            wall_ms: report.wall_ms,
        });
    }
    Ok(SweepOutcome {
        results: report::assemble_results(&spec.name, scenarios, metrics),
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> SweepSpec {
        SweepSpec {
            name: "unit".into(),
            base: ScenarioSpec::paper_baseline(),
            axes: vec![
                Axis::BandwidthGbps(vec![100.0, 200.0, 400.0]),
                Axis::NetworkProportionality(vec![0.1, 0.9]),
            ],
        }
    }

    #[test]
    fn parallel_matches_serial_document() {
        let spec = small_spec();
        let serial = run_sweep(&spec, &SweepOptions::serial(), None).unwrap();
        let parallel = run_sweep(
            &spec,
            &SweepOptions {
                jobs: 8,
                cache_dir: None,
                threads: 1,
            },
            None,
        )
        .unwrap();
        assert_eq!(serial.results, parallel.results);
        let a = serde_json::to_string_pretty(&serial.results).unwrap();
        let b = serde_json::to_string_pretty(&parallel.results).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn progress_events_cover_every_scenario() {
        use std::sync::Mutex;
        let events = Mutex::new(Vec::new());
        let hook = |ev: &ProgressEvent| events.lock().unwrap().push(ev.clone());
        let outcome = run_sweep(&small_spec(), &SweepOptions::serial(), Some(&hook)).unwrap();
        let events = events.into_inner().unwrap();
        assert_eq!(events.len(), outcome.results.total + 2);
        assert!(matches!(
            events.first(),
            Some(ProgressEvent::Started { total: 6, .. })
        ));
        assert!(matches!(
            events.last(),
            Some(ProgressEvent::Finished { .. })
        ));
    }

    #[test]
    fn frontier_is_sorted_and_in_range() {
        let outcome = run_sweep(&small_spec(), &SweepOptions::serial(), None).unwrap();
        let f = &outcome.results.frontier;
        assert!(!f.is_empty());
        assert!(f.windows(2).all(|w| {
            outcome.results.scenarios[w[0]].metrics.slowdown
                < outcome.results.scenarios[w[1]].metrics.slowdown
        }));
        assert!(f.iter().all(|&i| i < outcome.results.total));
    }
}
