//! Sweep result aggregation: per-scenario rows, best-per-axis tables,
//! and the Pareto frontier over power saved vs. slowdown.
//!
//! The deterministic document ([`SweepResults`]) is kept strictly
//! separate from the volatile run metrics ([`SweepReport`]): the former
//! is a pure function of the spec and serializes byte-identically
//! regardless of thread count; the latter carries wall times and cache
//! counters and must never leak into `--json` output.

use serde::{Deserialize, Serialize};

use npp_report::{pareto_indices, Table};

use crate::runner::Metrics;
use crate::spec::SweepSpec;

/// One scenario's deterministic result row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ScenarioResult {
    /// Grid position (row-major over the axes).
    pub index: usize,
    /// Human-readable `axis=value` label ("base" when the sweep has no
    /// axes).
    pub label: String,
    /// Content hash of the scenario spec.
    pub hash: String,
    /// Seed derived from the hash (recorded for reproduction).
    pub seed: u64,
    /// `(axis, value)` coordinates in axis order.
    pub coords: Vec<(String, String)>,
    /// The runner's metrics.
    pub metrics: Metrics,
}

impl ScenarioResult {
    /// Builds the display label from coordinates.
    pub fn label_from_coords(coords: &[(String, String)]) -> String {
        if coords.is_empty() {
            return "base".to_string();
        }
        coords
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// The deterministic sweep document (what `--json` prints).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct SweepResults {
    /// Sweep name from the spec.
    pub name: String,
    /// Number of scenarios in the grid.
    pub total: usize,
    /// Indices (into `scenarios`) of the power-saved vs. slowdown
    /// Pareto frontier, ascending slowdown.
    pub frontier: Vec<usize>,
    /// Every scenario, in grid order.
    pub scenarios: Vec<ScenarioResult>,
}

/// Volatile per-run metrics — surfaced for humans, excluded from the
/// deterministic document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct SweepReport {
    /// Worker threads used.
    pub jobs: usize,
    /// Scenarios answered from the result cache.
    pub cache_hits: usize,
    /// Scenarios actually executed.
    pub cache_misses: usize,
    /// Wall-clock duration of the whole sweep, ms.
    pub wall_ms: u64,
}

/// A finished sweep: deterministic results plus the run report.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOutcome {
    /// Deterministic results document.
    pub results: SweepResults,
    /// Volatile run metrics.
    pub report: SweepReport,
}

/// Assembles the deterministic results document from expanded scenarios
/// and their metrics (one per scenario, in grid order). This is the one
/// place rows and the frontier are built, so every producer — `run_sweep`
/// and the serve daemon alike — emits byte-identical documents for the
/// same spec.
pub fn assemble_results(
    name: &str,
    scenarios: Vec<crate::grid::Scenario>,
    metrics: Vec<Metrics>,
) -> SweepResults {
    let total = scenarios.len();
    let rows: Vec<ScenarioResult> = scenarios
        .into_iter()
        .zip(metrics)
        .map(|(scenario, metrics)| ScenarioResult {
            index: scenario.index,
            label: ScenarioResult::label_from_coords(&scenario.coords),
            hash: scenario.hash,
            seed: scenario.seed,
            coords: scenario.coords,
            metrics,
        })
        .collect();
    let frontier = power_slowdown_frontier(&rows);
    SweepResults {
        name: name.to_string(),
        total,
        frontier,
        scenarios: rows,
    }
}

/// Pareto frontier over (slowdown ↓, power saved ↑), as indices into
/// `scenarios` sorted by ascending slowdown.
pub fn power_slowdown_frontier(scenarios: &[ScenarioResult]) -> Vec<usize> {
    pareto_indices(
        scenarios,
        |s| s.metrics.slowdown,
        |s| s.metrics.power_saved_w,
    )
}

/// The frontier as a rendered table.
pub fn frontier_table(scenarios: &[ScenarioResult], frontier: &[usize]) -> Table {
    let mut t = Table::new(vec!["scenario", "slowdown", "power saved (kW)", "savings"])
        .with_title("Pareto frontier: power saved vs. slowdown");
    for &i in frontier {
        let s = &scenarios[i];
        t.push_row(vec![
            s.label.clone(),
            format!("{:.3}x", s.metrics.slowdown),
            format!("{:.1}", s.metrics.power_saved_w / 1e3),
            format!("{:.1}%", s.metrics.savings * 100.0),
        ]);
    }
    t
}

/// For every axis value, the scenario that saves the most power.
pub fn best_per_axis(spec: &SweepSpec, scenarios: &[ScenarioResult]) -> Table {
    let mut t = Table::new(vec![
        "axis",
        "value",
        "best scenario",
        "power saved (kW)",
        "savings",
        "slowdown",
    ])
    .with_title("Best scenario per axis value (by power saved)");
    for (axis_pos, axis) in spec.axes.iter().enumerate() {
        for value_idx in 0..axis.len() {
            let value = axis.label(value_idx);
            let best = scenarios
                .iter()
                .filter(|s| s.coords.get(axis_pos).is_some_and(|(_, v)| *v == value))
                .max_by(|a, b| {
                    a.metrics
                        .power_saved_w
                        .partial_cmp(&b.metrics.power_saved_w)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        // Ties: lowest index wins, deterministically.
                        .then(b.index.cmp(&a.index))
                });
            if let Some(s) = best {
                t.push_row(vec![
                    axis.name().to_string(),
                    value,
                    s.label.clone(),
                    format!("{:.1}", s.metrics.power_saved_w / 1e3),
                    format!("{:.1}%", s.metrics.savings * 100.0),
                    format!("{:.3}x", s.metrics.slowdown),
                ]);
            }
        }
    }
    t
}

/// One-line run summary (volatile; print to stderr in `--json` mode).
pub fn run_summary(outcome: &SweepOutcome) -> String {
    format!(
        "sweep `{}`: {} scenarios, {} jobs, {} cache hits / {} misses, {} ms",
        outcome.results.name,
        outcome.results.total,
        outcome.report.jobs,
        outcome.report.cache_hits,
        outcome.report.cache_misses,
        outcome.report.wall_ms,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(index: usize, slowdown: f64, saved: f64) -> ScenarioResult {
        ScenarioResult {
            index,
            label: format!("s{index}"),
            hash: format!("{index:08x}"),
            seed: index as u64,
            coords: vec![("bw".into(), format!("{index}"))],
            metrics: Metrics {
                average_power_w: 1000.0 - saved,
                baseline_power_w: 1000.0,
                power_saved_w: saved,
                savings: saved / 1000.0,
                slowdown,
                loss_rate: 0.0,
                p99_latency_ns: 0.0,
            },
        }
    }

    #[test]
    fn frontier_drops_dominated_scenarios() {
        let rows = vec![
            row(0, 1.1, 100.0),
            row(1, 1.2, 300.0),
            row(2, 1.3, 200.0), // dominated by row 1
            row(3, 1.5, 400.0),
        ];
        assert_eq!(power_slowdown_frontier(&rows), vec![0, 1, 3]);
        let table = frontier_table(&rows, &[0, 1, 3]);
        assert_eq!(table.row_count(), 3);
        assert!(!table.render().contains("s2"));
    }

    #[test]
    fn labels_compose_coords() {
        assert_eq!(ScenarioResult::label_from_coords(&[]), "base");
        let coords = vec![
            ("bw".to_string(), "400".to_string()),
            ("p".to_string(), "0.5".to_string()),
        ];
        assert_eq!(ScenarioResult::label_from_coords(&coords), "bw=400, p=0.5");
    }
}
