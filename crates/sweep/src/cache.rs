//! Content-addressed on-disk result cache.
//!
//! One JSON file per scenario, named by the scenario's content hash
//! (`<dir>/<hash>.json`). Because the key is a hash of the canonical
//! spec (version-prefixed — see [`crate::hash`]), invalidation is
//! automatic: edit any field of a scenario, or bump
//! [`crate::hash::FORMAT_VERSION`], and the old entry is simply never
//! addressed again. Entries that fail to parse are treated as misses
//! and overwritten.
//!
//! Writes go through a per-process temporary file renamed into place,
//! so concurrent workers (or concurrent sweep processes) racing on the
//! same hash each land a complete file and the loser's rename is a
//! harmless overwrite with identical bytes.

use std::path::{Path, PathBuf};

use crate::runner::Metrics;
use crate::Result;

/// Handle to a cache directory.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (creating if needed) a cache directory.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The directory backing this cache.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, hash: &str) -> PathBuf {
        self.dir.join(format!("{hash}.json"))
    }

    /// Looks up a scenario result. Missing or unparsable entries are
    /// misses.
    pub fn get(&self, hash: &str) -> Option<Metrics> {
        let bytes = std::fs::read(self.entry_path(hash)).ok()?;
        serde_json::from_slice(&bytes).ok()
    }

    /// Stores a scenario result (atomic rename; last writer wins).
    ///
    /// # Errors
    ///
    /// Fails on I/O or serialization errors.
    pub fn put(&self, hash: &str, metrics: &Metrics) -> Result<()> {
        let tmp = self.dir.join(format!(".{hash}.{}.tmp", std::process::id()));
        std::fs::write(&tmp, serde_json::to_string_pretty(metrics)?)?;
        std::fs::rename(&tmp, self.entry_path(hash))?;
        Ok(())
    }

    /// Number of complete entries currently on disk.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be read.
    pub fn len(&self) -> Result<usize> {
        let mut n = 0;
        for entry in std::fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            if name.to_string_lossy().ends_with(".json") {
                n += 1;
            }
        }
        Ok(n)
    }

    /// `true` when the cache holds no complete entries.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be read.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("npp-sweep-cache-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_metrics() -> Metrics {
        Metrics {
            average_power_w: 100.0,
            baseline_power_w: 150.0,
            power_saved_w: 50.0,
            savings: 1.0 / 3.0,
            slowdown: 1.25,
            loss_rate: 0.0,
            p99_latency_ns: 0.0,
        }
    }

    #[test]
    fn miss_then_hit_round_trips_exactly() {
        let dir = scratch_dir("roundtrip");
        let cache = ResultCache::open(&dir).unwrap();
        assert!(cache.get("deadbeef").is_none());
        let m = sample_metrics();
        cache.put("deadbeef", &m).unwrap();
        assert_eq!(cache.get("deadbeef"), Some(m));
        assert_eq!(cache.len().unwrap(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_entries_are_misses() {
        let dir = scratch_dir("corrupt");
        let cache = ResultCache::open(&dir).unwrap();
        std::fs::write(dir.join("cafe.json"), b"{ not json").unwrap();
        assert!(cache.get("cafe").is_none());
        // And can be healed by a put.
        cache.put("cafe", &sample_metrics()).unwrap();
        assert!(cache.get("cafe").is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn distinct_hashes_are_distinct_entries() {
        let dir = scratch_dir("distinct");
        let cache = ResultCache::open(&dir).unwrap();
        let mut a = sample_metrics();
        let mut b = sample_metrics();
        a.savings = 0.1;
        b.savings = 0.9;
        cache.put("aaaa", &a).unwrap();
        cache.put("bbbb", &b).unwrap();
        assert_eq!(cache.get("aaaa").unwrap().savings, 0.1);
        assert_eq!(cache.get("bbbb").unwrap().savings, 0.9);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
