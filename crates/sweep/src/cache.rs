//! Content-addressed result cache: sharded append-only segments with an
//! in-memory index.
//!
//! ## On-disk layout
//!
//! A cache directory holds *segment files* named
//! `shard<k>-<pid>-<n>.v1.seg`, where `k` is the shard (first hex nibble
//! of the scenario hash modulo [`SHARD_COUNT`]), `<pid>` the writing
//! process, and `<n>` a per-process instance counter. Each line of a
//! segment is one self-contained JSON record:
//!
//! ```text
//! {"h":"<64-hex scenario hash>","m":{...Metrics...}}
//! ```
//!
//! Because every `(process, open)` pair appends only to its own files,
//! two executors sharing a cache directory can never interleave partial
//! writes — the failure mode of shared appends — and a torn final line
//! (from a crash mid-append) damages at most that one record.
//!
//! ## Index
//!
//! [`ResultCache::open`] scans all segments in sorted filename order and
//! builds a `BTreeMap<hash, Metrics>` (later records win). Lookups and
//! entry counts are served from this index: `get` never touches the
//! disk, and [`ResultCache::len`] is O(1) instead of the directory
//! re-scan the old one-file-per-entry layout required.
//!
//! Invalidation remains automatic: the key is a hash of the canonical
//! spec (version-prefixed — see [`crate::hash`]), so editing any field
//! of a scenario, or bumping [`crate::hash::FORMAT_VERSION`], means the
//! old record is simply never addressed again.
//!
//! ## Corruption & migration
//!
//! A truncated or garbage segment line is a *logged miss*, never a panic
//! or a hard error: the scan skips it, counts it in
//! [`CacheStats::corrupt_skipped`], emits one progress line, and bumps
//! the `sweep.cache_corrupt` counter. Legacy one-file-per-entry caches
//! (`<hash>.json`) are migrated on open — parseable entries are appended
//! into a segment and the legacy files removed; unparsable ones are
//! counted as corrupt and removed so a later `put` heals them.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

use serde::{Deserialize, Serialize};

use crate::runner::Metrics;
use crate::Result;

/// Number of segment shards (by first hex nibble of the hash).
pub const SHARD_COUNT: usize = 8;

/// Segment filename suffix; bump on any record-format change.
const SEGMENT_SUFFIX: &str = ".v1.seg";

/// Distinguishes concurrent `open`s within one process so they never
/// share an append target.
static NEXT_INSTANCE: AtomicU64 = AtomicU64::new(0);

/// One segment line: the scenario hash and its metrics row.
#[derive(Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
struct SegmentRecord {
    /// Scenario content hash (the cache key).
    h: String,
    /// Cached metrics row.
    m: Metrics,
}

/// Counters describing a cache handle's history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct CacheStats {
    /// Entries currently in the index.
    pub entries: usize,
    /// `get` calls answered from the index.
    pub hits: u64,
    /// `get` calls that found nothing.
    pub misses: u64,
    /// Corrupt records skipped (segment lines or legacy files).
    pub corrupt_skipped: u64,
    /// Legacy one-file-per-entry records migrated on open.
    pub migrated: u64,
}

#[derive(Debug)]
struct Shard {
    /// Lazily opened append handle for this shard's segment file.
    file: Mutex<Option<File>>,
}

#[derive(Debug)]
struct Inner {
    dir: PathBuf,
    /// Unique writer tag (`<pid>-<instance>`) naming this handle's
    /// segment files.
    writer: String,
    index: RwLock<BTreeMap<String, Metrics>>,
    shards: Vec<Shard>,
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    migrated: AtomicU64,
}

/// Handle to a cache directory. Cloning is cheap and clones share the
/// index, so one handle can serve many threads.
#[derive(Debug, Clone)]
pub struct ResultCache {
    inner: Arc<Inner>,
}

impl ResultCache {
    /// Opens (creating if needed) a cache directory and builds the
    /// in-memory index by scanning its segments. Migrates any legacy
    /// one-file-per-entry layout it finds.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created or listed. Corrupt
    /// *entries* are never errors — they are skipped and counted.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let writer = format!(
            "{}-{}",
            std::process::id(),
            NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed)
        );
        let shards = (0..SHARD_COUNT)
            .map(|_| Shard {
                file: Mutex::new(None),
            })
            .collect();
        let cache = Self {
            inner: Arc::new(Inner {
                dir,
                writer,
                index: RwLock::new(BTreeMap::new()),
                shards,
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                corrupt: AtomicU64::new(0),
                migrated: AtomicU64::new(0),
            }),
        };
        cache.scan()?;
        Ok(cache)
    }

    /// The directory backing this cache.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// Looks up a scenario result in the in-memory index. Records that
    /// were corrupt on disk were already dropped (and logged) at open,
    /// so they land here as plain misses.
    pub fn get(&self, hash: &str) -> Option<Metrics> {
        let found = self
            .inner
            .index
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(hash)
            .copied();
        if found.is_some() {
            self.inner.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.inner.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Stores a scenario result: appends one record to this writer's
    /// segment for the hash's shard, then publishes it in the index.
    /// Re-putting an already-indexed hash is a no-op.
    ///
    /// # Errors
    ///
    /// Fails on I/O or serialization errors.
    pub fn put(&self, hash: &str, metrics: &Metrics) -> Result<()> {
        if self
            .inner
            .index
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .contains_key(hash)
        {
            return Ok(());
        }
        self.append(hash, metrics)?;
        self.inner
            .index
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(hash.to_string(), *metrics);
        Ok(())
    }

    /// `true` when the index holds `hash`, without counting a hit or a
    /// miss (a diagnostic peek, not a lookup).
    pub fn contains(&self, hash: &str) -> bool {
        self.inner
            .index
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .contains_key(hash)
    }

    /// Number of entries in the index (O(1); no directory scan).
    pub fn len(&self) -> usize {
        self.inner
            .index
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// `true` when the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time counters for this handle.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.len(),
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            corrupt_skipped: self.inner.corrupt.load(Ordering::Relaxed),
            migrated: self.inner.migrated.load(Ordering::Relaxed),
        }
    }

    /// Shard of a hash: first hex nibble modulo [`SHARD_COUNT`]
    /// (non-hex keys fall into shard 0).
    fn shard_of(hash: &str) -> usize {
        hash.chars()
            .next()
            .and_then(|c| c.to_digit(16))
            .map_or(0, |d| d as usize % SHARD_COUNT)
    }

    /// Appends one record to this writer's segment file for the shard,
    /// as a single `write_all` so readers never observe a torn line
    /// from a live writer.
    fn append(&self, hash: &str, metrics: &Metrics) -> Result<()> {
        let record = SegmentRecord {
            h: hash.to_string(),
            m: *metrics,
        };
        let mut line = serde_json::to_string(&record)?;
        line.push('\n');
        let shard = Self::shard_of(hash);
        let slot = self
            .inner
            .shards
            .get(shard)
            .ok_or_else(|| crate::SweepError::Spec(format!("shard {shard} out of range")))?;
        let mut guard = slot.file.lock().unwrap_or_else(PoisonError::into_inner);
        if guard.is_none() {
            let path = self.inner.dir.join(format!(
                "shard{shard}-{}{SEGMENT_SUFFIX}",
                self.inner.writer
            ));
            let file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?;
            *guard = Some(file);
        }
        if let Some(file) = guard.as_mut() {
            file.write_all(line.as_bytes())?;
        }
        Ok(())
    }

    /// Builds the index: read segments (sorted filename order, later
    /// records win), then migrate any legacy `<hash>.json` entries.
    fn scan(&self) -> Result<()> {
        let mut segments = Vec::new();
        let mut legacy = Vec::new();
        for entry in std::fs::read_dir(&self.inner.dir)? {
            let path = entry?.path();
            if !path.is_file() {
                continue;
            }
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if name.starts_with('.') {
                continue; // stale tmp files from the legacy layout
            }
            if name.ends_with(SEGMENT_SUFFIX) {
                segments.push(path);
            } else if name.ends_with(".json") {
                legacy.push(path);
            }
        }
        segments.sort();
        legacy.sort();

        let mut corrupt = 0u64;
        let mut loaded: BTreeMap<String, Metrics> = BTreeMap::new();
        for path in &segments {
            let bytes = std::fs::read(path)?;
            let text = String::from_utf8_lossy(&bytes);
            for line in text.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                match serde_json::from_str::<SegmentRecord>(line) {
                    Ok(record) => {
                        loaded.insert(record.h, record.m);
                    }
                    Err(_) => corrupt += 1,
                }
            }
        }

        // Legacy migration: parseable entries move into a segment; the
        // old files go away either way (a later put heals corrupt ones).
        let mut migrated = Vec::new();
        for path in &legacy {
            let hash = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            match std::fs::read(path)
                .ok()
                .and_then(|bytes| serde_json::from_slice::<Metrics>(&bytes).ok())
            {
                Some(metrics) => {
                    if !loaded.contains_key(&hash) {
                        loaded.insert(hash.clone(), metrics);
                        migrated.push((hash, metrics));
                    }
                }
                None => corrupt += 1,
            }
            let _ = std::fs::remove_file(path);
        }

        let entries = loaded.len();
        *self
            .inner
            .index
            .write()
            .unwrap_or_else(PoisonError::into_inner) = loaded;
        for (hash, metrics) in &migrated {
            self.append(hash, metrics)?;
        }
        self.inner
            .migrated
            .store(migrated.len() as u64, Ordering::Relaxed);
        if !migrated.is_empty() {
            npp_telemetry::progress::emit(&format!(
                "cache {}: migrated {} legacy entr{} into segments",
                self.inner.dir.display(),
                migrated.len(),
                if migrated.len() == 1 { "y" } else { "ies" },
            ));
        }
        self.inner.corrupt.store(corrupt, Ordering::Relaxed);
        if corrupt > 0 {
            npp_telemetry::metrics::counter_add("sweep.cache_corrupt", corrupt);
            npp_telemetry::progress::emit(&format!(
                "cache {}: skipped {corrupt} corrupt record{} (treated as misses)",
                self.inner.dir.display(),
                if corrupt == 1 { "" } else { "s" },
            ));
        }
        npp_telemetry::metrics::gauge_set("sweep.cache_entries", entries as f64);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("npp-sweep-cache-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_metrics() -> Metrics {
        Metrics {
            average_power_w: 100.0,
            baseline_power_w: 150.0,
            power_saved_w: 50.0,
            savings: 1.0 / 3.0,
            slowdown: 1.25,
            loss_rate: 0.0,
            p99_latency_ns: 0.0,
        }
    }

    #[test]
    fn miss_then_hit_round_trips_exactly() {
        let dir = scratch_dir("roundtrip");
        let cache = ResultCache::open(&dir).unwrap();
        assert!(cache.get("deadbeef").is_none());
        let m = sample_metrics();
        cache.put("deadbeef", &m).unwrap();
        assert_eq!(cache.get("deadbeef"), Some(m));
        assert_eq!(cache.len(), 1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_rebuilds_index_from_segments() {
        let dir = scratch_dir("reopen");
        {
            let cache = ResultCache::open(&dir).unwrap();
            cache.put("aaaa", &sample_metrics()).unwrap();
            let mut other = sample_metrics();
            other.savings = 0.9;
            cache.put("1234", &other).unwrap();
        }
        let reopened = ResultCache::open(&dir).unwrap();
        assert_eq!(reopened.len(), 2);
        assert_eq!(reopened.get("aaaa"), Some(sample_metrics()));
        assert_eq!(reopened.get("1234").map(|m| m.savings), Some(0.9));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_segment_lines_are_logged_misses_not_errors() {
        let dir = scratch_dir("corrupt-seg");
        {
            let cache = ResultCache::open(&dir).unwrap();
            cache.put("cafe", &sample_metrics()).unwrap();
        }
        // A torn append: a valid record followed by a truncated one and
        // a line of garbage, all in a foreign writer's segment.
        std::fs::write(
            dir.join(format!("shard0-999999-0{SEGMENT_SUFFIX}")),
            "{\"h\":\"0123\",\"m\":{\"average_power_w\":1.0,\"baseline_power_w\":2.0,\
             \"power_saved_w\":1.0,\"savings\":0.5,\"slowdown\":1.0,\"loss_rate\":0.0,\
             \"p99_latency_ns\":0.0}}\n{\"h\":\"0456\",\"m\":{\"average_po\nnot json at all\n",
        )
        .unwrap();
        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.get("cafe"), Some(sample_metrics()));
        assert_eq!(cache.get("0123").map(|m| m.savings), Some(0.5));
        assert!(cache.get("0456").is_none(), "torn record must be a miss");
        assert_eq!(cache.stats().corrupt_skipped, 2);
        assert_eq!(cache.len(), 2);
        // And the torn hash heals on the next put.
        cache.put("0456", &sample_metrics()).unwrap();
        assert!(cache.get("0456").is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn legacy_layout_migrates_on_open() {
        let dir = scratch_dir("legacy");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("aaaa.json"),
            serde_json::to_string_pretty(&sample_metrics()).unwrap(),
        )
        .unwrap();
        std::fs::write(dir.join("cafe.json"), b"{ not json").unwrap();
        std::fs::write(dir.join(".aaaa.12.tmp"), b"partial").unwrap();
        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.get("aaaa"), Some(sample_metrics()));
        assert!(cache.get("cafe").is_none(), "corrupt legacy is a miss");
        let stats = cache.stats();
        assert_eq!(stats.migrated, 1);
        assert_eq!(stats.corrupt_skipped, 1);
        // Legacy files are gone; the entry survives a second reopen via
        // its new segment.
        assert!(!dir.join("aaaa.json").exists());
        assert!(!dir.join("cafe.json").exists());
        let again = ResultCache::open(&dir).unwrap();
        assert_eq!(again.get("aaaa"), Some(sample_metrics()));
        assert_eq!(again.stats().migrated, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn distinct_hashes_are_distinct_entries() {
        let dir = scratch_dir("distinct");
        let cache = ResultCache::open(&dir).unwrap();
        let mut a = sample_metrics();
        let mut b = sample_metrics();
        a.savings = 0.1;
        b.savings = 0.9;
        cache.put("aaaa", &a).unwrap();
        cache.put("bbbb", &b).unwrap();
        assert_eq!(cache.get("aaaa").unwrap().savings, 0.1);
        assert_eq!(cache.get("bbbb").unwrap().savings, 0.9);
        assert_eq!(cache.len(), 2);
        assert!(!cache.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shards_spread_and_never_collide_across_writers() {
        let dir = scratch_dir("writers");
        let one = ResultCache::open(&dir).unwrap();
        let two = ResultCache::open(&dir).unwrap();
        one.put("0aaa", &sample_metrics()).unwrap();
        two.put("1bbb", &sample_metrics()).unwrap();
        let segs: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(SEGMENT_SUFFIX))
            .collect();
        assert_eq!(segs.len(), 2, "each writer owns its own segment: {segs:?}");
        // A third handle sees both writers' records.
        let merged = ResultCache::open(&dir).unwrap();
        assert_eq!(merged.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
