//! Grid expansion: `SweepSpec` → concrete scenarios.
//!
//! Expansion is mixed-radix counting over the axes: scenario `k`'s
//! coordinate along axis `j` is a digit of `k`, with the **last** axis
//! varying fastest. The ordering is part of the on-disk contract — the
//! executor's results vector, scenario indices in reports, and the
//! determinism tests all rely on it.

use crate::hash::{scenario_hash, seed_from_hash};
use crate::spec::{ScenarioSpec, SweepSpec};
use crate::{Result, SweepError};

/// One expanded grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Position in the grid (row-major over the axes).
    pub index: usize,
    /// `axis=value` coordinates, one per sweep axis, in axis order.
    pub coords: Vec<(String, String)>,
    /// The concrete spec, base plus axis values.
    pub spec: ScenarioSpec,
    /// Content hash of `spec` (hex SHA-256 of its canonical JSON).
    pub hash: String,
    /// Deterministic per-scenario RNG seed, derived from `hash` — never
    /// from grid position or thread schedule.
    pub seed: u64,
}

/// Expands the sweep's cartesian grid in deterministic order.
///
/// # Errors
///
/// Rejects empty axes and simulation axes over analytic bases.
pub fn expand(spec: &SweepSpec) -> Result<Vec<Scenario>> {
    for axis in &spec.axes {
        if axis.is_empty() {
            return Err(SweepError::Spec(format!(
                "axis `{}` has no values",
                axis.name()
            )));
        }
    }
    let total = spec.grid_size();
    let mut out = Vec::with_capacity(total);
    for index in 0..total {
        // Mixed-radix digits of `index`, last axis fastest.
        let mut rem = index;
        let mut digits = vec![0usize; spec.axes.len()];
        for (digit, axis) in digits.iter_mut().zip(&spec.axes).rev() {
            *digit = rem % axis.len();
            rem /= axis.len();
        }
        let mut scenario = spec.base.clone();
        let mut coords = Vec::with_capacity(spec.axes.len());
        for (axis, &digit) in spec.axes.iter().zip(&digits) {
            axis.apply(digit, &mut scenario)?;
            coords.push((axis.name().to_string(), axis.label(digit)));
        }
        let hash = scenario_hash(&scenario)?;
        let seed = seed_from_hash(&hash);
        out.push(Scenario {
            index,
            coords,
            spec: scenario,
            hash,
            seed,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Axis;

    fn two_axis_spec() -> SweepSpec {
        SweepSpec {
            name: "grid-test".into(),
            base: ScenarioSpec::paper_baseline(),
            axes: vec![
                Axis::BandwidthGbps(vec![100.0, 400.0]),
                Axis::NetworkProportionality(vec![0.1, 0.5, 1.0]),
            ],
        }
    }

    #[test]
    fn expansion_order_is_row_major() {
        let grid = expand(&two_axis_spec()).unwrap();
        assert_eq!(grid.len(), 6);
        // Last axis varies fastest.
        let props: Vec<f64> = grid
            .iter()
            .map(|s| s.spec.network_proportionality)
            .collect();
        assert_eq!(props, vec![0.1, 0.5, 1.0, 0.1, 0.5, 1.0]);
        let bws: Vec<f64> = grid.iter().map(|s| s.spec.bandwidth_gbps).collect();
        assert_eq!(bws, vec![100.0, 100.0, 100.0, 400.0, 400.0, 400.0]);
        for (i, s) in grid.iter().enumerate() {
            assert_eq!(s.index, i);
            assert_eq!(s.coords.len(), 2);
        }
    }

    #[test]
    fn seeds_depend_on_spec_not_position() {
        let grid = expand(&two_axis_spec()).unwrap();
        // Re-expanding with axes swapped visits the same specs at
        // different indices; their hashes and seeds must not move.
        let mut swapped = two_axis_spec();
        swapped.axes.reverse();
        let grid2 = expand(&swapped).unwrap();
        for s in &grid {
            let twin = grid2.iter().find(|t| t.spec == s.spec).unwrap();
            assert_eq!(twin.hash, s.hash);
            assert_eq!(twin.seed, s.seed);
            assert_ne!((twin.index, s.index), (0, 1), "spot check only");
        }
    }

    #[test]
    fn empty_axis_is_rejected() {
        let mut spec = two_axis_spec();
        spec.axes.push(Axis::Gpus(vec![]));
        assert!(expand(&spec).is_err());
    }

    #[test]
    fn no_axes_yields_single_scenario() {
        let spec = SweepSpec {
            name: "single".into(),
            base: ScenarioSpec::paper_baseline(),
            axes: vec![],
        };
        let grid = expand(&spec).unwrap();
        assert_eq!(grid.len(), 1);
        assert!(grid[0].coords.is_empty());
    }
}
