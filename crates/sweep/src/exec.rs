//! Deterministic parallel execution over an indexed work list.
//!
//! A chunk-free work-stealing queue: one shared atomic cursor hands out
//! indices; each worker runs items, collecting `(index, output)` pairs
//! locally; the caller merges and sorts by index. The output vector is
//! therefore a pure function of the per-index job — thread scheduling
//! decides only *who* computes an item, never *what* it computes or
//! where it lands. Combined with per-scenario seeds derived from spec
//! hashes (never thread order), parallel sweeps are bit-identical to
//! serial ones.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `job` for every index in `0..n` on up to `jobs` worker threads
/// and returns the outputs in index order.
///
/// `jobs` is clamped to `[1, n]` (and 1 when `n == 0`). With `jobs ==
/// 1` everything runs on the calling thread — no scope, no channels —
/// which is the reference serial execution the determinism tests
/// compare against.
///
/// # Panics
///
/// Propagates panics from `job` (the scope joins all workers first).
pub fn run_indexed<T, F>(n: usize, jobs: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.clamp(1, n.max(1));
    if jobs == 1 {
        npp_telemetry::metrics::observe("sweep.worker_items", n as u64);
        return (0..n).map(job).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut partials: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        if index >= n {
                            break;
                        }
                        local.push((index, job(index)));
                    }
                    // Per-worker share of the sweep: the histogram spread
                    // is a direct read on thread utilization balance.
                    npp_telemetry::metrics::observe("sweep.worker_items", local.len() as u64);
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });

    let mut indexed: Vec<(usize, T)> = partials.drain(..).flatten().collect();
    indexed.sort_by_key(|(i, _)| *i);
    debug_assert!(indexed
        .iter()
        .enumerate()
        .all(|(want, (got, _))| want == *got));
    indexed.into_iter().map(|(_, out)| out).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn outputs_are_in_index_order() {
        let out = run_indexed(100, 8, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_equals_serial() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9).rotate_left(13);
        for jobs in [1, 2, 3, 8, 64] {
            assert_eq!(
                run_indexed(257, jobs, f),
                run_indexed(257, 1, f),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = run_indexed(1000, 16, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(run_indexed(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 8, |i| i + 7), vec![7]);
        assert_eq!(run_indexed(3, 0, |i| i), vec![0, 1, 2]);
    }
}
