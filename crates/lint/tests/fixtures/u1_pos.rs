//! U1 positive fixture: an `unsafe` block with no adjacent
//! `// SAFETY:` comment — the invariant lives only in the author's
//! head, which is exactly what the audit forbids.

/// Reads the first byte behind `p` without saying why that is sound.
pub fn first_byte(p: *const u8) -> u8 {
    unsafe { *p }
}
