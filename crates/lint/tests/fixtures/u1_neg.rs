//! U1 negative fixture: near-misses that must stay clean — a block
//! documented with `// SAFETY:` directly above it, and an `unsafe fn`
//! whose obligation sits on the caller, not on a block of its own.

/// Reads the first byte behind `p`.
pub fn first_byte(p: *const u8) -> u8 {
    // SAFETY: callers hand us a pointer into a live, readable buffer.
    unsafe { *p }
}

/// Reads the first byte; validity is the caller's promise.
///
/// # Safety
///
/// `p` must be valid for reads.
pub unsafe fn first_byte_raw(p: *const u8) -> u8 {
    // SAFETY: validity is this fn's documented precondition.
    unsafe { *p }
}
