//! C1 positive fixture: a worker fn borrowing `&EngineCore` reaches
//! for an atomic and a cell — a scheduling-dependent side channel the
//! parallel engine's bit-identical merge argument forbids.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Stand-in for the engine's shared state.
pub struct EngineCore;

/// A worker that cheats: tallies progress through interior mutability
/// instead of returning it as a plain batch.
pub fn tally(core: &EngineCore) -> u64 {
    let _ = core;
    let hits = AtomicU64::new(0);
    let seen = Cell::new(0u64);
    hits.fetch_add(1, Ordering::Relaxed);
    seen.set(seen.get() + 1);
    hits.load(Ordering::Relaxed) + seen.get()
}
