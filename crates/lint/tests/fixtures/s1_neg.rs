//! S1 negative fixture: the same spec struct with
//! `deny_unknown_fields` — unknown keys in a spec file are an error.

use serde::Deserialize;

/// One row of a sweep spec file.
#[derive(Debug, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct SpecRow {
    /// Scenario name.
    pub name: String,
    /// Link bandwidth.
    pub gbps: f64,
}
