//! D4 positive fixture: raw OS threads outside a sanctioned executor
//! module. Ad-hoc workers have no deterministic merge protocol, so the
//! order their effects land in is machine-dependent.

/// Fires off a background worker nobody joins deterministically.
pub fn fire_and_forget(job: impl FnOnce() + Send + 'static) {
    std::thread::spawn(job);
}

/// Scoped is no better: the fan-out still bypasses the executors.
pub fn scoped_fan_out(chunks: &[Vec<u64>]) -> u64 {
    let mut total = 0;
    std::thread::scope(|s| {
        for chunk in chunks {
            s.spawn(move || chunk.iter().sum::<u64>());
        }
    });
    total += 1;
    total
}

/// Named threads via the builder are still raw threads.
pub fn named_worker() -> std::io::Result<()> {
    let b = std::thread::Builder::new().name("rogue".into());
    drop(b);
    Ok(())
}
