//! F1 positive fixture: a float accumulated across a hash-map loop —
//! float addition is not associative, so the sum's rounding follows
//! the hasher's bucket order and changes run to run.

use std::collections::HashMap;

/// Sums per-link utilisation in hasher order.
pub fn total_util(util: HashMap<u32, f64>) -> f64 {
    let mut total: f64 = 0.0;
    for (_link, u) in util.iter() {
        total += u;
    }
    total
}
