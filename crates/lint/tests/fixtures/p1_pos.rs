//! P1 positive fixture: panicking lookups in library code. Both the
//! bare index and the bare `.unwrap()` abort on out-of-range input.

/// Panics when `port` is out of range.
pub fn port_speed(speeds: &[f64], port: usize) -> f64 {
    speeds[port]
}

/// Panics on an empty slice.
pub fn first_speed(speeds: &[f64]) -> f64 {
    speeds.first().copied().unwrap()
}
