//! D2 positive fixture: reading the host wall clock in simulation
//! code. Sim time must come from the simulator clock, not the OS.

/// Stamps "now" from the host — nondeterministic across runs.
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

/// Even the sanctioned entry point is off-limits from simulation code:
/// the call reads host time wherever it happens.
pub fn stamp_via_telemetry() -> std::time::Instant {
    npp_telemetry::wall_clock()
}
