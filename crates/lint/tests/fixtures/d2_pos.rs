//! D2 positive fixture: reading the host wall clock in simulation
//! code. Sim time must come from the simulator clock, not the OS.

/// Stamps "now" from the host — nondeterministic across runs.
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
