//! D1 negative fixture: the same walk over a `BTreeMap` is fine —
//! ordered containers iterate in key order, deterministically.

use std::collections::BTreeMap;

/// Walks per-link loads in ascending link id order.
pub fn visit_loads(loads: BTreeMap<u32, u64>) -> u64 {
    let mut total = 0;
    for (_link, load) in loads.iter() {
        total += load;
    }
    total
}
