//! D3 positive fixture: a float reduction fed directly by a hash-map
//! iterator. Float addition is not associative, so the total depends
//! on the unstable iteration order.

use std::collections::HashMap;

/// Sums per-device watts in hash order.
pub fn total_power(watts: HashMap<u32, f64>) -> f64 {
    watts.values().sum()
}
