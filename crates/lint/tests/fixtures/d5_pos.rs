//! D5 positive fixture: an unstable sort whose key ties between
//! distinct elements, and a `partial_cmp` comparator that is not a
//! total order under NaN.

/// Orders flows by link id — flows on the same link land in
/// unspecified relative order.
pub fn order_by_link(flows: &mut Vec<(u32, u64)>) {
    flows.sort_unstable_by_key(|f| f.0);
}

/// Orders rates with a comparator that has no answer for NaN.
pub fn order_by_rate(rates: &mut Vec<f64>) {
    rates.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}
