//! D4 negative fixture: near-misses that must stay clean — work routed
//! through an executor handle, a thread *sleep* (no new thread), and
//! identifiers that merely contain the word.

/// A pool handle that owns the sanctioned fan-out internally.
pub struct Pool;

impl Pool {
    /// Enqueues a job on the executor; no OS thread is created here.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        drop(Box::new(job) as Box<dyn FnOnce() + Send>);
    }
}

/// Routes work through the pool instead of raw threads.
pub fn through_the_executor(pool: &Pool) {
    pool.spawn(|| {});
    let thread_count = 4;
    drop(thread_count);
}

/// Sleeping the current thread spawns nothing.
pub fn backoff() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}
