//! S1 positive fixture: a spec struct deriving `Deserialize` without
//! `deny_unknown_fields` — a typo in an on-disk spec file would be
//! silently ignored instead of failing loudly.

use serde::Deserialize;

/// One row of a sweep spec file.
#[derive(Debug, Deserialize)]
pub struct SpecRow {
    /// Scenario name.
    pub name: String,
    /// Link bandwidth.
    pub gbps: f64,
}
