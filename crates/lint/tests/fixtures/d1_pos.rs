//! D1 positive fixture: iterating a hash map in determinism-critical
//! code. The visit order follows the hasher's bucket order, which
//! changes run to run.

use std::collections::HashMap;

/// Walks per-link loads in hash order.
pub fn visit_loads(loads: HashMap<u32, u64>) -> u64 {
    let mut total = 0;
    for (_link, load) in loads.iter() {
        total += load;
    }
    total
}
