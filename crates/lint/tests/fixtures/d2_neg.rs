//! D2 negative fixture: a simulator clock advanced only by event
//! processing never consults the host, so runs replay exactly.

/// Nanoseconds since sim start; advanced by the event loop.
pub struct SimClock {
    now_ns: u64,
}

impl SimClock {
    /// Advances sim time by one event's duration.
    pub fn advance(&mut self, dt_ns: u64) {
        self.now_ns += dt_ns;
    }

    /// Current sim time.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }
}
