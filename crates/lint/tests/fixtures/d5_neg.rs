//! D5 negative fixture: near-misses that must stay clean — a plain
//! `sort_unstable` over a total `Ord` (equal elements are
//! indistinguishable), a stable sort keyed on an integer, and a float
//! sort through `total_cmp`.

/// Equal ids are interchangeable; unstable order cannot leak.
pub fn order_ids(ids: &mut Vec<u32>) {
    ids.sort_unstable();
}

/// Stable sort: ties keep their input order.
pub fn order_by_link(flows: &mut Vec<(u32, u64)>) {
    flows.sort_by_key(|f| f.0);
}

/// `total_cmp` is a total order over all bit patterns, NaN included.
pub fn order_rates(rates: &mut Vec<f64>) {
    rates.sort_by(|a, b| a.total_cmp(b));
}
