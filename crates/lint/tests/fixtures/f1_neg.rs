//! F1 negative fixture: float accumulation over *ordered* sources is
//! fine — a slice visits by index, a `BTreeMap` by key order — so the
//! rounding sequence is identical on every run.

use std::collections::BTreeMap;

/// Sums a slice in index order.
pub fn sum_slice(xs: &[f64]) -> f64 {
    let mut total: f64 = 0.0;
    for x in xs {
        total += x;
    }
    total
}

/// Sums a map in ascending key order.
pub fn sum_map(util: &BTreeMap<u32, f64>) -> f64 {
    let mut total: f64 = 0.0;
    for (_link, u) in util.iter() {
        total += u;
    }
    total
}
