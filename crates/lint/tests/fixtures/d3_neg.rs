//! D3 negative fixture: the same reduction over an index-addressed
//! slice has a fixed accumulation order by construction.

/// Sums per-device watts in index order.
pub fn total_power(watts: &[f64]) -> f64 {
    watts.iter().sum()
}
