//! P1 negative fixture: the same lookups with checked access. A
//! defaulted `.unwrap_or(…)` and a documented `.expect("…")` are both
//! allowed — the invariant is stated, not assumed.

/// Zero for out-of-range ports.
pub fn port_speed(speeds: &[f64], port: usize) -> f64 {
    speeds.get(port).copied().unwrap_or(0.0)
}

/// First speed; the caller guarantees a non-empty slice.
pub fn first_speed(speeds: &[f64]) -> f64 {
    speeds
        .first()
        .copied()
        .expect("topology builders never emit a zero-port switch")
}
