//! C1 negative fixture: near-misses that must stay clean — a pure
//! worker over the shared core, and a coordinator holding the
//! exclusive `&mut` borrow (which may use whatever sync it likes).

use std::sync::Mutex;

/// Stand-in for the engine's shared state.
pub struct EngineCore {
    /// Active flow ids.
    pub active: Vec<u32>,
}

/// Pure worker: reads the core, writes private scratch.
pub fn load_set(core: &EngineCore, out: &mut Vec<u32>) {
    out.extend(core.active.iter().copied());
}

/// Coordinator: owns the exclusive borrow; a lock here is not a
/// worker-side channel.
pub fn integrate(core: &mut EngineCore, guard: &Mutex<u64>) {
    if let Ok(mut g) = guard.lock() {
        *g += core.active.len() as u64;
    }
}
