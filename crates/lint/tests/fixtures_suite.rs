//! Fixture-driven rule tests.
//!
//! Every rule has one positive fixture that must fire it and one
//! near-miss negative that must stay clean — the fixtures live under
//! `tests/fixtures/` and are lexed, never compiled. The suite also
//! checks the JSON report round-trips through `serde_json` and is
//! byte-stable across runs (the property CI's gate relies on).

use std::path::PathBuf;

use npp_lint::{lint, render_json, render_sarif, Config, RuleId, REPORT_SCHEMA};

fn fixtures_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Lints one fixture in strict explicit-path mode and returns the
/// rules that fired, in report order.
fn rules_in(name: &str) -> Vec<RuleId> {
    let root = fixtures_root();
    let path = root.join(name);
    let report = lint(&Config::explicit(root, vec![path])).expect("fixture lints");
    report.findings.iter().map(|f| f.rule).collect()
}

#[test]
fn positive_fixtures_fire_their_rule() {
    let cases = [
        ("d1_pos.rs", RuleId::D1MapIter),
        ("d2_pos.rs", RuleId::D2WallClock),
        ("d3_pos.rs", RuleId::D3FloatReduce),
        ("d4_pos.rs", RuleId::D4ThreadSpawn),
        ("d5_pos.rs", RuleId::D5UnstableSort),
        ("c1_pos.rs", RuleId::C1WorkerPurity),
        ("f1_pos.rs", RuleId::F1FloatOrder),
        ("u1_pos.rs", RuleId::U1UnsafeAudit),
        ("p1_pos.rs", RuleId::P1Panic),
        ("s1_pos.rs", RuleId::S1DenyUnknownFields),
    ];
    for (name, rule) in cases {
        let fired = rules_in(name);
        assert!(
            fired.contains(&rule),
            "{name} must fire {rule:?}, got {fired:?}"
        );
    }
}

#[test]
fn negative_fixtures_stay_clean() {
    for name in [
        "d1_neg.rs",
        "d2_neg.rs",
        "d3_neg.rs",
        "d4_neg.rs",
        "d5_neg.rs",
        "c1_neg.rs",
        "f1_neg.rs",
        "u1_neg.rs",
        "p1_neg.rs",
        "s1_neg.rs",
    ] {
        let fired = rules_in(name);
        assert!(fired.is_empty(), "{name} must be clean, got {fired:?}");
    }
}

#[test]
fn p1_fixture_counts_both_panic_sites() {
    let fired = rules_in("p1_pos.rs");
    let p1 = fired.iter().filter(|&&r| r == RuleId::P1Panic).count();
    assert_eq!(p1, 2, "one index + one unwrap, got {fired:?}");
}

#[test]
fn d4_fixture_fires_once_per_entry_point() {
    let fired = rules_in("d4_pos.rs");
    let d4 = fired
        .iter()
        .filter(|&&r| r == RuleId::D4ThreadSpawn)
        .count();
    assert_eq!(d4, 3, "spawn + scope + Builder, got {fired:?}");
}

#[test]
fn d3_fixture_also_fires_d1() {
    // A `.sum()` over a hash-map iterator is both a map iteration (D1)
    // and an order-sensitive reduction (D3).
    let fired = rules_in("d3_pos.rs");
    assert!(fired.contains(&RuleId::D1MapIter), "{fired:?}");
    assert!(fired.contains(&RuleId::D3FloatReduce), "{fired:?}");
}

#[test]
fn c1_fixture_flags_each_impurity() {
    let fired = rules_in("c1_pos.rs");
    let c1 = fired
        .iter()
        .filter(|&&r| r == RuleId::C1WorkerPurity)
        .count();
    assert_eq!(c1, 2, "one atomic + one cell, got {fired:?}");
}

#[test]
fn d5_fixture_flags_both_sort_hazards() {
    let fired = rules_in("d5_pos.rs");
    let d5 = fired
        .iter()
        .filter(|&&r| r == RuleId::D5UnstableSort)
        .count();
    assert_eq!(
        d5, 2,
        "tie-prone key + partial_cmp comparator, got {fired:?}"
    );
}

#[test]
fn f1_fixture_also_fires_d1() {
    // The hash-map loop is a map iteration (D1) and the `+=` inside it
    // is the order-sensitive accumulation (F1).
    let fired = rules_in("f1_pos.rs");
    assert!(fired.contains(&RuleId::D1MapIter), "{fired:?}");
    assert!(fired.contains(&RuleId::F1FloatOrder), "{fired:?}");
}

#[test]
fn sarif_log_matches_committed_schema_and_is_byte_stable() {
    let root = fixtures_root();
    let run = || {
        let report =
            lint(&Config::explicit(root.clone(), vec![root.clone()])).expect("fixtures lint");
        render_sarif(&report)
    };
    let first = run();
    assert_eq!(first, run(), "two renders must be byte-identical");

    let log: serde_json::Value = serde_json::from_str(&first).expect("SARIF is valid JSON");
    let spec: serde_json::Value = serde_json::from_str(
        &std::fs::read_to_string(fixtures_root().join("sarif_schema.json"))
            .expect("committed schema fixture"),
    )
    .expect("schema fixture is valid JSON");
    let required = |level: &str| -> Vec<String> {
        spec["required"][level]
            .as_array()
            .unwrap_or_else(|| panic!("schema lists {level}"))
            .iter()
            .filter_map(|k| k.as_str().map(String::from))
            .collect()
    };
    let check = |obj: &serde_json::Value, level: &str| {
        for key in required(level) {
            assert!(
                !obj[key.as_str()].is_null(),
                "{level} is missing required key {key:?}"
            );
        }
    };

    check(&log, "log");
    assert_eq!(log["version"].as_str(), spec["version"].as_str());
    let runs = log["runs"].as_array().expect("runs array");
    assert_eq!(runs.len(), 1);
    check(&runs[0], "run");
    let driver = &runs[0]["tool"]["driver"];
    check(driver, "driver");
    for rule in driver["rules"].as_array().expect("rules array") {
        check(rule, "rule");
    }
    let results = runs[0]["results"].as_array().expect("results array");
    assert!(
        !results.is_empty(),
        "positive fixtures must produce SARIF results"
    );
    for result in results {
        check(result, "result");
        let loc = &result["locations"][0]["physicalLocation"];
        check(loc, "physicalLocation");
        check(&loc["region"], "region");
        assert!(loc["region"]["startLine"].as_u64().is_some_and(|l| l >= 1));
    }
}

#[test]
fn json_report_round_trips_and_is_byte_stable() {
    let root = fixtures_root();
    let run = || {
        let report =
            lint(&Config::explicit(root.clone(), vec![root.clone()])).expect("fixtures lint");
        render_json(&report)
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "two runs must be byte-identical");

    let v: serde_json::Value = serde_json::from_str(&first).expect("report is valid JSON");
    assert_eq!(v["schema"].as_str(), Some(REPORT_SCHEMA));
    assert!(v["findings"].is_array());
    let findings = v["findings"].as_array().expect("findings array");
    // All five positive fixtures contribute; negatives contribute none.
    assert!(
        findings.len() >= 5,
        "expected every positive fixture in the report, got {}",
        findings.len()
    );
    for f in findings {
        assert!(f["file"].as_str().is_some_and(|s| s.ends_with("_pos.rs")));
        assert!(f["line"].as_u64().is_some());
        assert!(f["rule"].as_str().is_some());
    }
}
