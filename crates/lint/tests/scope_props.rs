//! Property tests for the scope tree.
//!
//! The analyzer's soundness rests on structural invariants of
//! [`npp_lint::scope::build`]: every token is owned by exactly one
//! innermost scope, scope ranges nest (never partially overlap), and
//! the builder is total and deterministic on *arbitrary* token soup —
//! including unbalanced braces and half-finished items. The crate is
//! dependency-free, so the generator is a small deterministic
//! xorshift64* PRNG rather than an external proptest harness; failures
//! print the seed and the offending source so a case can be replayed
//! by pasting it into a unit test.

use npp_lint::lexer;
use npp_lint::scope::{self, ScopeTree};

/// Deterministic xorshift64* generator (Vigna 2016). Good enough to
/// explore the token-soup space; fully reproducible from the seed.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Vocabulary skewed toward the constructs the scope builder cares
/// about: item keywords, braces (often unbalanced), attributes, and
/// plain expression filler.
const WORDS: &[&str] = &[
    "fn",
    "mod",
    "impl",
    "trait",
    "struct",
    "enum",
    "unsafe",
    "pub",
    "use",
    "let",
    "mut",
    "for",
    "in",
    "match",
    "if",
    "else",
    "return",
    "where",
    "dyn",
    "move",
    "{",
    "{",
    "}",
    "}",
    "(",
    ")",
    "[",
    "]",
    ";",
    ",",
    ":",
    "::",
    "->",
    "=>",
    "=",
    ".",
    "&",
    "&mut",
    "#",
    "#[cfg(test)]",
    "#[test]",
    "#[inline]",
    "x",
    "y",
    "core",
    "EngineCore",
    "tests",
    "helper",
    "Vec<u32>",
    "f64",
    "0",
    "1.5",
    "\"s\"",
    "'c'",
    "'a",
    "// comment\n",
    "/* block */",
    "+=",
];

/// One random source file: `len` words joined by spaces, with random
/// newlines so lines (and the U1 SAFETY window) vary too.
fn soup(rng: &mut Rng, len: usize) -> String {
    let mut src = String::new();
    for _ in 0..len {
        src.push_str(WORDS[rng.below(WORDS.len())]);
        src.push(if rng.below(6) == 0 { '\n' } else { ' ' });
    }
    src
}

/// Asserts every structural invariant of one built tree.
fn check_invariants(src: &str, tree: &ScopeTree, n_tokens: usize) {
    let ctx = || format!("source:\n{src}");

    // The ownership vector covers the token slice exactly.
    assert_eq!(tree.owner.len(), n_tokens, "{}", ctx());
    assert!(!tree.scopes.is_empty(), "{}", ctx());

    // Root covers the whole file and is its own parent.
    let root = &tree.scopes[0];
    assert_eq!((root.start, root.end), (0, n_tokens), "{}", ctx());
    assert_eq!(root.parent, 0, "{}", ctx());

    for (i, s) in tree.scopes.iter().enumerate().skip(1) {
        // Pre-order: parents precede children.
        assert!(s.parent < i, "scope {i} precedes its parent: {}", ctx());
        // Ranges are well-formed and nest inside the parent.
        assert!(s.start <= s.end && s.end <= n_tokens, "{}", ctx());
        assert!(s.header >= s.start && s.header <= s.end, "{}", ctx());
        let p = &tree.scopes[s.parent];
        assert!(
            p.start <= s.start && s.end <= p.end,
            "scope {i} escapes its parent: {}",
            ctx()
        );
        if let Some(body) = s.body {
            assert!(body >= s.header && body < s.end, "{}", ctx());
        }
    }

    // Partition: each token's owner contains it, and no *descendant*
    // of the owner also contains it (owner is innermost).
    for (t, &o) in tree.owner.iter().enumerate() {
        let s = tree.scopes.get(o).unwrap_or_else(|| panic!("{}", ctx()));
        assert!(
            o == 0 || (s.start <= t && t < s.end),
            "token {t} outside its owner {o}: {}",
            ctx()
        );
        for (c, child) in tree.scopes.iter().enumerate() {
            if c != o && tree.is_within(c, o) && child.start <= t && t < child.end {
                panic!(
                    "token {t} owned by {o} but also inside descendant {c}: {}",
                    ctx()
                );
            }
        }
    }

    // Sibling scopes never partially overlap: any two ranges are
    // either nested or disjoint.
    for (a, sa) in tree.scopes.iter().enumerate().skip(1) {
        for (b, sb) in tree.scopes.iter().enumerate().skip(a + 1) {
            let nested = (sa.start <= sb.start && sb.end <= sa.end)
                || (sb.start <= sa.start && sa.end <= sb.end);
            let disjoint = sa.end <= sb.start || sb.end <= sa.start;
            assert!(
                nested || disjoint,
                "scopes {a} and {b} partially overlap: {}",
                ctx()
            );
        }
    }
}

#[test]
fn token_ownership_partitions_arbitrary_soup() {
    for seed in 1..=300u64 {
        let mut rng = Rng::new(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let len = 1 + rng.below(120);
        let src = soup(&mut rng, len);
        let lexed = lexer::lex(&src);
        let tree = scope::build(&lexed.tokens);
        check_invariants(&src, &tree, lexed.tokens.len());
    }
}

#[test]
fn builder_is_deterministic() {
    for seed in [3, 17, 4242, 999_983] {
        let mut rng = Rng::new(seed);
        let src = soup(&mut rng, 90);
        let lexed = lexer::lex(&src);
        let a = scope::build(&lexed.tokens);
        let b = scope::build(&lexed.tokens);
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "seed {seed}");
    }
}

#[test]
fn test_mask_respects_ownership() {
    // Masked tokens are exactly those owned by a test-gated chain; on
    // real-looking input the mask must cover the `#[cfg(test)]` mod and
    // nothing else.
    let src = "
        pub fn live() -> u32 { 1 }
        #[cfg(test)]
        mod tests {
            #[test]
            fn t() { assert_eq!(super::live(), 1); }
        }
        pub fn also_live() -> u32 { 2 }
    ";
    let lexed = lexer::lex(src);
    let tree = scope::build(&lexed.tokens);
    let mask = tree.test_mask();
    assert_eq!(mask.len(), lexed.tokens.len());
    for (i, t) in lexed.tokens.iter().enumerate() {
        let expect_gated = t.line >= 3 && t.line <= 7;
        assert_eq!(
            mask[i], expect_gated,
            "token {:?} on line {} mask mismatch",
            t.text, t.line
        );
    }
}
