//! Report rendering: human text and byte-stable JSON.
//!
//! The JSON document is the machine interface CI scripts parse, so it
//! must be deterministic: fixed key order, findings sorted by
//! `(file, line, rule)`, counts over the *full* rule catalog (a rule
//! with zero findings still appears — consumers never need to handle a
//! missing key). Two runs over the same tree emit identical bytes.

use crate::engine::{Finding, Report};
use crate::json::quote;
use crate::rules::CATALOG;

/// Schema tag of the JSON report document. `v2` added `cache_hits` and
/// the D4/D5/C1/F1/U1 rule counters.
pub const REPORT_SCHEMA: &str = "npp.lint.report/v2";

/// Renders the deterministic JSON report document.
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n");
    push_kv(&mut out, 1, "schema", &quote(REPORT_SCHEMA), true);
    push_kv(
        &mut out,
        1,
        "files_scanned",
        &report.files_scanned.to_string(),
        true,
    );
    push_kv(
        &mut out,
        1,
        "cache_hits",
        &report.cache_hits.to_string(),
        true,
    );
    push_kv(
        &mut out,
        1,
        "suppressed",
        &report.suppressed.to_string(),
        true,
    );
    push_kv(
        &mut out,
        1,
        "baselined",
        &report.baselined.to_string(),
        true,
    );

    out.push_str("  \"by_rule\": {\n");
    for (i, rule) in CATALOG.iter().enumerate() {
        let count = report.findings.iter().filter(|f| f.rule == *rule).count();
        push_kv(
            &mut out,
            2,
            rule.code(),
            &count.to_string(),
            i + 1 < CATALOG.len(),
        );
    }
    out.push_str("  },\n");

    out.push_str("  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(&finding_json(f));
    }
    if !report.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
    push_kv(
        &mut out,
        1,
        "total",
        &report.findings.len().to_string(),
        false,
    );
    out.push_str("}\n");
    out
}

fn finding_json(f: &Finding) -> String {
    format!(
        "{{\"rule\": {}, \"key\": {}, \"file\": {}, \"line\": {}, \"snippet\": {}, \"message\": {}}}",
        quote(f.rule.code()),
        quote(f.rule.key()),
        quote(&f.file),
        f.line,
        quote(&f.snippet),
        quote(&f.message),
    )
}

fn push_kv(out: &mut String, indent: usize, key: &str, value: &str, comma: bool) {
    for _ in 0..indent {
        out.push_str("  ");
    }
    out.push_str(&quote(key));
    out.push_str(": ");
    out.push_str(value);
    if comma {
        out.push(',');
    }
    out.push('\n');
}

/// Renders the human report (findings, unused suppressions, summary).
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n    {}\n",
            f.file,
            f.line,
            f.rule.code(),
            f.message,
            f.snippet
        ));
    }
    for u in &report.unused {
        out.push_str(&format!(
            "{}:{}: note: unused suppression `allow({})` — drop it or the rule it silences moved\n",
            u.file, u.line, u.key
        ));
    }
    out.push_str(&format!(
        "{} file(s) scanned ({} from cache): {} finding(s), {} suppressed in source, {} absorbed by the P1 baseline\n",
        report.files_scanned,
        report.cache_hits,
        report.findings.len(),
        report.suppressed,
        report.baselined,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Finding;
    use crate::rules::RuleId;

    #[test]
    fn json_is_stable_and_escapes() {
        let mut report = Report {
            files_scanned: 1,
            ..Report::default()
        };
        report.findings.push(Finding {
            rule: RuleId::P1Panic,
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            snippet: "let s = \"quote \\\" here\";".into(),
            message: "msg".into(),
        });
        let a = render_json(&report);
        let b = render_json(&report);
        assert_eq!(a, b);
        assert!(a.contains("\"P1\": 1"));
        assert!(a.contains("\"D1\": 0"));
        // Every catalog rule gets a counter, including the new ones.
        for rule in CATALOG {
            assert!(
                a.contains(&format!("\"{}\":", rule.code())),
                "{}",
                rule.code()
            );
        }
        assert!(a.contains("\"cache_hits\": 0"));
        assert!(a.contains("\\\""));
        assert!(a.ends_with("}\n"));
    }

    #[test]
    fn text_mentions_rule_and_counts() {
        let mut report = Report {
            files_scanned: 2,
            cache_hits: 1,
            ..Report::default()
        };
        report.findings.push(Finding {
            rule: RuleId::D1MapIter,
            file: "a.rs".into(),
            line: 1,
            snippet: "for k in &m {".into(),
            message: "iteration".into(),
        });
        let text = render_text(&report);
        assert!(text.contains("[D1]"));
        assert!(text.contains("2 file(s) scanned (1 from cache): 1 finding(s)"));
    }
}
