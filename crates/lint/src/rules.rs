//! The rule catalog.
//!
//! Every rule is a pattern scan over the lexed token stream of one
//! file (comments and string contents never reach a rule — see
//! [`crate::lexer`]). Rules are deliberately heuristic: they trade
//! type-level precision for a zero-dependency implementation, and any
//! false positive can be silenced in place with
//! `// npp-lint: allow(<key>) reason="…"` — the reason string is
//! mandatory, so each silencing documents *why* the site is safe.
//!
//! | id | key                 | scope               | what it catches |
//! |----|---------------------|---------------------|-----------------|
//! | D1 | `map-iter`          | determinism crates  | iterating a `HashMap`/`HashSet` (order is seed-dependent) |
//! | D2 | `wall-clock`        | determinism crates  | `Instant::now`, `SystemTime`, `thread_rng`, `env::var*`, `wall_clock()` calls |
//! | D3 | `float-reduce`      | determinism crates  | `.sum()`/`.fold()` fed by a hash-map iterator |
//! | D4 | `thread-spawn`      | all but sanctioned executor modules | `thread::spawn`/`scope`/`Builder` outside the parallel engine, sweep executor, serve daemon, and telemetry |
//! | P1 | `panic`             | all library code    | `.unwrap()`, panic-family macros, slice indexing (ratcheted) |
//! | S1 | `deny-unknown-fields` | `sweep` specs     | `Deserialize` struct without `deny_unknown_fields` |
//! | A1 | —                   | everywhere          | malformed suppression directive |

use std::collections::BTreeSet;

use crate::lexer::{Tok, TokKind};

/// Identifier of one rule in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Hash-map/set iteration in a determinism-critical crate.
    D1MapIter,
    /// Wall-clock, OS randomness, or environment read in simulation code.
    D2WallClock,
    /// Unordered floating-point reduction over a hash-map iterator.
    D3FloatReduce,
    /// `thread::spawn`/`scope`/`Builder` outside a sanctioned executor
    /// module: ad-hoc threads make replay order machine-dependent.
    D4ThreadSpawn,
    /// Panic-prone construct in non-test library code.
    P1Panic,
    /// `Deserialize` struct without `#[serde(deny_unknown_fields)]`.
    S1DenyUnknownFields,
    /// Malformed `npp-lint` suppression directive.
    A1BadSuppression,
}

impl RuleId {
    /// Short rule code used in reports (`D1`, `P1`, …).
    pub fn code(self) -> &'static str {
        match self {
            RuleId::D1MapIter => "D1",
            RuleId::D2WallClock => "D2",
            RuleId::D3FloatReduce => "D3",
            RuleId::D4ThreadSpawn => "D4",
            RuleId::P1Panic => "P1",
            RuleId::S1DenyUnknownFields => "S1",
            RuleId::A1BadSuppression => "A1",
        }
    }

    /// Suppression key accepted in `// npp-lint: allow(<key>)`.
    /// [`RuleId::A1BadSuppression`] is not suppressible.
    pub fn key(self) -> &'static str {
        match self {
            RuleId::D1MapIter => "map-iter",
            RuleId::D2WallClock => "wall-clock",
            RuleId::D3FloatReduce => "float-reduce",
            RuleId::D4ThreadSpawn => "thread-spawn",
            RuleId::P1Panic => "panic",
            RuleId::S1DenyUnknownFields => "deny-unknown-fields",
            RuleId::A1BadSuppression => "bad-suppression",
        }
    }

    /// Parses a suppression key back into a rule.
    pub fn from_key(key: &str) -> Option<Self> {
        match key {
            "map-iter" => Some(RuleId::D1MapIter),
            "wall-clock" => Some(RuleId::D2WallClock),
            "float-reduce" => Some(RuleId::D3FloatReduce),
            "thread-spawn" => Some(RuleId::D4ThreadSpawn),
            "panic" => Some(RuleId::P1Panic),
            "deny-unknown-fields" => Some(RuleId::S1DenyUnknownFields),
            _ => None,
        }
    }
}

/// One raw rule hit inside a single file (the engine attaches the file
/// path, snippet, and suppression state).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hit {
    /// Which rule fired.
    pub rule: RuleId,
    /// 1-based source line.
    pub line: u32,
    /// Human message: what was matched and how to fix or silence it.
    pub message: String,
}

/// Per-file inputs to the rule scans.
#[derive(Debug, Clone, Copy)]
pub struct FileScope {
    /// Apply the determinism rules (D1–D3)?
    pub determinism: bool,
    /// Apply the spec-strictness rule (S1)?
    pub spec_strictness: bool,
    /// Apply the thread-discipline rule (D4)? False only for the
    /// sanctioned executor modules — an exemption that holds even in
    /// strict explicit-path mode, since those files *are* the place
    /// threads belong.
    pub thread_discipline: bool,
}

/// Runs every applicable rule over one file's tokens. `masked[i]`
/// marks tokens inside `#[cfg(test)]` / `#[test]` items, which no rule
/// inspects.
pub fn scan(tokens: &[Tok], masked: &[bool], scope: FileScope) -> Vec<Hit> {
    let mut hits = Vec::new();
    let live = |i: usize| !masked.get(i).copied().unwrap_or(false);
    if scope.determinism {
        let maps = map_names(tokens, &live);
        let iter_sites = map_iter_sites(tokens, &live, &maps);
        for &(i, line) in &iter_sites {
            hits.push(Hit {
                rule: RuleId::D1MapIter,
                line,
                message: format!(
                    "hash-map/set iteration ({}): iteration order depends on the hasher seed; \
                     collect-and-sort first, use an index-addressed layout, or annotate \
                     `// npp-lint: allow(map-iter) reason=\"…\"`",
                    site_label(tokens, i)
                ),
            });
        }
        hits.extend(wall_clock(tokens, &live));
        hits.extend(float_reduce(tokens, &live, &iter_sites));
    }
    if scope.thread_discipline {
        hits.extend(thread_spawn(tokens, &live));
    }
    hits.extend(panic_hygiene(tokens, &live));
    if scope.spec_strictness {
        hits.extend(deny_unknown_fields(tokens, &live));
    }
    hits.sort_by_key(|h| (h.line, h.rule));
    hits
}

/// Marks every token inside an item gated on `#[cfg(test)]` or
/// `#[test]` (test modules, test fns): panic hygiene and determinism
/// rules are about shipping library code, not assertions in tests.
pub fn test_mask(tokens: &[Tok]) -> Vec<bool> {
    let mut masked = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if is_test_attr(tokens, i) {
            let start = i;
            // Skip all consecutive attributes, then mask through the
            // end of the item they decorate (`;` or a balanced block).
            let mut j = i;
            while let Some(next) = skip_attr(tokens, j) {
                j = next;
            }
            let end = item_end(tokens, j);
            for m in masked.iter_mut().take(end).skip(start) {
                *m = true;
            }
            i = end;
        } else {
            i += 1;
        }
    }
    masked
}

/// Does an attribute starting at `i` look like `#[cfg(test)]` or
/// `#[test]` (including `#[cfg(all(test, …))]` and friends)?
fn is_test_attr(tokens: &[Tok], i: usize) -> bool {
    if !(tok_is_punct(tokens, i, '#') && tok_is_punct(tokens, i + 1, '[')) {
        return false;
    }
    let Some(end) = skip_attr(tokens, i) else {
        return false;
    };
    let body = tokens.get(i + 2..end.saturating_sub(1)).unwrap_or(&[]);
    match body.first() {
        Some(t) if t.is_ident("test") => body.len() == 1,
        // `cfg(test)` / `cfg(all(test, …))` mask; `cfg(not(test))` is
        // library code and must stay visible to the rules.
        Some(t) if t.is_ident("cfg") => {
            body.iter().any(|t| t.is_ident("test")) && !body.iter().any(|t| t.is_ident("not"))
        }
        _ => false,
    }
}

/// If `i` starts an attribute (`#[…]`), returns the index just past its
/// closing `]`.
fn skip_attr(tokens: &[Tok], i: usize) -> Option<usize> {
    if !(tok_is_punct(tokens, i, '#') && tok_is_punct(tokens, i + 1, '[')) {
        return None;
    }
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(i + 1) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(j + 1);
            }
        }
    }
    None
}

/// Index just past the item starting at `j`: through the first `;` at
/// brace-depth zero, or through the matching `}` of the first block.
fn item_end(tokens: &[Tok], j: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(j) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return k + 1;
            }
        } else if t.is_punct(';') && depth == 0 {
            return k + 1;
        }
    }
    tokens.len()
}

fn tok_is_punct(tokens: &[Tok], i: usize, c: char) -> bool {
    tokens.get(i).is_some_and(|t| t.is_punct(c))
}

fn tok_is_ident(tokens: &[Tok], i: usize, word: &str) -> bool {
    tokens.get(i).is_some_and(|t| t.is_ident(word))
}

/// Identifiers bound to `HashMap`/`HashSet` values in this file:
/// `name: HashMap<…>` (fields, lets, params) and
/// `name = HashMap::new()`-style initializations.
fn map_names(tokens: &[Tok], live: &dyn Fn(usize) -> bool) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (i, t) in tokens.iter().enumerate() {
        if !live(i) || t.kind != TokKind::Ident {
            continue;
        }
        if t.text != "HashMap" && t.text != "HashSet" {
            continue;
        }
        // Walk left over a `std :: collections ::`-style path prefix.
        let mut j = i;
        while j >= 2 && tok_is_punct(tokens, j - 1, ':') && tok_is_punct(tokens, j - 2, ':') {
            j = j.saturating_sub(3);
            if !tokens.get(j).is_some_and(|t| t.kind == TokKind::Ident) {
                break;
            }
        }
        if j == 0 {
            continue;
        }
        match tokens.get(j - 1) {
            // `name : HashMap<…>` — field, binding, or parameter type.
            Some(p) if p.is_punct(':') => {
                if let Some(name) = tokens.get(j.saturating_sub(2)) {
                    if name.kind == TokKind::Ident {
                        names.insert(name.text.clone());
                    }
                }
            }
            // `name = HashMap::new()` / `with_capacity` / `from`.
            Some(p) if p.is_punct('=') => {
                if let Some(name) = tokens.get(j.saturating_sub(2)) {
                    if name.kind == TokKind::Ident {
                        names.insert(name.text.clone());
                    }
                }
            }
            _ => {}
        }
    }
    names
}

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
    "retain",
];

/// D1 sites: `(token index of the method/receiver, line)`.
fn map_iter_sites(
    tokens: &[Tok],
    live: &dyn Fn(usize) -> bool,
    maps: &BTreeSet<String>,
) -> Vec<(usize, u32)> {
    let mut sites = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !live(i) || t.kind != TokKind::Ident {
            continue;
        }
        // `recv . method (` with a hash-typed receiver.
        if ITER_METHODS.contains(&t.text.as_str())
            && i >= 2
            && tok_is_punct(tokens, i - 1, '.')
            && tok_is_punct(tokens, i + 1, '(')
            && tokens
                .get(i - 2)
                .is_some_and(|r| r.kind == TokKind::Ident && maps.contains(&r.text))
        {
            sites.push((i, t.line));
            continue;
        }
        // `for pat in [&][mut] [self.]name {` over a hash container.
        if t.text == "for" {
            if let Some((idx, line)) = for_loop_over_map(tokens, i, maps) {
                sites.push((idx, line));
            }
        }
    }
    sites
}

/// If the `for` loop starting at token `i` iterates a bare hash-typed
/// binding (`for x in &map {`), returns the receiver's site.
fn for_loop_over_map(tokens: &[Tok], i: usize, maps: &BTreeSet<String>) -> Option<(usize, u32)> {
    // Find `in` at bracket-depth 0 (skipping the loop pattern).
    let mut depth = 0i32;
    let mut j = i + 1;
    let in_idx = loop {
        let t = tokens.get(j)?;
        match () {
            _ if t.is_punct('(') || t.is_punct('[') => depth += 1,
            _ if t.is_punct(')') || t.is_punct(']') => depth -= 1,
            _ if t.is_ident("in") && depth == 0 => break j,
            _ if t.is_punct('{') => return None,
            _ => {}
        }
        j += 1;
    };
    // Expression tokens between `in` and the body `{`.
    let mut expr = Vec::new();
    let mut k = in_idx + 1;
    loop {
        let t = tokens.get(k)?;
        if t.is_punct('{') {
            break;
        }
        expr.push((k, t));
        k += 1;
    }
    // Accept `&`, `&mut`, `self .` prefixes, then one identifier.
    let mut rest: &[(usize, &Tok)] = &expr;
    while let Some((_, t)) = rest.first() {
        if t.is_punct('&') || t.is_ident("mut") || t.is_ident("self") || t.is_punct('.') {
            rest = rest.get(1..).unwrap_or(&[]);
        } else {
            break;
        }
    }
    match rest {
        [(idx, t)] if t.kind == TokKind::Ident && maps.contains(&t.text) => Some((*idx, t.line)),
        _ => None,
    }
}

/// Label for a D1 site: `recv.method` or the receiver name.
fn site_label(tokens: &[Tok], i: usize) -> String {
    let here = tokens.get(i).map(|t| t.text.clone()).unwrap_or_default();
    if i >= 2 && tok_is_punct(tokens, i - 1, '.') {
        if let Some(recv) = tokens.get(i - 2) {
            return format!("{}.{}()", recv.text, here);
        }
    }
    format!("for … in {here}")
}

/// D2: wall-clock, OS randomness, and environment reads.
fn wall_clock(tokens: &[Tok], live: &dyn Fn(usize) -> bool) -> Vec<Hit> {
    let mut hits = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !live(i) || t.kind != TokKind::Ident {
            continue;
        }
        let what = match t.text.as_str() {
            "Instant" if path_call(tokens, i, "now") => Some("`Instant::now()`"),
            "SystemTime" => Some("`SystemTime`"),
            "thread_rng" => Some("`thread_rng()`"),
            // `npp_telemetry::wall_clock()` is the one sanctioned
            // wall-clock entry point, and it belongs to executor/CLI
            // layers: a *call* from a determinism crate is as suspect as
            // a raw `Instant::now()` (the definition itself is `fn
            // wall_clock` and stays clean).
            "wall_clock"
                if tok_is_punct(tokens, i + 1, '(')
                    && !tok_is_ident(tokens, i.wrapping_sub(1), "fn") =>
            {
                Some("`telemetry::wall_clock()` (the executor/CLI wall-clock entry point)")
            }
            "env"
                if path_call(tokens, i, "var")
                    || path_call(tokens, i, "var_os")
                    || path_call(tokens, i, "vars") =>
            {
                Some("environment read")
            }
            _ => None,
        };
        if let Some(what) = what {
            hits.push(Hit {
                rule: RuleId::D2WallClock,
                line: t.line,
                message: format!(
                    "{what} in simulation code: sim time must come from the simulator clock \
                     and seeds from the spec hash; annotate \
                     `// npp-lint: allow(wall-clock) reason=\"…\"` if this never reaches \
                     a deterministic document"
                ),
            });
        }
    }
    hits
}

/// D4: raw OS-thread entry points (`thread::spawn`, `thread::scope`,
/// `thread::Builder`) outside the sanctioned executor modules. Every
/// worker pool in the workspace lives behind a deterministic
/// fan-out/merge protocol (the component-sharded engine, the sweep
/// executor, the serve daemon); an ad-hoc thread anywhere else can
/// reorder observable effects machine-dependently.
fn thread_spawn(tokens: &[Tok], live: &dyn Fn(usize) -> bool) -> Vec<Hit> {
    let mut hits = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !live(i) || !t.is_ident("thread") {
            continue;
        }
        let member = ["spawn", "scope", "Builder"]
            .iter()
            .find(|m| path_call(tokens, i, m));
        if let Some(member) = member {
            hits.push(Hit {
                rule: RuleId::D4ThreadSpawn,
                line: t.line,
                message: format!(
                    "`thread::{member}` outside a sanctioned executor module: spawn work \
                     through the component-sharded engine, the sweep executor, or the serve \
                     daemon's pool instead (`// npp-lint: allow(thread-spawn) reason=\"…\"` \
                     only with a documented merge protocol)"
                ),
            });
        }
    }
    hits
}

/// `base :: member (` — a path call off `tokens[i]`.
fn path_call(tokens: &[Tok], i: usize, member: &str) -> bool {
    tok_is_punct(tokens, i + 1, ':')
        && tok_is_punct(tokens, i + 2, ':')
        && tok_is_ident(tokens, i + 3, member)
}

/// D3: a `.sum()`/`.fold()` later in the same statement as a hash-map
/// iterator source — the addition order is the iteration order.
fn float_reduce(
    tokens: &[Tok],
    live: &dyn Fn(usize) -> bool,
    iter_sites: &[(usize, u32)],
) -> Vec<Hit> {
    let mut hits = Vec::new();
    for &(start, _) in iter_sites {
        // Scan to the end of the statement (`;`, or `{`/`}` closing it).
        let mut depth = 0i32;
        for (k, t) in tokens.iter().enumerate().skip(start) {
            if !live(k) {
                break;
            }
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            } else if (t.is_punct(';') || t.is_punct('{') || t.is_punct('}')) && depth == 0 {
                break;
            } else if t.kind == TokKind::Ident
                && (t.text == "sum" || t.text == "fold" || t.text == "product")
                && tok_is_punct(tokens, k.saturating_sub(1), '.')
            {
                hits.push(Hit {
                    rule: RuleId::D3FloatReduce,
                    line: t.line,
                    message: format!(
                        "`.{}()` fed by a hash-map iterator: float accumulation order follows \
                         the unstable iteration order; sort the keys first or reduce over an \
                         index-addressed slice (`// npp-lint: allow(float-reduce) reason=\"…\"` \
                         to keep it)",
                        t.text
                    ),
                });
            }
        }
    }
    hits
}

/// Rust keywords that can directly precede a `[` that *opens an array
/// expression* rather than indexing the preceding value.
const NOT_INDEX_PREFIX: &[&str] = &[
    "in", "if", "else", "match", "return", "while", "loop", "break", "let", "mut", "as", "move",
    "ref", "const", "static", "where", "unsafe", "dyn", "impl", "box", "yield", "for",
];

/// P1: `.unwrap()`, panic-family macros, and slice/array indexing in
/// non-test library code. `.expect("…")` is allowed — the message is
/// the documented invariant.
fn panic_hygiene(tokens: &[Tok], live: &dyn Fn(usize) -> bool) -> Vec<Hit> {
    let mut hits = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !live(i) {
            continue;
        }
        if t.kind == TokKind::Ident {
            if t.text == "unwrap"
                && tok_is_punct(tokens, i.wrapping_sub(1), '.')
                && tok_is_punct(tokens, i + 1, '(')
                && tok_is_punct(tokens, i + 2, ')')
            {
                hits.push(Hit {
                    rule: RuleId::P1Panic,
                    line: t.line,
                    message: "`.unwrap()` in library code: return a `Result` or use \
                              `.expect(\"…invariant…\")` to document why this cannot fail"
                        .into(),
                });
            } else if matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            ) && tok_is_punct(tokens, i + 1, '!')
            {
                hits.push(Hit {
                    rule: RuleId::P1Panic,
                    line: t.line,
                    message: format!(
                        "`{}!` in library code: prefer returning an error; if the branch is \
                         provably dead, document the invariant where the ratchet baseline \
                         records it",
                        t.text
                    ),
                });
            }
        } else if t.is_punct('[') {
            // Indexing: `expr[…]` — the `[` directly follows a value
            // (identifier, call, or another index), not a keyword.
            let indexable = match i.checked_sub(1).and_then(|p| tokens.get(p)) {
                Some(p) if p.kind == TokKind::Ident => !NOT_INDEX_PREFIX.contains(&p.text.as_str()),
                Some(p) => p.is_punct(')') || p.is_punct(']'),
                None => false,
            };
            if indexable {
                hits.push(Hit {
                    rule: RuleId::P1Panic,
                    line: t.line,
                    message: "slice/array indexing in library code can panic on out-of-range \
                              input: prefer `.get(…)` with error handling \
                              (in-bounds-by-construction hot paths stay in the ratchet baseline)"
                        .into(),
                });
            }
        }
    }
    hits
}

/// S1: every struct deriving `Deserialize` must also carry
/// `#[serde(deny_unknown_fields)]` so spec-file typos fail loudly.
fn deny_unknown_fields(tokens: &[Tok], live: &dyn Fn(usize) -> bool) -> Vec<Hit> {
    let mut hits = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !(live(i) && tok_is_punct(tokens, i, '#') && tok_is_punct(tokens, i + 1, '[')) {
            i += 1;
            continue;
        }
        // Gather the whole contiguous attribute block.
        let block_start = i;
        let mut j = i;
        while let Some(next) = skip_attr(tokens, j) {
            j = next;
        }
        let attrs = tokens.get(block_start..j).unwrap_or(&[]);
        let derives_deserialize = attr_group_contains(attrs, "derive", "Deserialize");
        let denies_unknown = attr_group_contains(attrs, "serde", "deny_unknown_fields");
        // The decorated item: skip visibility, look for `struct`.
        let mut k = j;
        while tok_is_ident(tokens, k, "pub")
            || tok_is_punct(tokens, k, '(')
            || tok_is_ident(tokens, k, "crate")
            || tok_is_ident(tokens, k, "super")
            || tok_is_punct(tokens, k, ')')
        {
            k += 1;
        }
        if derives_deserialize && !denies_unknown && tok_is_ident(tokens, k, "struct") {
            let (line, name) = tokens
                .get(k + 1)
                .map(|t| (t.line, t.text.clone()))
                .unwrap_or((tokens.get(block_start).map_or(0, |t| t.line), String::new()));
            hits.push(Hit {
                rule: RuleId::S1DenyUnknownFields,
                line,
                message: format!(
                    "struct `{name}` derives `Deserialize` without \
                     `#[serde(deny_unknown_fields)]`: a typo in a spec file would be \
                     silently ignored instead of rejected"
                ),
            });
        }
        i = j.max(i + 1);
    }
    hits
}

/// Does any attribute in the block look like `#[outer(… member …)]`?
fn attr_group_contains(attrs: &[Tok], outer: &str, member: &str) -> bool {
    attrs.windows(2).enumerate().any(|(w, pair)| {
        matches!(pair, [a, b] if a.is_ident(outer) && b.is_punct('('))
            && attrs
                .iter()
                .skip(w + 2)
                .take_while(|t| !t.is_punct(']'))
                .any(|t| t.is_ident(member))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scan_all(src: &str) -> Vec<Hit> {
        let lexed = lex(src);
        let masked = test_mask(&lexed.tokens);
        scan(
            &lexed.tokens,
            &masked,
            FileScope {
                determinism: true,
                spec_strictness: true,
                thread_discipline: true,
            },
        )
    }

    fn rules_of(hits: &[Hit]) -> Vec<&'static str> {
        hits.iter().map(|h| h.rule.code()).collect()
    }

    #[test]
    fn d1_catches_field_and_for_iteration() {
        let src = "
            struct S { busy: std::collections::HashMap<u32, f64> }
            impl S {
                fn a(&self) { for (k, v) in &self.busy { drop((k, v)); } }
                fn b(&self) -> usize { self.busy.keys().count() }
            }
        ";
        let hits = scan_all(src);
        assert_eq!(
            rules_of(&hits).iter().filter(|r| **r == "D1").count(),
            2,
            "{hits:?}"
        );
    }

    #[test]
    fn d1_ignores_vec_iteration_and_map_lookup() {
        let src = "
            fn f(v: &Vec<u32>, m: &std::collections::HashMap<u32, u32>) -> u32 {
                let mut s = 0;
                for x in v { s += x; }
                s + m[&3]
            }
        ";
        // The `m[&3]` lookup is deterministic (and flagged only by P1's
        // indexing check), not by D1.
        let hits = scan_all(src);
        assert!(!rules_of(&hits).contains(&"D1"), "{hits:?}");
    }

    #[test]
    fn d2_catches_clocks_and_rng() {
        let src = "
            fn f() {
                let t = std::time::Instant::now();
                let r = thread_rng();
                let e = std::env::var(\"X\");
            }
        ";
        let hits = scan_all(src);
        assert_eq!(rules_of(&hits).iter().filter(|r| **r == "D2").count(), 3);
    }

    #[test]
    fn d2_catches_wall_clock_calls_but_not_the_definition() {
        let src = "
            pub fn wall_clock() -> std::time::Instant { unreachable_here() }
            fn f() { let t = npp_telemetry::wall_clock(); drop(t); }
        ";
        let hits = scan_all(src);
        let d2: Vec<_> = hits.iter().filter(|h| h.rule.code() == "D2").collect();
        assert_eq!(d2.len(), 1, "{hits:?}");
        assert!(d2.iter().all(|h| h.message.contains("wall_clock")));
    }

    #[test]
    fn d3_catches_sum_over_map_values() {
        let src = "
            fn f(m: std::collections::HashMap<u32, f64>) -> f64 {
                let total: f64 = m.values().map(|v| v * 2.0).sum();
                total
            }
        ";
        let hits = scan_all(src);
        assert!(rules_of(&hits).contains(&"D3"), "{hits:?}");
    }

    #[test]
    fn p1_catches_unwrap_panic_and_indexing() {
        let src = "
            fn f(v: &[u32], o: Option<u32>) -> u32 {
                if v.is_empty() { panic!(\"no\"); }
                v[0] + o.unwrap()
            }
        ";
        let hits = scan_all(src);
        assert_eq!(rules_of(&hits).iter().filter(|r| **r == "P1").count(), 3);
    }

    #[test]
    fn p1_allows_expect_arrays_and_tests() {
        let src = "
            fn f(o: Option<u32>) -> u32 {
                let table = [1, 2, 3];
                let ok = o.expect(\"caller checked\");
                for x in [4, 5] { drop(x); }
                ok + table.len() as u32
            }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { assert_eq!(super::f(Some(1)).unwrap_or(0), 1); let v = vec![0]; let _ = v[0]; }
            }
        ";
        let hits = scan_all(src);
        assert!(rules_of(&hits).is_empty(), "{hits:?}");
    }

    #[test]
    fn d4_catches_every_thread_entry_point() {
        let src = "
            fn f() {
                std::thread::spawn(|| {});
                thread::scope(|s| { drop(s); });
                let b = std::thread::Builder::new();
            }
        ";
        let hits = scan_all(src);
        assert_eq!(
            rules_of(&hits).iter().filter(|r| **r == "D4").count(),
            3,
            "{hits:?}"
        );
    }

    #[test]
    fn d4_ignores_near_misses_and_unscoped_files() {
        let src = "
            fn f(pool: &Pool) {
                pool.spawn(job);
                std::thread::sleep(std::time::Duration::from_millis(1));
                let thread_count = 4;
                drop(thread_count);
            }
        ";
        let hits = scan_all(src);
        assert!(!rules_of(&hits).contains(&"D4"), "{hits:?}");

        // A sanctioned executor module (thread_discipline off) may
        // spawn freely.
        let spawning = "fn g() { std::thread::spawn(|| {}); }";
        let lexed = lex(spawning);
        let masked = test_mask(&lexed.tokens);
        let hits = scan(
            &lexed.tokens,
            &masked,
            FileScope {
                determinism: true,
                spec_strictness: false,
                thread_discipline: false,
            },
        );
        assert!(rules_of(&hits).is_empty(), "{hits:?}");
    }

    #[test]
    fn s1_catches_missing_deny_unknown_fields() {
        let src = "
            #[derive(Debug, Serialize, Deserialize)]
            pub struct Open { pub x: f64 }

            #[derive(Deserialize)]
            #[serde(deny_unknown_fields)]
            pub struct Closed { pub x: f64 }

            #[derive(Deserialize)]
            pub enum Choice { A, B }
        ";
        let hits = scan_all(src);
        let s1: Vec<_> = hits.iter().filter(|h| h.rule.code() == "S1").collect();
        assert_eq!(s1.len(), 1, "{hits:?}");
        assert!(s1.iter().all(|h| h.message.contains("Open")));
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = r#"
            fn f() -> String {
                // map.iter() and x.unwrap() and Instant::now() in a comment
                format!("{} {}", "m.values().sum()", "panic!(boom)")
            }
        "#;
        let hits = scan_all(src);
        assert!(hits.is_empty(), "{hits:?}");
    }
}
