//! Analysis driver: file discovery, suppression directives, the P1
//! ratchet, the incremental cache, and report assembly.
//!
//! Determinism is a feature of the *linter* too: files are visited in
//! sorted order, findings are sorted by `(file, line, rule)`, and the
//! JSON rendering has a fixed key order — two runs over the same tree
//! produce byte-identical output, which CI relies on. The cache keeps
//! that property: a cached per-file result is exactly what a fresh
//! scan would produce (the cache key covers the file bytes, the rule
//! configuration, and the analyzer version).

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::baseline::Baseline;
use crate::cache::{self, Cache};
use crate::lexer::{lex, Comment, Tok};
use crate::rules::{scan, FileScope, Hit, RuleId};
use crate::scope::{ScopeKind, ScopeTree};
use crate::{LintError, Result};

/// Crates whose headline guarantee is bit-stable output; the
/// determinism rules (D1–D3, D5, F1) apply. `telemetry` is here because
/// its canonical trace is itself a deterministic document: its only
/// wall-clock reads are the sanctioned `wall_clock()` entry point and
/// the wall-track stamps, each annotated. `serve` is here because its
/// responses must be byte-identical to the engine's own documents:
/// every wall-clock read in the daemon is a latency/benchmark sample
/// and must be annotated as such.
const DETERMINISM_CRATES: &[&str] = &[
    "simnet",
    "sweep",
    "mechanisms",
    "core",
    "telemetry",
    "serve",
    "power",
];

/// Crates whose serde specs must reject unknown fields (S1).
const SPEC_CRATES: &[&str] = &["sweep", "serve"];

/// The only modules allowed to create OS threads (D4): each one hosts
/// a deterministic fan-out/merge protocol. The exemption is by exact
/// module, not by crate, and holds even in strict explicit-path mode —
/// these files are the sanctioned executors, so flagging them there
/// would just force blanket suppressions. The same set carries the
/// worker-purity obligation (C1): fns taking `&EngineCore` here are
/// the parallel engine's workers and must stay pure.
const THREAD_SANCTIONED: &[&str] = &[
    "crates/simnet/src/netsim_par.rs",
    "crates/sweep/src/exec.rs",
    "crates/serve/src/server.rs",
    "crates/serve/src/engine.rs",
    "crates/serve/src/bench.rs",
    "crates/telemetry/src/lib.rs",
];

/// Is `rel` one of the sanctioned executor modules? Explicit-path runs
/// can hand in absolute paths, so match on the workspace-relative
/// suffix.
fn thread_sanctioned(rel: &str) -> bool {
    THREAD_SANCTIONED
        .iter()
        .any(|s| rel == *s || rel.ends_with(&format!("/{s}")))
}

/// What to lint and against which ratchet.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root (the directory holding `Cargo.toml` + `crates/`).
    pub root: PathBuf,
    /// Explicit files/directories to lint instead of the workspace.
    /// Explicit-path mode is strict: every rule applies and the
    /// baseline is ignored (used by targeted runs and the smoke test).
    pub paths: Vec<PathBuf>,
    /// The P1 ratchet; `None` means "no allowance anywhere".
    pub baseline: Option<Baseline>,
    /// Incremental-cache file: unchanged files reuse their stored
    /// per-file result without re-lexing. `None` disables the cache;
    /// strict explicit-path runs never use it.
    pub cache: Option<PathBuf>,
}

impl Config {
    /// Lints the whole workspace under `root`.
    pub fn workspace(root: impl Into<PathBuf>) -> Self {
        Self {
            root: root.into(),
            paths: Vec::new(),
            baseline: None,
            cache: None,
        }
    }

    /// Lints only `paths` (files or directories), strictly.
    pub fn explicit(root: impl Into<PathBuf>, paths: Vec<PathBuf>) -> Self {
        Self {
            root: root.into(),
            paths,
            baseline: None,
            cache: None,
        }
    }

    /// Attaches the P1 ratchet baseline.
    #[must_use]
    pub fn with_baseline(mut self, baseline: Baseline) -> Self {
        self.baseline = Some(baseline);
        self
    }

    /// Attaches the incremental cache file.
    #[must_use]
    pub fn with_cache(mut self, path: impl Into<PathBuf>) -> Self {
        self.cache = Some(path.into());
        self
    }
}

/// One reportable finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: RuleId,
    /// Workspace-relative, `/`-separated path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// What was matched and how to fix or silence it.
    pub message: String,
}

/// A suppression that silenced nothing — stale annotations rot, so
/// the text report calls them out (they do not fail the gate). A
/// suppression whose rule *does* fire elsewhere in the file is worse
/// than stale — it is attached to the wrong scope — and is reported as
/// an A1 finding instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnusedSuppression {
    /// File containing the directive.
    pub file: String,
    /// Directive line.
    pub line: u32,
    /// The suppression key it names.
    pub key: String,
}

/// One file's contribution to a report, before the workspace-level P1
/// ratchet. This is the unit the incremental cache stores: it depends
/// only on the file's bytes and its [`FileScope`], both folded into
/// the cache key, so replaying it is indistinguishable from a fresh
/// scan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileResult {
    /// Pre-ratchet unsuppressed findings (including A1), sorted by
    /// `(line, rule)`.
    pub findings: Vec<Finding>,
    /// Findings silenced by in-source directives.
    pub suppressed: usize,
    /// Directives that silenced nothing anywhere in the file.
    pub unused: Vec<UnusedSuppression>,
}

/// Outcome of one lint run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Unsuppressed findings, sorted by `(file, line, rule)`. The gate
    /// fails iff this is non-empty.
    pub findings: Vec<Finding>,
    /// Files inspected.
    pub files_scanned: usize,
    /// Files whose result was replayed from the incremental cache
    /// (never lexed this run).
    pub cache_hits: usize,
    /// Findings silenced by in-source `allow(…)` directives.
    pub suppressed: usize,
    /// P1 findings absorbed by the ratchet baseline.
    pub baselined: usize,
    /// Current per-file unsuppressed-P1 counts (input to
    /// `--update-baseline`); files with zero findings are omitted.
    pub p1_counts: BTreeMap<String, usize>,
    /// Directives that silenced nothing.
    pub unused: Vec<UnusedSuppression>,
}

impl Report {
    /// The baseline that would make this tree pass with zero slack.
    pub fn tightened_baseline(&self) -> Baseline {
        Baseline {
            files: self.p1_counts.clone(),
        }
    }

    /// `true` when the gate should fail.
    pub fn failed(&self) -> bool {
        !self.findings.is_empty()
    }

    /// Folds one file's result into the running totals.
    fn absorb(&mut self, result: FileResult) {
        for finding in &result.findings {
            if finding.rule == RuleId::P1Panic {
                *self.p1_counts.entry(finding.file.clone()).or_insert(0) += 1;
            }
        }
        self.findings.extend(result.findings);
        self.suppressed += result.suppressed;
        self.unused.extend(result.unused);
    }
}

/// Runs the analyzer per `config`.
///
/// # Errors
///
/// Propagates I/O failures; an unreadable source file is an error, not
/// a silent skip. (The cache file is advisory: a missing or corrupt
/// cache degrades to a cold run, and a failed cache write is ignored.)
pub fn lint(config: &Config) -> Result<Report> {
    let files = if config.paths.is_empty() {
        workspace_files(&config.root)?
    } else {
        explicit_files(&config.paths)?
    };
    let strict = !config.paths.is_empty();
    let cache_path = if strict {
        None
    } else {
        config.cache.as_deref()
    };
    let old_cache = cache_path.map(cache::load).unwrap_or_default();
    let mut new_cache = Cache::default();

    let mut report = Report::default();
    for path in &files {
        let rel = relative_path(&config.root, path);
        let source = fs::read_to_string(path)
            .map_err(|e| LintError::Io(format!("cannot read {}: {e}", path.display())))?;
        let scope = file_scope(&rel, strict);
        let result = if cache_path.is_some() {
            let hash = cache::content_hash(&source, scope);
            let result = match old_cache.lookup(&rel, hash) {
                Some(cached) => {
                    report.cache_hits += 1;
                    cached.clone()
                }
                None => lint_file(&rel, &source, scope),
            };
            new_cache.insert(&rel, hash, result.clone());
            result
        } else {
            lint_file(&rel, &source, scope)
        };
        report.absorb(result);
        report.files_scanned += 1;
    }

    // The ratchet: a file's P1 findings are absorbed while it stays at
    // or under its recorded allowance (strict mode skips this).
    if !strict {
        let baseline = config.baseline.clone().unwrap_or_default();
        let mut kept = Vec::with_capacity(report.findings.len());
        for finding in std::mem::take(&mut report.findings) {
            let over = report.p1_counts.get(&finding.file).copied().unwrap_or(0)
                > baseline.allowance(&finding.file);
            if finding.rule == RuleId::P1Panic && !over {
                report.baselined += 1;
            } else {
                kept.push(finding);
            }
        }
        report.findings = kept;
    }

    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report
        .unused
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));

    if let Some(path) = cache_path {
        cache::save(path, &new_cache);
    }
    Ok(report)
}

/// Which rules apply to `rel` (workspace-relative path).
fn file_scope(rel: &str, strict: bool) -> FileScope {
    let sanctioned = thread_sanctioned(rel);
    if strict {
        return FileScope {
            determinism: true,
            spec_strictness: true,
            thread_discipline: !sanctioned,
            worker_purity: true,
        };
    }
    let crate_name = rel
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("");
    FileScope {
        determinism: DETERMINISM_CRATES.contains(&crate_name),
        spec_strictness: SPEC_CRATES.contains(&crate_name),
        thread_discipline: !sanctioned,
        // The dual of D4: exactly the modules allowed to spawn threads
        // carry the `&EngineCore` worker contract.
        worker_purity: sanctioned,
    }
}

/// Lints one file's source into a cacheable [`FileResult`].
fn lint_file(rel: &str, source: &str, scope: FileScope) -> FileResult {
    let lexed = lex(source);
    let tree = crate::scope::build(&lexed.tokens);
    let masked = tree.test_mask();
    let hits = scan(&lexed.tokens, &masked, scope, &tree, &lexed.comments);
    let (mut directives, bad) = parse_directives(&lexed.comments, &lexed.tokens, &tree);
    let lines: Vec<&str> = source.lines().collect();
    let snippet = |line: u32| -> String {
        let text = lines
            .get((line as usize).saturating_sub(1))
            .copied()
            .unwrap_or("")
            .trim();
        let mut s: String = text.chars().take(120).collect();
        if s.len() < text.len() {
            s.push('…');
        }
        s
    };

    let mut result = FileResult::default();
    for hit in bad {
        result.findings.push(Finding {
            rule: hit.rule,
            file: rel.to_string(),
            line: hit.line,
            snippet: snippet(hit.line),
            message: hit.message,
        });
    }

    for hit in hits {
        if let Some(d) = directives
            .iter_mut()
            .find(|d| d.rule == hit.rule && hit.line >= d.line && hit.line <= d.until)
        {
            d.used = true;
            result.suppressed += 1;
            continue;
        }
        result.findings.push(Finding {
            rule: hit.rule,
            file: rel.to_string(),
            line: hit.line,
            snippet: snippet(hit.line),
            message: hit.message,
        });
    }

    // A directive that silenced nothing is stale — and if its rule
    // *does* fire elsewhere in the file, it is attached to the wrong
    // scope, which is an A1 finding, not a note: the author believed
    // something was suppressed that is not.
    for d in directives.into_iter().filter(|d| !d.used) {
        let stray = result
            .findings
            .iter()
            .find(|f| f.rule == d.rule)
            .map(|f| f.line);
        if let Some(fires_at) = stray {
            result.findings.push(Finding {
                rule: RuleId::A1BadSuppression,
                file: rel.to_string(),
                line: d.line,
                snippet: snippet(d.line),
                message: format!(
                    "suppression `allow({})` silences nothing here, but {} fires at line \
                     {fires_at}: the directive is attached to the wrong scope — move it onto \
                     the offending line or directly above the enclosing item",
                    d.rule.key(),
                    d.rule.code(),
                ),
            });
        } else {
            result.unused.push(UnusedSuppression {
                file: rel.to_string(),
                line: d.line,
                key: d.rule.key().to_string(),
            });
        }
    }

    result.findings.sort_by_key(|f| (f.line, f.rule));
    result
}

/// A parsed `// npp-lint: allow(<key>) reason="…"` directive and the
/// line range it covers (inclusive).
#[derive(Debug)]
struct Directive {
    line: u32,
    /// Last covered line. By default the directive covers its own line
    /// and the next (`line + 1`); a directive sitting directly above an
    /// item header (including the item's attributes) covers the item's
    /// whole scope.
    until: u32,
    rule: RuleId,
    used: bool,
}

/// Extracts well-formed directives (with their scope coverage) and
/// reports malformed ones (A1).
fn parse_directives(
    comments: &[Comment],
    tokens: &[Tok],
    tree: &ScopeTree,
) -> (Vec<Directive>, Vec<Hit>) {
    let mut directives = Vec::new();
    let mut bad = Vec::new();
    for comment in comments {
        // Doc comments (`///…` lexes as text starting with `/`, `//!…`
        // with `!`) never carry live directives — they quote them.
        if comment.text.starts_with('/') || comment.text.starts_with('!') {
            continue;
        }
        let Some(after_tag) = comment.text.split("npp-lint:").nth(1) else {
            continue;
        };
        match parse_allow(after_tag) {
            Ok(rule) => directives.push(Directive {
                line: comment.line,
                until: scope_cover(tokens, tree, comment.line),
                rule,
                used: false,
            }),
            Err(why) => bad.push(Hit {
                rule: RuleId::A1BadSuppression,
                line: comment.line,
                message: format!(
                    "malformed suppression: {why}; expected \
                     `npp-lint: allow(<key>) reason=\"…\"` with a non-empty reason"
                ),
            }),
        }
    }
    (directives, bad)
}

/// Last line covered by a directive on `line`: if the next line starts
/// an item scope (the scope's first token, attributes included, sits on
/// `line + 1`), the directive covers the item's whole extent; otherwise
/// just the next line. The scope list is pre-ordered, so the first
/// match is the outermost item starting there.
fn scope_cover(tokens: &[Tok], tree: &ScopeTree, line: u32) -> u32 {
    for scope in tree.scopes.iter().skip(1) {
        if scope.kind == ScopeKind::UnsafeBlock {
            continue;
        }
        let start_line = tokens.get(scope.start).map(|t| t.line);
        if start_line == Some(line + 1) {
            return tokens
                .get(scope.end.saturating_sub(1))
                .map_or(line + 1, |t| t.line);
        }
    }
    line + 1
}

/// Parses the `allow(<key>) reason="…"` tail of a directive.
fn parse_allow(text: &str) -> std::result::Result<RuleId, String> {
    let text = text.trim_start();
    let Some(rest) = text.strip_prefix("allow(") else {
        return Err("missing `allow(<key>)`".into());
    };
    let Some((key, rest)) = rest.split_once(')') else {
        return Err("unclosed `allow(`".into());
    };
    let rule = RuleId::from_key(key.trim())
        .ok_or_else(|| format!("unknown suppression key {:?}", key.trim()))?;
    let rest = rest.trim_start();
    let Some(reason) = rest.strip_prefix("reason=\"") else {
        return Err("missing `reason=\"…\"`".into());
    };
    let Some((reason, _)) = reason.split_once('"') else {
        return Err("unterminated reason string".into());
    };
    if reason.trim().is_empty() {
        return Err("empty reason".into());
    }
    Ok(rule)
}

/// All `.rs` files of the workspace's library source, sorted: the root
/// package's `src/` plus every `crates/*/src/`. `tests/`, `benches/`,
/// `examples/`, `vendor/`, and `target/` are out of scope — the rules
/// are about shipping library code.
fn workspace_files(root: &Path) -> Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates)
            .map_err(|e| LintError::Io(format!("cannot list {}: {e}", crates.display())))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let src = dir.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Expands explicit paths: files are taken as-is, directories are
/// walked recursively for `.rs` files.
fn explicit_files(paths: &[PathBuf]) -> Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for path in paths {
        if path.is_dir() {
            collect_rs(path, &mut files)?;
        } else if path.is_file() {
            files.push(path.clone());
        } else {
            return Err(LintError::Io(format!("no such path: {}", path.display())));
        }
    }
    files.sort();
    files.dedup();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| LintError::Io(format!("cannot list {}: {e}", dir.display())))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `root` with `/` separators (falls back to the
/// full path for out-of-tree explicit paths).
fn relative_path(root: &Path, path: &Path) -> String {
    match path.strip_prefix(root) {
        Ok(rel) => rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/"),
        Err(_) => path.display().to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(src: &str, scope: FileScope) -> Report {
        let mut report = Report::default();
        report.absorb(lint_file("crates/x/src/lib.rs", src, scope));
        report
            .findings
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        report
    }

    const ALL: FileScope = FileScope {
        determinism: true,
        spec_strictness: true,
        thread_discipline: true,
        worker_purity: true,
    };

    #[test]
    fn suppression_silences_same_and_next_line() {
        let src = "
            fn f(m: std::collections::HashMap<u32, u32>) -> usize {
                // npp-lint: allow(map-iter) reason=\"count is order-independent\"
                let n = m.keys().count();
                let o = m.keys().count(); // npp-lint: allow(map-iter) reason=\"same\"
                n + o
            }
        ";
        let report = run_on(src, ALL);
        assert_eq!(report.suppressed, 2, "{:?}", report.findings);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert!(report.unused.is_empty());
    }

    #[test]
    fn suppression_above_an_item_covers_its_whole_scope() {
        let src = "
            // npp-lint: allow(map-iter) reason=\"both drains feed order-independent counts\"
            fn f(m: std::collections::HashMap<u32, u32>) -> usize {
                let mut total = 0usize;
                let n = m.keys().count();
                let o = m.values().count();
                total += n + o;
                total
            }
        ";
        let report = run_on(src, ALL);
        assert_eq!(report.suppressed, 2, "{:?}", report.findings);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert!(report.unused.is_empty());
    }

    #[test]
    fn fn_scoped_suppression_does_not_leak_to_siblings() {
        let src = "
            // npp-lint: allow(map-iter) reason=\"scoped to f only\"
            fn f(m: &std::collections::HashMap<u32, u32>) -> usize {
                m.keys().count()
            }
            fn g(m: &std::collections::HashMap<u32, u32>) -> usize {
                m.keys().count()
            }
        ";
        let report = run_on(src, ALL);
        assert_eq!(report.suppressed, 1);
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert_eq!(
            report.findings.first().map(|f| f.rule),
            Some(RuleId::D1MapIter)
        );
    }

    #[test]
    fn malformed_directives_are_findings() {
        let src = "
            // npp-lint: allow(map-iter)
            // npp-lint: allow(bogus-key) reason=\"x\"
            // npp-lint: allow(panic) reason=\"\"
            fn f() {}
        ";
        let report = run_on(src, ALL);
        assert_eq!(report.findings.len(), 3, "{:?}", report.findings);
        assert!(report
            .findings
            .iter()
            .all(|f| f.rule == RuleId::A1BadSuppression));
    }

    #[test]
    fn unused_directives_are_reported_not_fatal() {
        let src = "
            // npp-lint: allow(wall-clock) reason=\"nothing here uses a clock\"
            fn f() {}
        ";
        let report = run_on(src, ALL);
        assert!(report.findings.is_empty());
        assert_eq!(report.unused.len(), 1);
        assert_eq!(
            report.unused.first().map(|u| u.key.as_str()),
            Some("wall-clock")
        );
    }

    #[test]
    fn wrong_scope_suppressions_are_a1_findings() {
        let src = "
            fn clean() {
                // npp-lint: allow(map-iter) reason=\"nothing iterates here\"
                let x = 1;
                let _ = x;
            }
            fn dirty(m: &std::collections::HashMap<u32, u32>) -> usize {
                m.keys().count()
            }
        ";
        let report = run_on(src, ALL);
        let rules: Vec<&str> = report.findings.iter().map(|f| f.rule.code()).collect();
        assert!(rules.contains(&"A1"), "{:?}", report.findings);
        assert!(rules.contains(&"D1"), "{:?}", report.findings);
        assert!(report.unused.is_empty(), "{:?}", report.unused);
    }

    #[test]
    fn sanctioned_executor_modules_are_exempt_from_d4_even_when_strict() {
        for rel in [
            "crates/simnet/src/netsim_par.rs",
            "crates/serve/src/server.rs",
            "/abs/checkout/crates/telemetry/src/lib.rs",
        ] {
            assert!(!file_scope(rel, true).thread_discipline, "{rel}");
            assert!(!file_scope(rel, false).thread_discipline, "{rel}");
            // The same modules carry the worker-purity obligation.
            assert!(file_scope(rel, false).worker_purity, "{rel}");
        }
        assert!(file_scope("crates/simnet/src/netsim.rs", true).thread_discipline);
        assert!(file_scope("crates/serve/src/cache.rs", false).thread_discipline);
        assert!(!file_scope("crates/serve/src/cache.rs", false).worker_purity);
        assert!(file_scope("crates/serve/src/cache.rs", true).worker_purity);
    }

    #[test]
    fn p1_counts_feed_the_ratchet() {
        let src = "
            fn f(o: Option<u32>, v: &[u32]) -> u32 { o.unwrap() + v[0] }
        ";
        let report = run_on(src, ALL);
        assert_eq!(
            report.p1_counts.get("crates/x/src/lib.rs").copied(),
            Some(2)
        );
        let tightened = report.tightened_baseline();
        assert_eq!(tightened.total(), 2);
    }
}
