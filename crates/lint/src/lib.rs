//! # npp-lint
//!
//! Workspace determinism & panic-hygiene static analyzer.
//!
//! The repo's headline guarantees — bit-identical parallel-vs-serial
//! sweep documents and bit-stable simulator rates — die silently the
//! moment a hot crate iterates a `HashMap` or reads a wall clock. The
//! runtime oracles (proptests, differential engines) only catch that
//! when a generated case happens to hit it; this crate makes the
//! invariants *machine-checked at the source level* instead:
//!
//! - **D1 `map-iter`** — no `HashMap`/`HashSet` iteration in the
//!   determinism-critical crates (`simnet`, `sweep`, `mechanisms`,
//!   `core`);
//! - **D2 `wall-clock`** — no `Instant::now`/`SystemTime`/
//!   `thread_rng`/environment reads in simulation code;
//! - **D3 `float-reduce`** — no `.sum()`/`.fold()` fed by a hash-map
//!   iterator (float addition order = iteration order);
//! - **D5 `unstable-sort`** — no tie-prone unstable sorts or
//!   `partial_cmp` comparators in determinism crates;
//! - **C1 `worker-purity`** — fns taking `&EngineCore` (parallel
//!   workers) stay free of interior mutability, atomics, and `unsafe`;
//! - **F1 `float-order`** — no float accumulation inside loops over
//!   non-index-ordered collections;
//! - **U1 `unsafe-audit`** — every `unsafe` block carries an adjacent
//!   `// SAFETY:` comment;
//! - **P1 `panic`** — no `.unwrap()`, panic-family macros, or slice
//!   indexing in non-test library code, ratcheted by the committed
//!   `lint_baseline.json` so the count only goes down;
//! - **S1 `deny-unknown-fields`** — every `Deserialize` struct in the
//!   sweep-spec crate rejects unknown fields.
//!
//! The structural rules (D5/C1/F1/U1, scope-accurate test masking,
//! scope-attached suppressions) are powered by a dependency-free
//! brace-matched scope tree ([`scope`]); workspace runs reuse results
//! through a content-hashed incremental cache ([`cache`]), and reports
//! render as text, stable JSON, or SARIF 2.1.0 ([`sarif`]).
//!
//! False positives are silenced in place and must say why:
//!
//! ```text
//! // npp-lint: allow(map-iter) reason="drained into a Vec and sorted below"
//! ```
//!
//! The crate is dependency-free (its own lexer, its own JSON) so the
//! gate runs from a bare checkout. See `netpp lint --help` for the CLI
//! and DESIGN.md for the rule rationale.
//!
//! ```
//! use npp_lint::{lint, Config};
//!
//! let dir = std::env::temp_dir().join("npp-lint-doc-example");
//! std::fs::create_dir_all(&dir).unwrap();
//! let file = dir.join("bad.rs");
//! std::fs::write(&file, "fn f(o: Option<u32>) -> u32 { o.unwrap() }").unwrap();
//! let report = lint(&Config::explicit(&dir, vec![file])).unwrap();
//! assert_eq!(report.findings.len(), 1);
//! assert_eq!(report.findings[0].rule.code(), "P1");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod cache;
pub mod engine;
mod json;
pub mod lexer;
pub mod render;
pub mod rules;
pub mod sarif;
pub mod scope;

pub use baseline::Baseline;
pub use engine::{lint, Config, FileResult, Finding, Report, UnusedSuppression};
pub use render::{render_json, render_text, REPORT_SCHEMA};
pub use rules::RuleId;
pub use sarif::render_sarif;

/// Errors produced by this crate.
#[derive(Debug)]
pub enum LintError {
    /// File-system failure (unreadable source, unlistable directory).
    Io(String),
    /// Malformed baseline document.
    Baseline(String),
}

impl core::fmt::Display for LintError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LintError::Io(msg) => write!(f, "I/O: {msg}"),
            LintError::Baseline(msg) => write!(f, "baseline: {msg}"),
        }
    }
}

impl std::error::Error for LintError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, LintError>;
