//! Scope-aware rules: C1 worker-purity, F1 float-accumulation-order,
//! U1 unsafe-audit, D5 unstable-sort-ties.
//!
//! These rules consult the [`crate::scope`] tree: fn signatures (C1
//! needs the `&EngineCore` parameter), `unsafe` block extents (U1),
//! and enclosing-fn lookup (F1's sanctioned reduce helpers). They are
//! the reason the analyzer grew a syntax tree — none of them can be
//! expressed soundly as a flat token pattern.

use crate::lexer::{Comment, Tok, TokKind};
use crate::scope::{ScopeKind, ScopeTree};

use super::{is_float_literal, tok_is_punct, Hit, RuleId};

/// Interior-mutability types banned in worker-side fns. Any of these
/// inside a `&EngineCore` fn gives workers a side channel whose
/// observable order depends on thread scheduling.
const INTERIOR_MUT: &[&str] = &[
    "Cell",
    "RefCell",
    "UnsafeCell",
    "OnceCell",
    "OnceLock",
    "LazyLock",
    "LazyCell",
    "Mutex",
    "RwLock",
    "Condvar",
];

/// C1: functions that take a shared `&EngineCore` borrow are the
/// parallel engine's *workers* — the bit-identical merge argument
/// (PR 6/8) holds only because they are pure: read the core, write
/// private scratch, return plain batches. Interior mutability, atomics,
/// `static mut`, or `unsafe` inside one would reintroduce exactly the
/// cross-thread observability the architecture removed.
pub(super) fn worker_purity(
    tokens: &[Tok],
    live: &dyn Fn(usize) -> bool,
    tree: &ScopeTree,
) -> Vec<Hit> {
    let mut hits = Vec::new();
    for scope in &tree.scopes {
        if scope.kind != ScopeKind::Fn || !live(scope.header) {
            continue;
        }
        let Some(body) = scope.body else { continue };
        if !takes_shared_core(tokens, scope.header, body) {
            continue;
        }
        let fn_name = &scope.name;
        for j in body..scope.end {
            if !live(j) {
                continue;
            }
            let Some(t) = tokens.get(j) else { break };
            if t.kind != TokKind::Ident {
                continue;
            }
            let what = if INTERIOR_MUT.contains(&t.text.as_str()) {
                Some(format!("interior mutability (`{}`)", t.text))
            } else if t.text.starts_with("Atomic") && t.text.len() > "Atomic".len() {
                Some(format!("an atomic (`{}`)", t.text))
            } else if t.text == "unsafe" {
                Some("`unsafe`".to_string())
            } else if t.text == "static" && tokens.get(j + 1).is_some_and(|n| n.is_ident("mut")) {
                Some("`static mut`".to_string())
            } else {
                None
            };
            if let Some(what) = what {
                hits.push(Hit {
                    rule: RuleId::C1WorkerPurity,
                    line: t.line,
                    message: format!(
                        "worker fn `{fn_name}` takes `&EngineCore` but uses {what}: workers \
                         must be pure (read the shared core, write private scratch, return \
                         plain batches) or the deterministic merge argument breaks \
                         (`// npp-lint: allow(worker-purity) reason=\"…\"` only with a \
                         scheduling-independence argument)"
                    ),
                });
            }
        }
    }
    hits
}

/// Does the fn header `header..body` contain a shared (non-`mut`)
/// `&EngineCore` parameter? `&mut EngineCore` is the coordinator's
/// exclusive borrow and carries no purity obligation.
fn takes_shared_core(tokens: &[Tok], header: usize, body: usize) -> bool {
    for i in header..body {
        if !tok_is_punct(tokens, i, '&') {
            continue;
        }
        // Skip an optional lifetime, then require a non-mut EngineCore.
        let mut j = i + 1;
        if tokens.get(j).is_some_and(|t| t.kind == TokKind::Lifetime) {
            j += 1;
        }
        if tokens.get(j).is_some_and(|t| t.is_ident("mut")) {
            continue;
        }
        if tokens.get(j).is_some_and(|t| t.is_ident("EngineCore")) {
            return true;
        }
    }
    false
}

/// Reduce helpers sanctioned to accumulate floats over unordered
/// sources: each must establish a deterministic order internally (sort
/// first, or reduce over an index-addressed layout) and say so at its
/// definition. Checked by enclosing-fn name via the scope tree.
const REDUCE_SANCTIONED: &[&str] = &[];

/// F1: float `+=`/`-=`/`*=` accumulation inside a `for` loop whose
/// source is a non-index-ordered collection (today: hash containers).
/// D1 already flags the loop itself; F1 pinpoints the accumulation —
/// the lines whose *result* changes when iteration order does — so the
/// fix (sort first, or accumulate into an index-addressed slice) lands
/// in the right place.
pub(super) fn float_order(
    tokens: &[Tok],
    live: &dyn Fn(usize) -> bool,
    iter_sites: &[(usize, u32)],
    tree: &ScopeTree,
) -> Vec<Hit> {
    let mut hits = Vec::new();
    let accs = float_accumulators(tokens, live);
    for (i, t) in tokens.iter().enumerate() {
        if !live(i) || !t.is_ident("for") {
            continue;
        }
        let Some((expr_start, body_open)) = for_parts(tokens, i) else {
            continue;
        };
        // Unordered source: any D1 iteration site inside the loop head.
        if !iter_sites
            .iter()
            .any(|&(s, _)| s >= expr_start && s < body_open)
        {
            continue;
        }
        if enclosing_fn_sanctioned(tree, i) {
            continue;
        }
        let body_end = match_brace(tokens, body_open);
        for j in body_open..body_end {
            if !live(j) {
                continue;
            }
            let Some(name) = tokens.get(j) else { break };
            // `acc += …` / `acc -= …` / `acc *= …` on a float binding,
            // or any compound assignment whose RHS is a float literal.
            if name.kind != TokKind::Ident {
                continue;
            }
            let op = tokens.get(j + 1).filter(|o| {
                (o.is_punct('+') || o.is_punct('-') || o.is_punct('*'))
                    && tok_is_punct(tokens, j + 2, '=')
                    && !tok_is_punct(tokens, j + 3, '=')
            });
            let Some(op) = op else { continue };
            let float_target = accs.contains(&name.text.as_str());
            let float_rhs = tokens.get(j + 3).is_some_and(is_float_literal);
            if float_target || float_rhs {
                hits.push(Hit {
                    rule: RuleId::F1FloatOrder,
                    line: name.line,
                    message: format!(
                        "float accumulation `{} {}=` inside a loop over a non-index-ordered \
                         collection: the sum depends on visit order; sort the keys first or \
                         accumulate into an index-addressed slice \
                         (`// npp-lint: allow(float-order) reason=\"…\"` on the fn if the \
                         order is established elsewhere)",
                        name.text, op.text
                    ),
                });
            }
        }
    }
    hits
}

/// Names bound to float values in this file: `let mut x = 1.0`,
/// `let mut x: f64 = …`, and `x: f64` struct fields / params.
fn float_accumulators<'a>(tokens: &'a [Tok], live: &dyn Fn(usize) -> bool) -> Vec<&'a str> {
    let mut names = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !live(i) || t.kind != TokKind::Ident {
            continue;
        }
        // `name : f64` / `name : f32`.
        if tok_is_punct(tokens, i + 1, ':')
            && tokens
                .get(i + 2)
                .is_some_and(|y| y.is_ident("f64") || y.is_ident("f32"))
        {
            names.push(t.text.as_str());
        }
        // `name = <float literal>`.
        if tok_is_punct(tokens, i + 1, '=')
            && !tok_is_punct(tokens, i + 2, '=')
            && tokens.get(i + 2).is_some_and(is_float_literal)
        {
            names.push(t.text.as_str());
        }
    }
    names.sort_unstable();
    names.dedup();
    names
}

/// For the `for` loop at token `i`, the token index just past `in` and
/// the index of the body `{`.
fn for_parts(tokens: &[Tok], i: usize) -> Option<(usize, usize)> {
    let mut depth = 0i32;
    let mut j = i + 1;
    let in_idx = loop {
        let t = tokens.get(j)?;
        match () {
            _ if t.is_punct('(') || t.is_punct('[') => depth += 1,
            _ if t.is_punct(')') || t.is_punct(']') => depth -= 1,
            _ if t.is_ident("in") && depth == 0 => break j,
            _ if t.is_punct('{') => return None,
            _ => {}
        }
        j += 1;
    };
    let mut k = in_idx + 1;
    loop {
        let t = tokens.get(k)?;
        if t.is_punct('{') {
            return Some((in_idx + 1, k));
        }
        k += 1;
    }
}

/// Index just past the `}` matching the `{` at `open`.
fn match_brace(tokens: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
    }
    tokens.len()
}

/// Is the fn enclosing token `i` one of the sanctioned reduce helpers?
fn enclosing_fn_sanctioned(tree: &ScopeTree, i: usize) -> bool {
    let mut s = tree.owner_of(i);
    loop {
        let Some(scope) = tree.scopes.get(s) else {
            return false;
        };
        if scope.kind == ScopeKind::Fn {
            return REDUCE_SANCTIONED.contains(&scope.name.as_str());
        }
        if scope.parent == s {
            return false;
        }
        s = scope.parent;
    }
}

/// How many lines above an `unsafe` block its `// SAFETY:` comment may
/// start (inclusive window).
const SAFETY_WINDOW: u32 = 3;

/// U1: every `unsafe` block must carry an adjacent `// SAFETY:` comment
/// (within [`SAFETY_WINDOW`] lines above, or on the block's own line)
/// stating why the invariants hold. The scope tree makes this exact:
/// the rule fires per *block*, not per `unsafe` keyword, so `unsafe fn`
/// signatures and trait impls don't trip it.
pub(super) fn unsafe_audit(
    tokens: &[Tok],
    live: &dyn Fn(usize) -> bool,
    tree: &ScopeTree,
    comments: &[Comment],
) -> Vec<Hit> {
    let mut hits = Vec::new();
    for scope in &tree.scopes {
        if scope.kind != ScopeKind::UnsafeBlock || !live(scope.header) {
            continue;
        }
        let line = tokens.get(scope.header).map_or(scope.line, |t| t.line);
        let lo = line.saturating_sub(SAFETY_WINDOW);
        let documented = comments
            .iter()
            .any(|c| c.line >= lo && c.line <= line && c.text.contains("SAFETY:"));
        if !documented {
            hits.push(Hit {
                rule: RuleId::U1UnsafeAudit,
                line,
                message: "`unsafe` block without an adjacent `// SAFETY:` comment: state the \
                          invariant that makes this sound on the line(s) directly above the \
                          block (U1 has no suppression — every unsafe block is audited)"
                    .into(),
            });
        }
    }
    hits
}

/// Sort methods whose comparator sees only part of the element: equal
/// keys over *distinct* elements land in unspecified order.
const UNSTABLE_TIE_PRONE: &[&str] = &[
    "sort_unstable_by",
    "sort_unstable_by_key",
    "select_nth_unstable_by",
    "select_nth_unstable_by_key",
];

/// Sort methods that are order-safe per se but become non-total when
/// their comparator uses `partial_cmp` (NaN breaks the order).
const SORT_WITH_COMPARATOR: &[&str] = &[
    "sort_by",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "select_nth_unstable_by",
];

/// D5: unstable sorts with tie-prone keys, and `partial_cmp`
/// comparators inside any sort, in determinism crates. Plain
/// `.sort_unstable()` is fine — elements that compare equal under the
/// full `Ord` are indistinguishable, so their relative order cannot
/// leak into output.
pub(super) fn unstable_sort(tokens: &[Tok], live: &dyn Fn(usize) -> bool) -> Vec<Hit> {
    let mut hits = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !live(i) || t.kind != TokKind::Ident {
            continue;
        }
        if !(i >= 1 && tok_is_punct(tokens, i - 1, '.') && tok_is_punct(tokens, i + 1, '(')) {
            continue;
        }
        let name = t.text.as_str();
        let tie_prone = UNSTABLE_TIE_PRONE.contains(&name);
        let partial =
            SORT_WITH_COMPARATOR.contains(&name) && args_contain(tokens, i + 1, "partial_cmp");
        if partial {
            hits.push(Hit {
                rule: RuleId::D5UnstableSort,
                line: t.line,
                message: format!(
                    "`.{name}()` with a `partial_cmp` comparator: not a total order under \
                     NaN, so the sort result (and any document derived from it) is \
                     unspecified; use `total_cmp` or a key that is `Ord` \
                     (`// npp-lint: allow(unstable-sort) reason=\"…\"` only with a \
                     finiteness proof)"
                ),
            });
        } else if tie_prone {
            hits.push(Hit {
                rule: RuleId::D5UnstableSort,
                line: t.line,
                message: format!(
                    "`.{name}()` in a determinism crate: distinct elements whose keys \
                     compare equal land in unspecified order; use the stable variant, or \
                     make the comparator a total order over the whole element and annotate \
                     `// npp-lint: allow(unstable-sort) reason=\"…\"`"
                ),
            });
        }
    }
    hits
}

/// Does the paren-matched argument list opening at `open` contain the
/// identifier `needle`?
fn args_contain(tokens: &[Tok], open: usize, needle: &str) -> bool {
    let mut depth = 0i32;
    for t in tokens.iter().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return false;
            }
        } else if t.is_ident(needle) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::super::tests::{rules_of, scan_all, scan_with, ALL};
    use super::super::FileScope;

    #[test]
    fn c1_catches_impure_workers() {
        let src = "
            fn drive(core: &EngineCore, scratch: &mut WfScratch) -> Vec<(u32, f64)> {
                let guard = std::sync::Mutex::new(0u32);
                let n = std::sync::atomic::AtomicUsize::new(0);
                drop((guard, n));
                Vec::new()
            }
        ";
        let hits = scan_all(src);
        assert_eq!(
            rules_of(&hits).iter().filter(|r| **r == "C1").count(),
            2,
            "{hits:?}"
        );
    }

    #[test]
    fn c1_allows_pure_workers_and_coordinator_fns() {
        let src = "
            fn load_set(core: &EngineCore, out: &mut Vec<u32>) {
                out.extend(core.active.iter().copied());
            }
            fn integrate(core: &mut EngineCore, dt: f64) {
                let lock = std::sync::Mutex::new(dt);
                drop(lock);
            }
        ";
        // `iter()` here is on a Vec field, not a map binding, and the
        // Mutex lives in the coordinator's `&mut` fn.
        let hits = scan_all(src);
        assert!(!rules_of(&hits).contains(&"C1"), "{hits:?}");
    }

    #[test]
    fn c1_respects_file_scope() {
        let src = "
            fn w(core: &EngineCore) { let c = std::cell::RefCell::new(0); drop(c); }
        ";
        let hits = scan_with(
            src,
            FileScope {
                worker_purity: false,
                ..ALL
            },
        );
        assert!(!rules_of(&hits).contains(&"C1"), "{hits:?}");
    }

    #[test]
    fn f1_catches_float_accumulation_over_map() {
        let src = "
            fn f(m: &std::collections::HashMap<u32, f64>) -> f64 {
                let mut total = 0.0;
                for v in m.values() { total += v; }
                total
            }
        ";
        let hits = scan_all(src);
        assert!(rules_of(&hits).contains(&"F1"), "{hits:?}");
    }

    #[test]
    fn f1_ignores_ordered_sources_and_int_sums() {
        let src = "
            fn f(v: &[f64], m: &std::collections::HashMap<u32, u32>) -> f64 {
                let mut total = 0.0;
                for x in v { total += x; }
                let mut count = 0;
                for k in m.keys() { count += 1; let _ = k; }
                total + count as f64
            }
        ";
        // The Vec loop is index-ordered; the map loop accumulates an
        // integer (order-independent). D1 still fires on the map loop.
        let hits = scan_all(src);
        assert!(!rules_of(&hits).contains(&"F1"), "{hits:?}");
    }

    #[test]
    fn u1_requires_adjacent_safety_comment() {
        let bad = "
            fn f(p: *const u8) -> u8 {
                unsafe { *p }
            }
        ";
        let hits = scan_all(bad);
        assert_eq!(
            rules_of(&hits).iter().filter(|r| **r == "U1").count(),
            1,
            "{hits:?}"
        );

        let good = "
            fn f(p: *const u8) -> u8 {
                // SAFETY: caller guarantees `p` is valid for reads.
                unsafe { *p }
            }
        ";
        let hits = scan_all(good);
        assert!(!rules_of(&hits).contains(&"U1"), "{hits:?}");
    }

    #[test]
    fn u1_window_is_bounded() {
        let far = "
            fn f(p: *const u8) -> u8 {
                // SAFETY: too far away to count.
                let a = 1;
                let b = 2;
                let c = 3;
                let d = a + b + c;
                drop(d);
                unsafe { *p }
            }
        ";
        let hits = scan_all(far);
        assert!(rules_of(&hits).contains(&"U1"), "{hits:?}");
    }

    #[test]
    fn d5_catches_tie_prone_and_partial_cmp_sorts() {
        let src = "
            fn f(v: &mut Vec<(u32, f64)>) {
                v.sort_unstable_by_key(|e| e.0);
                v.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
            }
        ";
        let hits = scan_all(src);
        assert_eq!(
            rules_of(&hits).iter().filter(|r| **r == "D5").count(),
            2,
            "{hits:?}"
        );
    }

    #[test]
    fn d5_allows_plain_unstable_sort_and_total_cmp() {
        let src = "
            fn f(v: &mut Vec<u32>, w: &mut Vec<f64>) {
                v.sort_unstable();
                w.sort_by(|a, b| a.total_cmp(b));
            }
        ";
        let hits = scan_all(src);
        assert!(!rules_of(&hits).contains(&"D5"), "{hits:?}");
    }
}
