//! The rule catalog.
//!
//! Rules come in two layers. The *token* rules ([`tokens`]) are pattern
//! scans over the lexed stream of one file (comments and string
//! contents never reach a rule — see [`crate::lexer`]). The
//! *structural* rules ([`structural`]) additionally consult the
//! brace-matched scope tree ([`crate::scope`]): fn signatures, `unsafe`
//! block extents, and scope-accurate `#[cfg(test)]` masking. All rules
//! are deliberately heuristic: they trade type-level precision for a
//! zero-dependency implementation, and any false positive can be
//! silenced in place with `// npp-lint: allow(<key>) reason="…"` — the
//! reason string is mandatory, so each silencing documents *why* the
//! site is safe.
//!
//! | id | key                 | scope               | what it catches |
//! |----|---------------------|---------------------|-----------------|
//! | D1 | `map-iter`          | determinism crates  | iterating a `HashMap`/`HashSet` (order is seed-dependent) |
//! | D2 | `wall-clock`        | determinism crates  | `Instant::now`, `SystemTime`, `thread_rng`, `env::var*`, `wall_clock()` calls |
//! | D3 | `float-reduce`      | determinism crates  | `.sum()`/`.fold()` fed by a hash-map iterator |
//! | D4 | `thread-spawn`      | all but sanctioned executor modules | `thread::spawn`/`scope`/`Builder` outside the parallel engine, sweep executor, serve daemon, and telemetry |
//! | D5 | `unstable-sort`     | determinism crates  | `sort_unstable_by*` (ties between distinct elements land in unspecified order) and `partial_cmp` comparators in any sort |
//! | C1 | `worker-purity`     | sanctioned executor modules | fns taking `&EngineCore` using interior mutability, atomics, or `unsafe` |
//! | F1 | `float-order`       | determinism crates  | float `+=` accumulation inside a loop over a non-index-ordered collection |
//! | U1 | `safety-comment`    | all library code    | an `unsafe` block without an adjacent `// SAFETY:` comment |
//! | P1 | `panic`             | all library code    | `.unwrap()`, panic-family macros, slice indexing (ratcheted) |
//! | S1 | `deny-unknown-fields` | `sweep` specs     | `Deserialize` struct without `deny_unknown_fields` |
//! | A1 | —                   | everywhere          | malformed suppression directive; suppression attached to the wrong scope |

mod structural;
mod tokens;

use crate::lexer::{Comment, Tok, TokKind};
use crate::scope::ScopeTree;

/// Identifier of one rule in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Hash-map/set iteration in a determinism-critical crate.
    D1MapIter,
    /// Wall-clock, OS randomness, or environment read in simulation code.
    D2WallClock,
    /// Unordered floating-point reduction over a hash-map iterator.
    D3FloatReduce,
    /// `thread::spawn`/`scope`/`Builder` outside a sanctioned executor
    /// module: ad-hoc threads make replay order machine-dependent.
    D4ThreadSpawn,
    /// `sort_unstable_by`/`sort_unstable_by_key` (distinct elements
    /// with equal keys land in unspecified order) or a `partial_cmp`
    /// comparator (not a total order under NaN) in a sort.
    D5UnstableSort,
    /// A worker-side fn (takes `&EngineCore`) using interior
    /// mutability, atomics, `static mut`, or `unsafe` — the parallel
    /// engine's purity contract is what makes its merges bit-stable.
    C1WorkerPurity,
    /// Float accumulation (`+=`) inside a loop whose source is a
    /// non-index-ordered collection: the sum depends on visit order.
    F1FloatOrder,
    /// An `unsafe` block without an adjacent `// SAFETY:` comment.
    U1UnsafeAudit,
    /// Panic-prone construct in non-test library code.
    P1Panic,
    /// `Deserialize` struct without `#[serde(deny_unknown_fields)]`.
    S1DenyUnknownFields,
    /// Malformed or wrong-scope `npp-lint` suppression directive.
    A1BadSuppression,
}

/// Every rule, in report order. Shared by the JSON and SARIF renderers
/// so a rule can never be silently absent from one of them.
pub const CATALOG: &[RuleId] = &[
    RuleId::D1MapIter,
    RuleId::D2WallClock,
    RuleId::D3FloatReduce,
    RuleId::D4ThreadSpawn,
    RuleId::D5UnstableSort,
    RuleId::C1WorkerPurity,
    RuleId::F1FloatOrder,
    RuleId::U1UnsafeAudit,
    RuleId::P1Panic,
    RuleId::S1DenyUnknownFields,
    RuleId::A1BadSuppression,
];

impl RuleId {
    /// Short rule code used in reports (`D1`, `P1`, …).
    pub fn code(self) -> &'static str {
        match self {
            RuleId::D1MapIter => "D1",
            RuleId::D2WallClock => "D2",
            RuleId::D3FloatReduce => "D3",
            RuleId::D4ThreadSpawn => "D4",
            RuleId::D5UnstableSort => "D5",
            RuleId::C1WorkerPurity => "C1",
            RuleId::F1FloatOrder => "F1",
            RuleId::U1UnsafeAudit => "U1",
            RuleId::P1Panic => "P1",
            RuleId::S1DenyUnknownFields => "S1",
            RuleId::A1BadSuppression => "A1",
        }
    }

    /// Suppression key accepted in `// npp-lint: allow(<key>)`.
    /// [`RuleId::A1BadSuppression`] is not suppressible.
    pub fn key(self) -> &'static str {
        match self {
            RuleId::D1MapIter => "map-iter",
            RuleId::D2WallClock => "wall-clock",
            RuleId::D3FloatReduce => "float-reduce",
            RuleId::D4ThreadSpawn => "thread-spawn",
            RuleId::D5UnstableSort => "unstable-sort",
            RuleId::C1WorkerPurity => "worker-purity",
            RuleId::F1FloatOrder => "float-order",
            RuleId::U1UnsafeAudit => "safety-comment",
            RuleId::P1Panic => "panic",
            RuleId::S1DenyUnknownFields => "deny-unknown-fields",
            RuleId::A1BadSuppression => "bad-suppression",
        }
    }

    /// One-line rule description (SARIF `shortDescription`, docs).
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::D1MapIter => "hash-map/set iteration order depends on the hasher seed",
            RuleId::D2WallClock => {
                "wall-clock, OS randomness, or environment read in simulation code"
            }
            RuleId::D3FloatReduce => "float reduction fed by a hash-map iterator",
            RuleId::D4ThreadSpawn => "raw thread spawn outside a sanctioned executor module",
            RuleId::D5UnstableSort => {
                "unstable sort with tie-prone keys or a partial_cmp comparator"
            }
            RuleId::C1WorkerPurity => "worker-side fn breaks the &EngineCore purity contract",
            RuleId::F1FloatOrder => "float accumulation over a non-index-ordered collection",
            RuleId::U1UnsafeAudit => "unsafe block without an adjacent SAFETY comment",
            RuleId::P1Panic => "panic-prone construct in non-test library code",
            RuleId::S1DenyUnknownFields => "Deserialize struct accepts unknown fields",
            RuleId::A1BadSuppression => "malformed or wrong-scope suppression directive",
        }
    }

    /// Parses a report code (`D1`, `C1`, …) back into a rule — the
    /// inverse of [`RuleId::code`], used by the lint cache.
    pub fn from_code(code: &str) -> Option<Self> {
        CATALOG.iter().copied().find(|r| r.code() == code)
    }

    /// Parses a suppression key back into a rule. `bad-suppression`
    /// deliberately has no mapping: A1 cannot be suppressed.
    pub fn from_key(key: &str) -> Option<Self> {
        CATALOG
            .iter()
            .copied()
            .filter(|r| *r != RuleId::A1BadSuppression)
            .find(|r| r.key() == key)
    }
}

/// One raw rule hit inside a single file (the engine attaches the file
/// path, snippet, and suppression state).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hit {
    /// Which rule fired.
    pub rule: RuleId,
    /// 1-based source line.
    pub line: u32,
    /// Human message: what was matched and how to fix or silence it.
    pub message: String,
}

/// Per-file inputs to the rule scans.
#[derive(Debug, Clone, Copy)]
pub struct FileScope {
    /// Apply the determinism rules (D1–D3, D5, F1)?
    pub determinism: bool,
    /// Apply the spec-strictness rule (S1)?
    pub spec_strictness: bool,
    /// Apply the thread-discipline rule (D4)? False only for the
    /// sanctioned executor modules — an exemption that holds even in
    /// strict explicit-path mode, since those files *are* the place
    /// threads belong.
    pub thread_discipline: bool,
    /// Apply the worker-purity rule (C1)? The dual of D4: exactly the
    /// sanctioned executor modules carry the `&EngineCore` worker
    /// contract (strict mode turns it on everywhere so fixtures and
    /// targeted runs exercise it).
    pub worker_purity: bool,
}

/// Runs every applicable rule over one file's tokens. `masked[i]`
/// marks tokens inside `#[cfg(test)]` / `#[test]` scopes, which no
/// rule inspects; `tree` is the scope tree the mask came from.
pub fn scan(
    tokens: &[Tok],
    masked: &[bool],
    scope: FileScope,
    tree: &ScopeTree,
    comments: &[Comment],
) -> Vec<Hit> {
    let mut hits = Vec::new();
    let live = |i: usize| !masked.get(i).copied().unwrap_or(false);
    if scope.determinism {
        let maps = tokens::map_names(tokens, &live);
        let iter_sites = tokens::map_iter_sites(tokens, &live, &maps);
        for &(i, line) in &iter_sites {
            hits.push(Hit {
                rule: RuleId::D1MapIter,
                line,
                message: format!(
                    "hash-map/set iteration ({}): iteration order depends on the hasher seed; \
                     collect-and-sort first, use an index-addressed layout, or annotate \
                     `// npp-lint: allow(map-iter) reason=\"…\"`",
                    tokens::site_label(tokens, i)
                ),
            });
        }
        // npp-lint: allow(wall-clock) reason="this is the D2 rule's own dispatcher, not a clock read"
        hits.extend(tokens::wall_clock(tokens, &live));
        hits.extend(tokens::float_reduce(tokens, &live, &iter_sites));
        hits.extend(structural::unstable_sort(tokens, &live));
        hits.extend(structural::float_order(tokens, &live, &iter_sites, tree));
    }
    if scope.thread_discipline {
        hits.extend(tokens::thread_spawn(tokens, &live));
    }
    if scope.worker_purity {
        hits.extend(structural::worker_purity(tokens, &live, tree));
    }
    hits.extend(structural::unsafe_audit(tokens, &live, tree, comments));
    hits.extend(tokens::panic_hygiene(tokens, &live));
    if scope.spec_strictness {
        hits.extend(tokens::deny_unknown_fields(tokens, &live));
    }
    hits.sort_by_key(|h| (h.line, h.rule));
    hits
}

/// Per-token test mask for `tokens`: `true` inside `#[cfg(test)]` /
/// `#[test]` scopes. Convenience wrapper over the scope tree — callers
/// that already have a [`ScopeTree`] should use
/// [`ScopeTree::test_mask`] directly.
pub fn test_mask(tokens: &[Tok]) -> Vec<bool> {
    crate::scope::build(tokens).test_mask()
}

pub(crate) fn tok_is_punct(tokens: &[Tok], i: usize, c: char) -> bool {
    tokens.get(i).is_some_and(|t| t.is_punct(c))
}

pub(crate) fn tok_is_ident(tokens: &[Tok], i: usize, word: &str) -> bool {
    tokens.get(i).is_some_and(|t| t.is_ident(word))
}

/// If `i` starts an attribute (`#[…]`), returns the index just past its
/// closing `]`.
pub(crate) fn skip_attr(tokens: &[Tok], i: usize) -> Option<usize> {
    if !(tok_is_punct(tokens, i, '#') && tok_is_punct(tokens, i + 1, '[')) {
        return None;
    }
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(i + 1) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(j + 1);
            }
        }
    }
    None
}

/// `base :: member (` — a path call off `tokens[i]`.
pub(crate) fn path_call(tokens: &[Tok], i: usize, member: &str) -> bool {
    tok_is_punct(tokens, i + 1, ':')
        && tok_is_punct(tokens, i + 2, ':')
        && tok_is_ident(tokens, i + 3, member)
}

/// Is the numeric literal text a float (`1.5`, `2e3`, `0f64`, `1f32`)?
pub(crate) fn is_float_literal(t: &Tok) -> bool {
    t.kind == TokKind::Num
        && (t.text.contains('.')
            || t.text.ends_with("f64")
            || t.text.ends_with("f32")
            || (t.text.contains(['e', 'E']) && !t.text.starts_with("0x")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scope::build;

    pub(super) fn scan_with(src: &str, scope: FileScope) -> Vec<Hit> {
        let lexed = lex(src);
        let tree = build(&lexed.tokens);
        let masked = tree.test_mask();
        scan(&lexed.tokens, &masked, scope, &tree, &lexed.comments)
    }

    pub(super) const ALL: FileScope = FileScope {
        determinism: true,
        spec_strictness: true,
        thread_discipline: true,
        worker_purity: true,
    };

    pub(super) fn scan_all(src: &str) -> Vec<Hit> {
        scan_with(src, ALL)
    }

    pub(super) fn rules_of(hits: &[Hit]) -> Vec<&'static str> {
        hits.iter().map(|h| h.rule.code()).collect()
    }

    #[test]
    fn codes_keys_and_catalog_are_consistent() {
        for &rule in CATALOG {
            assert_eq!(RuleId::from_code(rule.code()), Some(rule));
            if rule != RuleId::A1BadSuppression {
                assert_eq!(RuleId::from_key(rule.key()), Some(rule));
            }
            assert!(!rule.summary().is_empty());
        }
        assert_eq!(RuleId::from_key("bad-suppression"), None);
        assert_eq!(RuleId::from_code("Z9"), None);
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = r#"
            fn f() -> String {
                // map.iter() and x.unwrap() and Instant::now() in a comment
                format!("{} {}", "m.values().sum()", "panic!(boom)")
            }
        "#;
        let hits = scan_all(src);
        assert!(hits.is_empty(), "{hits:?}");
    }
}
