//! Token-pattern rules: D1–D4, P1, S1.
//!
//! These rules need only the flat token stream (plus the test mask).
//! The scope-sensitive rules live in [`super::structural`].

use std::collections::BTreeSet;

use crate::lexer::{Tok, TokKind};

use super::{path_call, skip_attr, tok_is_ident, tok_is_punct, Hit, RuleId};

/// Identifiers bound to `HashMap`/`HashSet` values in this file:
/// `name: HashMap<…>` (fields, lets, params) and
/// `name = HashMap::new()`-style initializations.
pub(super) fn map_names(tokens: &[Tok], live: &dyn Fn(usize) -> bool) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (i, t) in tokens.iter().enumerate() {
        if !live(i) || t.kind != TokKind::Ident {
            continue;
        }
        if t.text != "HashMap" && t.text != "HashSet" {
            continue;
        }
        // Walk left over a `std :: collections ::`-style path prefix.
        let mut j = i;
        while j >= 2 && tok_is_punct(tokens, j - 1, ':') && tok_is_punct(tokens, j - 2, ':') {
            j = j.saturating_sub(3);
            if !tokens.get(j).is_some_and(|t| t.kind == TokKind::Ident) {
                break;
            }
        }
        // Skip reference sigils between the binding and the type
        // (`m: &HashMap<…>`, `m: &'a mut HashMap<…>`).
        while j >= 1
            && tokens.get(j - 1).is_some_and(|t| {
                t.is_punct('&') || t.is_ident("mut") || t.kind == TokKind::Lifetime
            })
        {
            j -= 1;
        }
        if j == 0 {
            continue;
        }
        match tokens.get(j - 1) {
            // `name : HashMap<…>` — field, binding, or parameter type.
            Some(p) if p.is_punct(':') => {
                if let Some(name) = tokens.get(j.saturating_sub(2)) {
                    if name.kind == TokKind::Ident {
                        names.insert(name.text.clone());
                    }
                }
            }
            // `name = HashMap::new()` / `with_capacity` / `from`.
            Some(p) if p.is_punct('=') => {
                if let Some(name) = tokens.get(j.saturating_sub(2)) {
                    if name.kind == TokKind::Ident {
                        names.insert(name.text.clone());
                    }
                }
            }
            _ => {}
        }
    }
    names
}

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
    "retain",
];

/// D1 sites: `(token index of the method/receiver, line)`.
pub(super) fn map_iter_sites(
    tokens: &[Tok],
    live: &dyn Fn(usize) -> bool,
    maps: &BTreeSet<String>,
) -> Vec<(usize, u32)> {
    let mut sites = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !live(i) || t.kind != TokKind::Ident {
            continue;
        }
        // `recv . method (` with a hash-typed receiver.
        if ITER_METHODS.contains(&t.text.as_str())
            && i >= 2
            && tok_is_punct(tokens, i - 1, '.')
            && tok_is_punct(tokens, i + 1, '(')
            && tokens
                .get(i - 2)
                .is_some_and(|r| r.kind == TokKind::Ident && maps.contains(&r.text))
        {
            sites.push((i, t.line));
            continue;
        }
        // `for pat in [&][mut] [self.]name {` over a hash container.
        if t.text == "for" {
            if let Some((idx, line)) = for_loop_over_map(tokens, i, maps) {
                sites.push((idx, line));
            }
        }
    }
    sites
}

/// If the `for` loop starting at token `i` iterates a bare hash-typed
/// binding (`for x in &map {`), returns the receiver's site.
fn for_loop_over_map(tokens: &[Tok], i: usize, maps: &BTreeSet<String>) -> Option<(usize, u32)> {
    // Find `in` at bracket-depth 0 (skipping the loop pattern).
    let mut depth = 0i32;
    let mut j = i + 1;
    let in_idx = loop {
        let t = tokens.get(j)?;
        match () {
            _ if t.is_punct('(') || t.is_punct('[') => depth += 1,
            _ if t.is_punct(')') || t.is_punct(']') => depth -= 1,
            _ if t.is_ident("in") && depth == 0 => break j,
            _ if t.is_punct('{') => return None,
            _ => {}
        }
        j += 1;
    };
    // Expression tokens between `in` and the body `{`.
    let mut expr = Vec::new();
    let mut k = in_idx + 1;
    loop {
        let t = tokens.get(k)?;
        if t.is_punct('{') {
            break;
        }
        expr.push((k, t));
        k += 1;
    }
    // Accept `&`, `&mut`, `self .` prefixes, then one identifier.
    let mut rest: &[(usize, &Tok)] = &expr;
    while let Some((_, t)) = rest.first() {
        if t.is_punct('&') || t.is_ident("mut") || t.is_ident("self") || t.is_punct('.') {
            rest = rest.get(1..).unwrap_or(&[]);
        } else {
            break;
        }
    }
    match rest {
        [(idx, t)] if t.kind == TokKind::Ident && maps.contains(&t.text) => Some((*idx, t.line)),
        _ => None,
    }
}

/// Label for a D1 site: `recv.method` or the receiver name.
pub(super) fn site_label(tokens: &[Tok], i: usize) -> String {
    let here = tokens.get(i).map(|t| t.text.clone()).unwrap_or_default();
    if i >= 2 && tok_is_punct(tokens, i - 1, '.') {
        if let Some(recv) = tokens.get(i - 2) {
            return format!("{}.{}()", recv.text, here);
        }
    }
    format!("for … in {here}")
}

/// D2: wall-clock, OS randomness, and environment reads.
pub(super) fn wall_clock(tokens: &[Tok], live: &dyn Fn(usize) -> bool) -> Vec<Hit> {
    let mut hits = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !live(i) || t.kind != TokKind::Ident {
            continue;
        }
        let what = match t.text.as_str() {
            "Instant" if path_call(tokens, i, "now") => Some("`Instant::now()`"),
            "SystemTime" => Some("`SystemTime`"),
            "thread_rng" => Some("`thread_rng()`"),
            // `npp_telemetry::wall_clock()` is the one sanctioned
            // wall-clock entry point, and it belongs to executor/CLI
            // layers: a *call* from a determinism crate is as suspect as
            // a raw `Instant::now()` (the definition itself is `fn
            // wall_clock` and stays clean).
            "wall_clock"
                if tok_is_punct(tokens, i + 1, '(')
                    && !tok_is_ident(tokens, i.wrapping_sub(1), "fn") =>
            {
                Some("`telemetry::wall_clock()` (the executor/CLI wall-clock entry point)")
            }
            "env"
                if path_call(tokens, i, "var")
                    || path_call(tokens, i, "var_os")
                    || path_call(tokens, i, "vars") =>
            {
                Some("environment read")
            }
            _ => None,
        };
        if let Some(what) = what {
            hits.push(Hit {
                rule: RuleId::D2WallClock,
                line: t.line,
                message: format!(
                    "{what} in simulation code: sim time must come from the simulator clock \
                     and seeds from the spec hash; annotate \
                     `// npp-lint: allow(wall-clock) reason=\"…\"` if this never reaches \
                     a deterministic document"
                ),
            });
        }
    }
    hits
}

/// D4: raw OS-thread entry points (`thread::spawn`, `thread::scope`,
/// `thread::Builder`) outside the sanctioned executor modules. Every
/// worker pool in the workspace lives behind a deterministic
/// fan-out/merge protocol (the component-sharded engine, the sweep
/// executor, the serve daemon); an ad-hoc thread anywhere else can
/// reorder observable effects machine-dependently.
pub(super) fn thread_spawn(tokens: &[Tok], live: &dyn Fn(usize) -> bool) -> Vec<Hit> {
    let mut hits = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !live(i) || !t.is_ident("thread") {
            continue;
        }
        let member = ["spawn", "scope", "Builder"]
            .iter()
            .find(|m| path_call(tokens, i, m));
        if let Some(member) = member {
            hits.push(Hit {
                rule: RuleId::D4ThreadSpawn,
                line: t.line,
                message: format!(
                    "`thread::{member}` outside a sanctioned executor module: spawn work \
                     through the component-sharded engine, the sweep executor, or the serve \
                     daemon's pool instead (`// npp-lint: allow(thread-spawn) reason=\"…\"` \
                     only with a documented merge protocol)"
                ),
            });
        }
    }
    hits
}

/// D3: a `.sum()`/`.fold()` later in the same statement as a hash-map
/// iterator source — the addition order is the iteration order.
pub(super) fn float_reduce(
    tokens: &[Tok],
    live: &dyn Fn(usize) -> bool,
    iter_sites: &[(usize, u32)],
) -> Vec<Hit> {
    let mut hits = Vec::new();
    for &(start, _) in iter_sites {
        // Scan to the end of the statement (`;`, or `{`/`}` closing it).
        let mut depth = 0i32;
        for (k, t) in tokens.iter().enumerate().skip(start) {
            if !live(k) {
                break;
            }
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            } else if (t.is_punct(';') || t.is_punct('{') || t.is_punct('}')) && depth == 0 {
                break;
            } else if t.kind == TokKind::Ident
                && (t.text == "sum" || t.text == "fold" || t.text == "product")
                && tok_is_punct(tokens, k.saturating_sub(1), '.')
            {
                hits.push(Hit {
                    rule: RuleId::D3FloatReduce,
                    line: t.line,
                    message: format!(
                        "`.{}()` fed by a hash-map iterator: float accumulation order follows \
                         the unstable iteration order; sort the keys first or reduce over an \
                         index-addressed slice (`// npp-lint: allow(float-reduce) reason=\"…\"` \
                         to keep it)",
                        t.text
                    ),
                });
            }
        }
    }
    hits
}

/// Rust keywords that can directly precede a `[` that *opens an array
/// expression* rather than indexing the preceding value.
const NOT_INDEX_PREFIX: &[&str] = &[
    "in", "if", "else", "match", "return", "while", "loop", "break", "let", "mut", "as", "move",
    "ref", "const", "static", "where", "unsafe", "dyn", "impl", "box", "yield", "for",
];

/// P1: `.unwrap()`, panic-family macros, and slice/array indexing in
/// non-test library code. `.expect("…")` is allowed — the message is
/// the documented invariant.
pub(super) fn panic_hygiene(tokens: &[Tok], live: &dyn Fn(usize) -> bool) -> Vec<Hit> {
    let mut hits = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !live(i) {
            continue;
        }
        if t.kind == TokKind::Ident {
            if t.text == "unwrap"
                && tok_is_punct(tokens, i.wrapping_sub(1), '.')
                && tok_is_punct(tokens, i + 1, '(')
                && tok_is_punct(tokens, i + 2, ')')
            {
                hits.push(Hit {
                    rule: RuleId::P1Panic,
                    line: t.line,
                    message: "`.unwrap()` in library code: return a `Result` or use \
                              `.expect(\"…invariant…\")` to document why this cannot fail"
                        .into(),
                });
            } else if matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            ) && tok_is_punct(tokens, i + 1, '!')
            {
                hits.push(Hit {
                    rule: RuleId::P1Panic,
                    line: t.line,
                    message: format!(
                        "`{}!` in library code: prefer returning an error; if the branch is \
                         provably dead, document the invariant where the ratchet baseline \
                         records it",
                        t.text
                    ),
                });
            }
        } else if t.is_punct('[') {
            // Indexing: `expr[…]` — the `[` directly follows a value
            // (identifier, call, or another index), not a keyword.
            let indexable = match i.checked_sub(1).and_then(|p| tokens.get(p)) {
                Some(p) if p.kind == TokKind::Ident => !NOT_INDEX_PREFIX.contains(&p.text.as_str()),
                Some(p) => p.is_punct(')') || p.is_punct(']'),
                None => false,
            };
            if indexable {
                hits.push(Hit {
                    rule: RuleId::P1Panic,
                    line: t.line,
                    message: "slice/array indexing in library code can panic on out-of-range \
                              input: prefer `.get(…)` with error handling \
                              (in-bounds-by-construction hot paths stay in the ratchet baseline)"
                        .into(),
                });
            }
        }
    }
    hits
}

/// S1: every struct deriving `Deserialize` must also carry
/// `#[serde(deny_unknown_fields)]` so spec-file typos fail loudly.
pub(super) fn deny_unknown_fields(tokens: &[Tok], live: &dyn Fn(usize) -> bool) -> Vec<Hit> {
    let mut hits = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !(live(i) && tok_is_punct(tokens, i, '#') && tok_is_punct(tokens, i + 1, '[')) {
            i += 1;
            continue;
        }
        // Gather the whole contiguous attribute block.
        let block_start = i;
        let mut j = i;
        while let Some(next) = skip_attr(tokens, j) {
            j = next;
        }
        let attrs = tokens.get(block_start..j).unwrap_or(&[]);
        let derives_deserialize = attr_group_contains(attrs, "derive", "Deserialize");
        let denies_unknown = attr_group_contains(attrs, "serde", "deny_unknown_fields");
        // The decorated item: skip visibility, look for `struct`.
        let mut k = j;
        while tok_is_ident(tokens, k, "pub")
            || tok_is_punct(tokens, k, '(')
            || tok_is_ident(tokens, k, "crate")
            || tok_is_ident(tokens, k, "super")
            || tok_is_punct(tokens, k, ')')
        {
            k += 1;
        }
        if derives_deserialize && !denies_unknown && tok_is_ident(tokens, k, "struct") {
            let (line, name) = tokens
                .get(k + 1)
                .map(|t| (t.line, t.text.clone()))
                .unwrap_or((tokens.get(block_start).map_or(0, |t| t.line), String::new()));
            hits.push(Hit {
                rule: RuleId::S1DenyUnknownFields,
                line,
                message: format!(
                    "struct `{name}` derives `Deserialize` without \
                     `#[serde(deny_unknown_fields)]`: a typo in a spec file would be \
                     silently ignored instead of rejected"
                ),
            });
        }
        i = j.max(i + 1);
    }
    hits
}

/// Does any attribute in the block look like `#[outer(… member …)]`?
fn attr_group_contains(attrs: &[Tok], outer: &str, member: &str) -> bool {
    attrs.windows(2).enumerate().any(|(w, pair)| {
        matches!(pair, [a, b] if a.is_ident(outer) && b.is_punct('('))
            && attrs
                .iter()
                .skip(w + 2)
                .take_while(|t| !t.is_punct(']'))
                .any(|t| t.is_ident(member))
    })
}

#[cfg(test)]
mod tests {
    use super::super::tests::{rules_of, scan_all, scan_with, ALL};
    use super::super::FileScope;

    #[test]
    fn d1_catches_field_and_for_iteration() {
        let src = "
            struct S { busy: std::collections::HashMap<u32, f64> }
            impl S {
                fn a(&self) { for (k, v) in &self.busy { drop((k, v)); } }
                fn b(&self) -> usize { self.busy.keys().count() }
            }
        ";
        let hits = scan_all(src);
        assert_eq!(
            rules_of(&hits).iter().filter(|r| **r == "D1").count(),
            2,
            "{hits:?}"
        );
    }

    #[test]
    fn d1_ignores_vec_iteration_and_map_lookup() {
        let src = "
            fn f(v: &Vec<u32>, m: &std::collections::HashMap<u32, u32>) -> u32 {
                let mut s = 0;
                for x in v { s += x; }
                s + m[&3]
            }
        ";
        // The `m[&3]` lookup is deterministic (and flagged only by P1's
        // indexing check), not by D1.
        let hits = scan_all(src);
        assert!(!rules_of(&hits).contains(&"D1"), "{hits:?}");
    }

    #[test]
    fn d2_catches_clocks_and_rng() {
        let src = "
            fn f() {
                let t = std::time::Instant::now();
                let r = thread_rng();
                let e = std::env::var(\"X\");
            }
        ";
        let hits = scan_all(src);
        assert_eq!(rules_of(&hits).iter().filter(|r| **r == "D2").count(), 3);
    }

    #[test]
    fn d2_catches_wall_clock_calls_but_not_the_definition() {
        let src = "
            pub fn wall_clock() -> std::time::Instant { unreachable_here() }
            fn f() { let t = npp_telemetry::wall_clock(); drop(t); }
        ";
        let hits = scan_all(src);
        let d2: Vec<_> = hits.iter().filter(|h| h.rule.code() == "D2").collect();
        assert_eq!(d2.len(), 1, "{hits:?}");
        assert!(d2.iter().all(|h| h.message.contains("wall_clock")));
    }

    #[test]
    fn d3_catches_sum_over_map_values() {
        let src = "
            fn f(m: std::collections::HashMap<u32, f64>) -> f64 {
                let total: f64 = m.values().map(|v| v * 2.0).sum();
                total
            }
        ";
        let hits = scan_all(src);
        assert!(rules_of(&hits).contains(&"D3"), "{hits:?}");
    }

    #[test]
    fn p1_catches_unwrap_panic_and_indexing() {
        let src = "
            fn f(v: &[u32], o: Option<u32>) -> u32 {
                if v.is_empty() { panic!(\"no\"); }
                v[0] + o.unwrap()
            }
        ";
        let hits = scan_all(src);
        assert_eq!(rules_of(&hits).iter().filter(|r| **r == "P1").count(), 3);
    }

    #[test]
    fn p1_allows_expect_arrays_and_tests() {
        let src = "
            fn f(o: Option<u32>) -> u32 {
                let table = [1, 2, 3];
                let ok = o.expect(\"caller checked\");
                for x in [4, 5] { drop(x); }
                ok + table.len() as u32
            }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { assert_eq!(super::f(Some(1)).unwrap_or(0), 1); let v = vec![0]; let _ = v[0]; }
            }
        ";
        let hits = scan_all(src);
        assert!(rules_of(&hits).is_empty(), "{hits:?}");
    }

    #[test]
    fn d4_catches_every_thread_entry_point() {
        let src = "
            fn f() {
                std::thread::spawn(|| {});
                thread::scope(|s| { drop(s); });
                let b = std::thread::Builder::new();
            }
        ";
        let hits = scan_all(src);
        assert_eq!(
            rules_of(&hits).iter().filter(|r| **r == "D4").count(),
            3,
            "{hits:?}"
        );
    }

    #[test]
    fn d4_ignores_near_misses_and_unscoped_files() {
        let src = "
            fn f(pool: &Pool) {
                pool.spawn(job);
                std::thread::sleep(std::time::Duration::from_millis(1));
                let thread_count = 4;
                drop(thread_count);
            }
        ";
        let hits = scan_all(src);
        assert!(!rules_of(&hits).contains(&"D4"), "{hits:?}");

        // A sanctioned executor module (thread_discipline off) may
        // spawn freely.
        let spawning = "fn g() { std::thread::spawn(|| {}); }";
        let hits = scan_with(
            spawning,
            FileScope {
                thread_discipline: false,
                worker_purity: false,
                spec_strictness: false,
                ..ALL
            },
        );
        assert!(rules_of(&hits).is_empty(), "{hits:?}");
    }

    #[test]
    fn s1_catches_missing_deny_unknown_fields() {
        let src = "
            #[derive(Debug, Serialize, Deserialize)]
            pub struct Open { pub x: f64 }

            #[derive(Deserialize)]
            #[serde(deny_unknown_fields)]
            pub struct Closed { pub x: f64 }

            #[derive(Deserialize)]
            pub enum Choice { A, B }
        ";
        let hits = scan_all(src);
        let s1: Vec<_> = hits.iter().filter(|h| h.rule.code() == "S1").collect();
        assert_eq!(s1.len(), 1, "{hits:?}");
        assert!(s1.iter().all(|h| h.message.contains("Open")));
    }
}
