//! SARIF 2.1.0 output.
//!
//! CI annotation surfaces (code-scanning uploads, editor plugins)
//! speak SARIF; this module renders a [`Report`] as a minimal,
//! spec-conformant SARIF 2.1.0 log. Like every other document this
//! crate writes, the output is byte-stable: fixed key order, findings
//! already sorted by `(file, line, rule)`, the full rule catalog
//! always present under `tool.driver.rules` so a `ruleId` can always
//! be resolved. The committed fixture test diffs the renderer against
//! a golden file to keep it that way.

use crate::engine::Report;
use crate::json::quote;
use crate::rules::CATALOG;

/// The SARIF spec version this renderer targets.
pub const SARIF_VERSION: &str = "2.1.0";

/// The canonical schema URI embedded in the log's `$schema` field.
pub const SARIF_SCHEMA_URI: &str =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

/// Tool version reported in the log (the crate version).
const TOOL_VERSION: &str = env!("CARGO_PKG_VERSION");

/// Renders `report` as a SARIF 2.1.0 log with one run.
pub fn render_sarif(report: &Report) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"$schema\": {},\n", quote(SARIF_SCHEMA_URI)));
    out.push_str(&format!("  \"version\": {},\n", quote(SARIF_VERSION)));
    out.push_str("  \"runs\": [\n    {\n");

    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"npp-lint\",\n");
    out.push_str(&format!(
        "          \"version\": {},\n",
        quote(TOOL_VERSION)
    ));
    out.push_str("          \"informationUri\": \"https://github.com/netpp/netpp\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, rule) in CATALOG.iter().enumerate() {
        out.push_str("            {");
        out.push_str(&format!("\"id\": {}, ", quote(rule.code())));
        out.push_str(&format!("\"name\": {}, ", quote(rule.key())));
        out.push_str(&format!(
            "\"shortDescription\": {{\"text\": {}}}",
            quote(rule.summary())
        ));
        out.push('}');
        if i + 1 < CATALOG.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("          ]\n        }\n      },\n");

    out.push_str("      \"results\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n        {");
        out.push_str(&format!("\"ruleId\": {}, ", quote(f.rule.code())));
        out.push_str("\"level\": \"error\", ");
        out.push_str(&format!(
            "\"message\": {{\"text\": {}}}, ",
            quote(&f.message)
        ));
        out.push_str(&format!(
            "\"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \
             \"region\": {{\"startLine\": {}, \"snippet\": {{\"text\": {}}}}}}}}}]",
            quote(&f.file),
            f.line,
            quote(&f.snippet),
        ));
        out.push('}');
    }
    if !report.findings.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Finding;
    use crate::json;
    use crate::rules::RuleId;

    fn sample_report() -> Report {
        let mut report = Report {
            files_scanned: 2,
            ..Report::default()
        };
        report.findings.push(Finding {
            rule: RuleId::D5UnstableSort,
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            snippet: "v.sort_unstable_by_key(|e| e.0);".into(),
            message: "tie-prone \"keys\"".into(),
        });
        report
    }

    #[test]
    fn sarif_is_valid_json_and_byte_stable() {
        let report = sample_report();
        let a = render_sarif(&report);
        assert_eq!(a, render_sarif(&report));
        let doc = json::parse(&a).expect("SARIF log parses as JSON");
        let obj = doc.as_object("log").expect("object");
        assert_eq!(
            obj.get("version").and_then(|v| v.str_of()),
            Some(SARIF_VERSION)
        );
        let runs = obj.get("runs").and_then(|v| v.arr_of()).expect("runs");
        assert_eq!(runs.len(), 1);
        let run = runs[0].as_object("run").expect("run object");
        let results = run
            .get("results")
            .and_then(|v| v.arr_of())
            .expect("results");
        assert_eq!(results.len(), 1);
        let result = results[0].as_object("result").expect("result");
        assert_eq!(result.get("ruleId").and_then(|v| v.str_of()), Some("D5"));
    }

    #[test]
    fn every_catalog_rule_is_declared() {
        let log = render_sarif(&Report::default());
        for rule in CATALOG {
            assert!(
                log.contains(&format!("\"id\": \"{}\"", rule.code())),
                "{} missing from driver.rules",
                rule.code()
            );
        }
    }
}
