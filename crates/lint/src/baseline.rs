//! The P1 ratchet baseline.
//!
//! Panic hygiene cannot be fixed in one PR: the indexed simulator hot
//! path *earns* its slice indexing, and converting every historical
//! `unwrap` at once would drown review. Instead the committed
//! `lint_baseline.json` records, per file, how many P1 findings are
//! tolerated today. The gate fails only when a file *exceeds* its
//! recorded count, so the number can only ratchet downward:
//! `netpp lint --update-baseline` rewrites the file from the current
//! (lower) counts after a cleanup.
//!
//! The file is plain JSON, read and written by the minimal parser
//! below so this crate stays dependency-free.

use std::collections::BTreeMap;

use crate::{LintError, Result};

/// Schema tag written into (and required from) the baseline file.
pub const SCHEMA: &str = "npp.lint.baseline/v1";

/// Tolerated P1 finding counts, keyed by workspace-relative path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Per-file tolerated counts (`BTreeMap` so serialization is
    /// stable and iteration deterministic).
    pub files: BTreeMap<String, usize>,
}

impl Baseline {
    /// Tolerated count for `path` (0 when unlisted).
    pub fn allowance(&self, path: &str) -> usize {
        self.files.get(path).copied().unwrap_or(0)
    }

    /// Sum of all tolerated counts — the headline ratchet number.
    pub fn total(&self) -> usize {
        self.files.values().sum()
    }

    /// Serializes the baseline as pretty, key-sorted JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str(&format!("  \"total\": {},\n", self.total()));
        out.push_str("  \"files\": {");
        let mut first = true;
        for (path, count) in &self.files {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    \"{}\": {count}", escape(path)));
        }
        if !first {
            out.push('\n');
            out.push_str("  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Parses a baseline document produced by [`Baseline::to_json`].
    ///
    /// # Errors
    ///
    /// Rejects malformed JSON and unknown schema tags. The `total`
    /// field is advisory (recomputed from `files`).
    pub fn from_json(text: &str) -> Result<Self> {
        let value = parse_json(text)?;
        let obj = value.as_object("baseline document")?;
        match obj.get("schema") {
            Some(Value::Str(s)) if s == SCHEMA => {}
            Some(Value::Str(s)) => {
                return Err(LintError::Baseline(format!(
                    "unsupported baseline schema {s:?} (expected {SCHEMA:?})"
                )))
            }
            _ => {
                return Err(LintError::Baseline(
                    "baseline document is missing its \"schema\" tag".into(),
                ))
            }
        }
        let mut files = BTreeMap::new();
        if let Some(v) = obj.get("files") {
            for (path, count) in v.as_object("\"files\"")? {
                files.insert(path.clone(), count.as_count(path)?);
            }
        }
        Ok(Self { files })
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Minimal JSON value — just what a baseline file can contain.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    fn as_object(&self, what: &str) -> Result<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Ok(m),
            other => Err(LintError::Baseline(format!(
                "{what} must be a JSON object, found {other:?}"
            ))),
        }
    }

    fn as_count(&self, what: &str) -> Result<usize> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as usize),
            other => Err(LintError::Baseline(format!(
                "count for {what:?} must be a non-negative integer, found {other:?}"
            ))),
        }
    }
}

/// Recursive-descent parser for the JSON subset above.
fn parse_json(text: &str) -> Result<Value> {
    let chars: Vec<char> = text.chars().collect();
    let mut p = Parser { chars, pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(LintError::Baseline(format!(
            "trailing content at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<()> {
        self.skip_ws();
        match self.bump() {
            Some(got) if got == c => Ok(()),
            got => Err(LintError::Baseline(format!(
                "expected {c:?} at offset {}, found {got:?}",
                self.pos
            ))),
        }
    }

    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Value::Str(self.string()?)),
            Some('t') => self.literal("true", Value::Bool(true)),
            Some('f') => self.literal("false", Value::Bool(false)),
            Some('n') => self.literal("null", Value::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            got => Err(LintError::Baseline(format!(
                "unexpected {got:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        for expected in word.chars() {
            match self.bump() {
                Some(c) if c == expected => {}
                got => {
                    return Err(LintError::Baseline(format!(
                        "bad literal near offset {}: expected {word:?}, found {got:?}",
                        self.pos
                    )))
                }
            }
        }
        Ok(v)
    }

    fn object(&mut self) -> Result<Value> {
        self.expect('{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.bump();
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(Value::Obj(map)),
                got => {
                    return Err(LintError::Baseline(format!(
                        "expected ',' or '}}' at offset {}, found {got:?}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.bump();
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => return Ok(Value::Arr(items)),
                got => {
                    return Err(LintError::Baseline(format!(
                        "expected ',' or ']' at offset {}, found {got:?}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|c| c.to_digit(16))
                                .ok_or_else(|| LintError::Baseline("bad \\u escape".into()))?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    got => {
                        return Err(LintError::Baseline(format!(
                            "bad escape {got:?} at offset {}",
                            self.pos
                        )))
                    }
                },
                Some(c) => out.push(c),
                None => return Err(LintError::Baseline("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.bump();
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        {
            self.bump();
        }
        let text: String = self
            .chars
            .get(start..self.pos)
            .unwrap_or(&[])
            .iter()
            .collect();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| LintError::Baseline(format!("bad number {text:?} at offset {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut b = Baseline::default();
        b.files.insert("crates/a/src/lib.rs".into(), 3);
        b.files.insert("crates/b/src/x.rs".into(), 1);
        let text = b.to_json();
        let back = Baseline::from_json(&text).unwrap();
        assert_eq!(b, back);
        assert_eq!(back.total(), 4);
        assert_eq!(back.allowance("crates/a/src/lib.rs"), 3);
        assert_eq!(back.allowance("unknown.rs"), 0);
    }

    #[test]
    fn empty_baseline_round_trips() {
        let b = Baseline::default();
        let back = Baseline::from_json(&b.to_json()).unwrap();
        assert_eq!(back.total(), 0);
    }

    #[test]
    fn rejects_bad_documents() {
        assert!(Baseline::from_json("").is_err());
        assert!(Baseline::from_json("{}").is_err()); // no schema
        assert!(Baseline::from_json("{\"schema\": \"other/v9\", \"files\": {}}").is_err());
        assert!(Baseline::from_json(&format!(
            "{{\"schema\": \"{SCHEMA}\", \"files\": {{\"a.rs\": -1}}}}"
        ))
        .is_err());
        assert!(Baseline::from_json(&format!("{{\"schema\": \"{SCHEMA}\"}} trailing")).is_err());
    }
}
