//! The P1 ratchet baseline.
//!
//! Panic hygiene cannot be fixed in one PR: the indexed simulator hot
//! path *earns* its slice indexing, and converting every historical
//! `unwrap` at once would drown review. Instead the committed
//! `lint_baseline.json` records, per file, how many P1 findings are
//! tolerated today. The gate fails only when a file *exceeds* its
//! recorded count, so the number can only ratchet downward:
//! `netpp lint --update-baseline` rewrites the file from the current
//! (lower) counts after a cleanup.
//!
//! The file is plain JSON, read and written via the crate's own
//! minimal parser ([`crate::json`]) so the gate runs dependency-free.

use std::collections::BTreeMap;

use crate::json::{self, Value};
use crate::{LintError, Result};

/// Schema tag written into (and required from) the baseline file.
pub const SCHEMA: &str = "npp.lint.baseline/v1";

/// Tolerated P1 finding counts, keyed by workspace-relative path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Per-file tolerated counts (`BTreeMap` so serialization is
    /// stable and iteration deterministic).
    pub files: BTreeMap<String, usize>,
}

impl Baseline {
    /// Tolerated count for `path` (0 when unlisted).
    pub fn allowance(&self, path: &str) -> usize {
        self.files.get(path).copied().unwrap_or(0)
    }

    /// Sum of all tolerated counts — the headline ratchet number.
    pub fn total(&self) -> usize {
        self.files.values().sum()
    }

    /// Serializes the baseline as pretty, key-sorted JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str(&format!("  \"total\": {},\n", self.total()));
        out.push_str("  \"files\": {");
        let mut first = true;
        for (path, count) in &self.files {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    {}: {count}", json::quote(path)));
        }
        if !first {
            out.push('\n');
            out.push_str("  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Parses a baseline document produced by [`Baseline::to_json`].
    ///
    /// # Errors
    ///
    /// Rejects malformed JSON and unknown schema tags. The `total`
    /// field is advisory (recomputed from `files`).
    pub fn from_json(text: &str) -> Result<Self> {
        let value = json::parse(text).map_err(LintError::Baseline)?;
        let obj = value
            .as_object("baseline document")
            .map_err(LintError::Baseline)?;
        match obj.get("schema") {
            Some(Value::Str(s)) if s == SCHEMA => {}
            Some(Value::Str(s)) => {
                return Err(LintError::Baseline(format!(
                    "unsupported baseline schema {s:?} (expected {SCHEMA:?})"
                )))
            }
            _ => {
                return Err(LintError::Baseline(
                    "baseline document is missing its \"schema\" tag".into(),
                ))
            }
        }
        let mut files = BTreeMap::new();
        if let Some(v) = obj.get("files") {
            for (path, count) in v.as_object("\"files\"").map_err(LintError::Baseline)? {
                files.insert(
                    path.clone(),
                    count.as_count(path).map_err(LintError::Baseline)?,
                );
            }
        }
        Ok(Self { files })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut b = Baseline::default();
        b.files.insert("crates/a/src/lib.rs".into(), 3);
        b.files.insert("crates/b/src/x.rs".into(), 1);
        let text = b.to_json();
        let back = Baseline::from_json(&text).unwrap();
        assert_eq!(b, back);
        assert_eq!(back.total(), 4);
        assert_eq!(back.allowance("crates/a/src/lib.rs"), 3);
        assert_eq!(back.allowance("unknown.rs"), 0);
    }

    #[test]
    fn empty_baseline_round_trips() {
        let b = Baseline::default();
        let back = Baseline::from_json(&b.to_json()).unwrap();
        assert_eq!(back.total(), 0);
    }

    #[test]
    fn rejects_bad_documents() {
        assert!(Baseline::from_json("").is_err());
        assert!(Baseline::from_json("{}").is_err()); // no schema
        assert!(Baseline::from_json("{\"schema\": \"other/v9\", \"files\": {}}").is_err());
        assert!(Baseline::from_json(&format!(
            "{{\"schema\": \"{SCHEMA}\", \"files\": {{\"a.rs\": -1}}}}"
        ))
        .is_err());
        assert!(Baseline::from_json(&format!("{{\"schema\": \"{SCHEMA}\"}} trailing")).is_err());
    }
}
