//! A lightweight Rust lexer: just enough syntax to make source-level
//! rules trustworthy.
//!
//! The analyzer never parses Rust; it pattern-matches token sequences.
//! What makes that sound is getting the *lexical* layer exactly right:
//! string literals (including raw strings with arbitrary `#` fences),
//! nested block comments, char-literal vs. lifetime disambiguation, and
//! line tracking. Everything that looks like code inside a comment or a
//! string must never reach a rule, and every comment must be preserved
//! (with its line) so suppression directives can be found.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `for`, `r#type`, …).
    Ident,
    /// Single punctuation character (`.`, `:`, `#`, `[`, …).
    Punct,
    /// String or byte-string literal, raw or not.
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Numeric literal (also tuple-index fields after `.`).
    Num,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token text (for [`TokKind::Punct`], a single character).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// `true` when the token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text == word
    }

    /// `true` when the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// A comment preserved for suppression-directive scanning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// Lexer output: the code tokens plus the comment side-channel.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order (comments excluded).
    pub tokens: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `source` into tokens and comments.
///
/// The lexer is total: any input produces a token stream (malformed
/// trailing literals are consumed to end-of-input rather than erroring),
/// which is the right failure mode for a linter — rules simply see
/// fewer tokens.
pub fn lex(source: &str) -> Lexed {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.tokens.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line),
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string(line);
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.char_lit(line);
                }
                'r' | 'b' if self.raw_string_ahead() => self.raw_string(line),
                'r' if self.peek(1) == Some('#') && Self::is_ident_start(self.peek(2)) => {
                    // Raw identifier `r#type`.
                    self.bump();
                    self.bump();
                    self.ident(line);
                }
                '\'' => self.lifetime_or_char(line),
                _ if Self::is_ident_start(Some(c)) => self.ident(line),
                _ if c.is_ascii_digit() => self.number(line),
                _ => {
                    self.bump();
                    self.push(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn is_ident_start(c: Option<char>) -> bool {
        matches!(c, Some(c) if c.is_alphabetic() || c == '_')
    }

    fn is_ident_continue(c: Option<char>) -> bool {
        matches!(c, Some(c) if c.is_alphanumeric() || c == '_')
    }

    /// `r"…"`, `r#"…"#`, `br#"…"#` — a raw-(byte-)string opener?
    fn raw_string_ahead(&self) -> bool {
        let mut i = 1;
        if self.peek(0) == Some('b') {
            if self.peek(1) != Some('r') {
                return false;
            }
            i = 2;
        }
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { text, line });
    }

    fn block_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut depth = 1u32;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                    text.push_str("/*");
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                    if depth > 0 {
                        text.push_str("*/");
                    }
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.out.comments.push(Comment { text, line });
    }

    fn string(&mut self, line: u32) {
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '"' => break,
                '\\' => {
                    // Skip the escaped character (covers \" and \\).
                    if let Some(e) = self.bump() {
                        text.push('\\');
                        text.push(e);
                    }
                }
                _ => text.push(c),
            }
        }
        self.push(TokKind::Str, text, line);
    }

    fn raw_string(&mut self, line: u32) {
        if self.peek(0) == Some('b') {
            self.bump();
        }
        self.bump(); // 'r'
        let mut fence = 0usize;
        while self.peek(0) == Some('#') {
            fence += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let mut text = String::new();
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                // A quote closes only when followed by `fence` hashes.
                for i in 0..fence {
                    if self.peek(i) != Some('#') {
                        text.push('"');
                        continue 'outer;
                    }
                }
                for _ in 0..fence {
                    self.bump();
                }
                break;
            }
            text.push(c);
        }
        self.push(TokKind::Str, text, line);
    }

    fn char_lit(&mut self, line: u32) {
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\'' => break,
                '\\' => {
                    if let Some(e) = self.bump() {
                        text.push('\\');
                        text.push(e);
                    }
                }
                _ => text.push(c),
            }
        }
        self.push(TokKind::Char, text, line);
    }

    /// `'a` (lifetime) vs `'a'` (char literal): a lifetime is a quote
    /// followed by an identifier *not* closed by another quote.
    fn lifetime_or_char(&mut self, line: u32) {
        if Self::is_ident_start(self.peek(1)) {
            let mut i = 2;
            while Self::is_ident_continue(self.peek(i)) {
                i += 1;
            }
            if self.peek(i) != Some('\'') {
                self.bump(); // quote
                let mut text = String::new();
                while Self::is_ident_continue(self.peek(0)) {
                    if let Some(c) = self.bump() {
                        text.push(c);
                    }
                }
                self.push(TokKind::Lifetime, text, line);
                return;
            }
        }
        self.char_lit(line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while Self::is_ident_continue(self.peek(0)) {
            if let Some(c) = self.bump() {
                text.push(c);
            }
        }
        self.push(TokKind::Ident, text, line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.' && matches!(self.peek(1), Some(d) if d.is_ascii_digit()) {
                // `1.5` continues the number; `1..n` and `1.max(x)` do not.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Num, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn strings_hide_code() {
        let toks = kinds(r#"let s = "map.iter() // not code";"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("iter")));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "iter"));
    }

    #[test]
    fn raw_strings_with_fences() {
        let toks = kinds(r##"let s = r#"quote " inside"#; x"##);
        assert_eq!(toks.last().map(|(_, t)| t.as_str()), Some("x"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("quote \" inside")));
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* outer /* inner */ still comment */ fn x() {}");
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("fn")));
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("outer")));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
    }

    #[test]
    fn comments_carry_lines() {
        let lexed = lex("fn a() {}\n// npp-lint: allow(panic) reason=\"x\"\nfn b() {}");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments.first().map(|c| c.line), Some(2));
        assert!(lexed
            .comments
            .first()
            .is_some_and(|c| c.text.contains("npp-lint")));
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let toks = kinds("for i in 0..10 { x = 1.5 + 2.max(3); }");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "1.5"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "max"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "10"));
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#type = 1;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "type"));
    }
}
