//! The incremental lint cache.
//!
//! A full workspace lint re-lexes every file even though almost none of
//! them changed between runs. The cache stores each file's
//! [`FileResult`] keyed by a content hash, so a warm run replays
//! unchanged files without lexing them (`Report::cache_hits` counts the
//! replays; CI asserts it equals `files_scanned` on a back-to-back
//! second run).
//!
//! Correctness over speed: the hash covers the file bytes, the
//! [`FileScope`] rule configuration, and [`ANALYZER_VERSION`], so any
//! change to the rules invalidates every entry at once. The cache file
//! itself is advisory — missing, corrupt, or wrong-schema documents
//! degrade to a cold run, and a failed write is ignored. The written
//! document is byte-stable (sorted keys, fixed field order), so two
//! identical runs produce identical cache files.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::engine::{FileResult, Finding, UnusedSuppression};
use crate::json::{self, Value};
use crate::rules::{FileScope, RuleId};

/// Schema tag of the cache document.
pub const CACHE_SCHEMA: &str = "npp.lint.cache/v1";

/// Bumped whenever the lexer, scope tree, or any rule changes
/// behavior: it salts every content hash, so a version bump is a full
/// cache invalidation.
const ANALYZER_VERSION: u32 = 2;

/// Default cache location for a workspace lint of `root`.
pub fn default_path(root: &Path) -> PathBuf {
    root.join("target").join("npp-lint-cache.json")
}

/// One cached file: the hash its result is valid for, plus the result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// [`content_hash`] of the file bytes + rule configuration.
    pub hash: u64,
    /// The replayable per-file outcome.
    pub result: FileResult,
}

/// The whole cache: one entry per workspace-relative path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cache {
    /// Entries keyed by workspace-relative path (sorted, so the
    /// serialized document is stable).
    pub entries: BTreeMap<String, Entry>,
}

impl Cache {
    /// The stored result for `rel`, if its hash still matches.
    pub fn lookup(&self, rel: &str, hash: u64) -> Option<&FileResult> {
        self.entries
            .get(rel)
            .filter(|e| e.hash == hash)
            .map(|e| &e.result)
    }

    /// Records `result` for `rel` at `hash`.
    pub fn insert(&mut self, rel: &str, hash: u64, result: FileResult) {
        self.entries.insert(rel.to_string(), Entry { hash, result });
    }

    /// Serializes the cache as byte-stable JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": \"{CACHE_SCHEMA}\",\n"));
        out.push_str("  \"files\": {");
        let mut first_file = true;
        for (rel, entry) in &self.entries {
            if !first_file {
                out.push(',');
            }
            first_file = false;
            out.push_str(&format!("\n    {}: {{", json::quote(rel)));
            // Hashes are hex strings: JSON numbers are f64 and cannot
            // carry 64 bits exactly.
            out.push_str(&format!("\"hash\": \"{:016x}\", ", entry.hash));
            out.push_str(&format!("\"suppressed\": {}, ", entry.result.suppressed));
            out.push_str("\"findings\": [");
            for (i, f) in entry.result.findings.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"rule\": {}, \"line\": {}, \"snippet\": {}, \"message\": {}}}",
                    json::quote(f.rule.code()),
                    f.line,
                    json::quote(&f.snippet),
                    json::quote(&f.message),
                ));
            }
            out.push_str("], \"unused\": [");
            for (i, u) in entry.result.unused.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"line\": {}, \"key\": {}}}",
                    u.line,
                    json::quote(&u.key),
                ));
            }
            out.push_str("]}");
        }
        if !first_file {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Parses a cache document. Returns `None` on *any* defect —
    /// malformed JSON, wrong schema, bad field shapes — because a
    /// cache is always safe to discard.
    pub fn from_json(text: &str) -> Option<Self> {
        let value = json::parse(text).ok()?;
        let obj = value.as_object("cache").ok()?;
        match obj.get("schema") {
            Some(Value::Str(s)) if s == CACHE_SCHEMA => {}
            _ => return None,
        }
        let mut entries = BTreeMap::new();
        for (rel, v) in obj.get("files")?.as_object("files").ok()? {
            let e = v.as_object("entry").ok()?;
            let hash = u64::from_str_radix(e.get("hash")?.str_of()?, 16).ok()?;
            let suppressed = e.get("suppressed")?.as_count("suppressed").ok()?;
            let mut findings = Vec::new();
            for f in e.get("findings")?.arr_of()? {
                let f = f.as_object("finding").ok()?;
                findings.push(Finding {
                    rule: RuleId::from_code(f.get("rule")?.str_of()?)?,
                    file: rel.clone(),
                    line: u32::try_from(f.get("line")?.as_count("line").ok()?).ok()?,
                    snippet: f.get("snippet")?.str_of()?.to_string(),
                    message: f.get("message")?.str_of()?.to_string(),
                });
            }
            let mut unused = Vec::new();
            for u in e.get("unused")?.arr_of()? {
                let u = u.as_object("unused").ok()?;
                unused.push(UnusedSuppression {
                    file: rel.clone(),
                    line: u32::try_from(u.get("line")?.as_count("line").ok()?).ok()?,
                    key: u.get("key")?.str_of()?.to_string(),
                });
            }
            entries.insert(
                rel.clone(),
                Entry {
                    hash,
                    result: FileResult {
                        findings,
                        suppressed,
                        unused,
                    },
                },
            );
        }
        Some(Self { entries })
    }
}

/// Loads the cache at `path`; any failure yields an empty cache.
pub fn load(path: &Path) -> Cache {
    fs::read_to_string(path)
        .ok()
        .and_then(|text| Cache::from_json(&text))
        .unwrap_or_default()
}

/// Writes the cache, best-effort: the cache is an accelerator, so an
/// unwritable location (read-only checkout, missing `target/`) must
/// not fail the lint.
pub fn save(path: &Path, cache: &Cache) {
    if let Some(parent) = path.parent() {
        let _ = fs::create_dir_all(parent);
    }
    let _ = fs::write(path, cache.to_json());
}

/// FNV-1a (64-bit) over the analyzer version, the rule configuration,
/// and the file bytes. Any of the three changing yields a new key.
pub fn content_hash(source: &str, scope: FileScope) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for b in ANALYZER_VERSION.to_le_bytes() {
        eat(b);
    }
    eat(u8::from(scope.determinism));
    eat(u8::from(scope.spec_strictness));
    eat(u8::from(scope.thread_discipline));
    eat(u8::from(scope.worker_purity));
    for b in source.bytes() {
        eat(b);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCOPE: FileScope = FileScope {
        determinism: true,
        spec_strictness: false,
        thread_discipline: true,
        worker_purity: false,
    };

    fn sample() -> Cache {
        let mut cache = Cache::default();
        cache.insert(
            "crates/x/src/lib.rs",
            content_hash("fn f() {}", SCOPE),
            FileResult {
                findings: vec![Finding {
                    rule: RuleId::P1Panic,
                    file: "crates/x/src/lib.rs".into(),
                    line: 3,
                    snippet: "o.unwrap() // \"quoted\"".into(),
                    message: "panic-prone".into(),
                }],
                suppressed: 2,
                unused: vec![UnusedSuppression {
                    file: "crates/x/src/lib.rs".into(),
                    line: 9,
                    key: "wall-clock".into(),
                }],
            },
        );
        cache
    }

    #[test]
    fn round_trips_byte_stably() {
        let cache = sample();
        let text = cache.to_json();
        assert_eq!(text, cache.to_json());
        let back = Cache::from_json(&text).expect("parses");
        assert_eq!(back, cache);
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn lookup_requires_matching_hash() {
        let cache = sample();
        let hit = content_hash("fn f() {}", SCOPE);
        assert!(cache.lookup("crates/x/src/lib.rs", hit).is_some());
        assert!(cache
            .lookup("crates/x/src/lib.rs", content_hash("fn f() { }", SCOPE))
            .is_none());
        assert!(cache.lookup("crates/y/src/lib.rs", hit).is_none());
    }

    #[test]
    fn hash_covers_rule_configuration() {
        let stricter = FileScope {
            worker_purity: true,
            ..SCOPE
        };
        assert_ne!(
            content_hash("fn f() {}", SCOPE),
            content_hash("fn f() {}", stricter)
        );
    }

    #[test]
    fn bad_documents_degrade_to_empty() {
        assert_eq!(Cache::from_json(""), None);
        assert_eq!(Cache::from_json("{}"), None);
        assert_eq!(
            Cache::from_json("{\"schema\": \"npp.lint.cache/v0\", \"files\": {}}"),
            None
        );
        let empty = Cache::default();
        let back = Cache::from_json(&empty.to_json()).expect("empty round-trip");
        assert_eq!(back, empty);
    }
}
