//! A brace-matched scope tree over the token stream.
//!
//! The analyzer stays dependency-free and never fully parses Rust;
//! instead this module recovers just enough *structure* from the
//! [`crate::lexer`] token stream to make scope-sensitive rules sound:
//! which tokens belong to which item (`fn` / `mod` / `impl` / `trait` /
//! `struct` / …), which attributes decorate that item, where every
//! `unsafe` block starts and ends, and what the module path of each
//! item is. On top of that the tree provides scope-accurate
//! `#[cfg(test)]` masking (replacing the old line-heuristic) and the
//! fn-signature capture that the worker-purity rule (C1) needs.
//!
//! The construction maintains one invariant the proptest suite checks
//! directly: **token ownership partitions the file.** Every token is
//! owned by exactly one innermost scope (`owner.len() == tokens.len()`),
//! every owner's token range contains the token, and child ranges nest
//! strictly inside their parent's. Rules can therefore ask "is this
//! token inside a test-gated scope / an unsafe block / this fn's body"
//! without ever double-counting or skipping code.

use crate::lexer::{Tok, TokKind};

/// What kind of scope a node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeKind {
    /// The whole file.
    Root,
    /// A `mod name { … }` (inline modules only; `mod name;` is an
    /// [`ScopeKind::Item`] — its body lives in another file).
    Mod,
    /// A `fn` item (free fn, method, or nested fn).
    Fn,
    /// An `impl` block.
    Impl,
    /// A `trait` definition.
    Trait,
    /// An `unsafe { … }` block expression.
    UnsafeBlock,
    /// Any other attributed item (`struct`, `enum`, `static`, `use`,
    /// `macro_rules!`, …) — tracked so attributes attach correctly.
    Item,
}

/// One node of the scope tree. Token positions are indices into the
/// token slice the tree was built from; `start..end` is half-open and
/// *includes* the item's attribute block.
#[derive(Debug, Clone)]
pub struct Scope {
    /// What kind of scope this is.
    pub kind: ScopeKind,
    /// Item name (`fn` / `mod` / `trait` / `struct` name; for `impl`
    /// the rendered header, e.g. `NetSim` or `Display for Foo`).
    /// Empty for [`ScopeKind::Root`], [`ScopeKind::UnsafeBlock`], and
    /// unnamed items.
    pub name: String,
    /// Parent scope index (`0`, the root, is its own parent).
    pub parent: usize,
    /// First owned token (the `#` of the first attached attribute, if
    /// any).
    pub start: usize,
    /// Token index of the keyword / header start, past the attributes.
    pub header: usize,
    /// Token index of the body's opening `{`; `None` for `;`-terminated
    /// items.
    pub body: Option<usize>,
    /// One past the last owned token.
    pub end: usize,
    /// 1-based line of the header token.
    pub line: u32,
    /// This scope's *own* attributes include `#[test]` / `#[cfg(test)]`.
    pub test_gated: bool,
}

/// The scope tree of one file plus the per-token ownership vector.
#[derive(Debug, Clone)]
pub struct ScopeTree {
    /// All scopes; index 0 is the root. Children always follow their
    /// parent (pre-order), so ancestor walks terminate at 0.
    pub scopes: Vec<Scope>,
    /// `owner[i]` is the innermost scope containing token `i`; always
    /// the same length as the token slice the tree was built from.
    pub owner: Vec<usize>,
}

impl ScopeTree {
    /// The innermost scope owning token `i` (root for out-of-range).
    pub fn owner_of(&self, i: usize) -> usize {
        self.owner.get(i).copied().unwrap_or(0)
    }

    /// Does `scope`'s ancestor chain (inclusive) contain `ancestor`?
    pub fn is_within(&self, mut scope: usize, ancestor: usize) -> bool {
        loop {
            if scope == ancestor {
                return true;
            }
            let parent = self.scopes.get(scope).map_or(0, |s| s.parent);
            if parent == scope {
                return false;
            }
            scope = parent;
        }
    }

    /// Per-token test mask: `true` for every token owned by a scope
    /// whose chain (inclusive) carries `#[test]` or `#[cfg(test)]`.
    /// This is the scope-accurate replacement for the old flat
    /// attribute-to-item-end heuristic.
    pub fn test_mask(&self) -> Vec<bool> {
        // Effective gating propagates down the pre-ordered scope list.
        let mut gated = vec![false; self.scopes.len()];
        for i in 0..self.scopes.len() {
            let own = self.scopes.get(i).is_some_and(|s| s.test_gated);
            let parent = self.scopes.get(i).map_or(0, |s| s.parent);
            let inherited = i != 0 && gated.get(parent).copied().unwrap_or(false);
            if let Some(g) = gated.get_mut(i) {
                *g = own || inherited;
            }
        }
        self.owner
            .iter()
            .map(|&s| gated.get(s).copied().unwrap_or(false))
            .collect()
    }

    /// The `::`-joined path of named ancestors (mods, impls, traits)
    /// down to and including `scope` itself, e.g. `tests::helpers::f`.
    pub fn path_of(&self, scope: usize) -> String {
        let mut parts: Vec<&str> = Vec::new();
        let mut cur = scope;
        while let Some(s) = self.scopes.get(cur) {
            if !s.name.is_empty() {
                parts.push(&s.name);
            }
            if s.parent == cur {
                break;
            }
            cur = s.parent;
        }
        parts.reverse();
        parts.join("::")
    }

    /// Flat index of every named item: `(module path, kind, line)`.
    pub fn item_index(&self) -> Vec<(String, ScopeKind, u32)> {
        self.scopes
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(_, s)| !s.name.is_empty())
            .map(|(i, s)| (self.path_of(i), s.kind, s.line))
            .collect()
    }
}

/// Builds the scope tree for `tokens` (one file's live code tokens).
///
/// Total like the lexer: malformed input (unbalanced braces, truncated
/// items) degrades to wider scopes, never an error.
pub fn build(tokens: &[Tok]) -> ScopeTree {
    let mut b = Builder {
        tokens,
        scopes: vec![Scope {
            kind: ScopeKind::Root,
            name: String::new(),
            parent: 0,
            start: 0,
            header: 0,
            body: None,
            end: tokens.len(),
            line: tokens.first().map_or(1, |t| t.line),
            test_gated: false,
        }],
        owner: vec![0; tokens.len()],
    };
    b.walk(0, tokens.len(), 0);
    ScopeTree {
        scopes: b.scopes,
        owner: b.owner,
    }
}

struct Builder<'a> {
    tokens: &'a [Tok],
    scopes: Vec<Scope>,
    owner: Vec<usize>,
}

/// Modifier keywords that may precede an item keyword.
const ITEM_MODIFIERS: &[&str] = &["default", "const", "async", "unsafe", "extern"];

/// Item keywords that open a brace-or-semicolon-terminated item.
const ITEM_KEYWORDS: &[&str] = &[
    "fn",
    "mod",
    "impl",
    "trait",
    "struct",
    "enum",
    "union",
    "static",
    "type",
    "use",
    "macro_rules",
];

impl Builder<'_> {
    fn at(&self, i: usize) -> Option<&Tok> {
        self.tokens.get(i)
    }

    fn is_punct(&self, i: usize, c: char) -> bool {
        self.at(i).is_some_and(|t| t.is_punct(c))
    }

    fn is_ident(&self, i: usize, word: &str) -> bool {
        self.at(i).is_some_and(|t| t.is_ident(word))
    }

    /// Scans `start..end`, claiming tokens for `parent` and carving out
    /// child scopes for items and `unsafe` blocks.
    fn walk(&mut self, start: usize, end: usize, parent: usize) {
        let mut i = start;
        while i < end {
            if let Some(o) = self.owner.get_mut(i) {
                *o = parent;
            }
            // An attribute block followed by an item opens a child
            // scope covering both.
            if self.is_punct(i, '#') && self.is_punct(i + 1, '[') {
                let mut attr_end = i;
                while let Some(next) = self.skip_attr(attr_end) {
                    if next > end {
                        break;
                    }
                    attr_end = next;
                }
                if let Some(next) = self.try_item(i, attr_end, end, parent) {
                    i = next;
                    continue;
                }
                // Attributes not on an item (or inner `#![…]`): claim
                // them for the current scope and move on.
                let next = attr_end.max(i + 1).min(end);
                for o in self.owner.iter_mut().take(next).skip(i) {
                    *o = parent;
                }
                i = next;
                continue;
            }
            // Bare items (no attributes).
            if let Some(next) = self.try_item(i, i, end, parent) {
                i = next;
                continue;
            }
            // `unsafe { … }` block expression. The `unsafe` keyword and
            // both braces are claimed up front; the recursive walk
            // starts *inside* the braces so the opener cannot re-match.
            if self.is_ident(i, "unsafe") && self.is_punct(i + 1, '{') {
                let body_end = self.match_brace(i + 1, end);
                let scope = self.push_scope(Scope {
                    kind: ScopeKind::UnsafeBlock,
                    name: String::new(),
                    parent,
                    start: i,
                    header: i,
                    body: Some(i + 1),
                    end: body_end,
                    line: self.at(i).map_or(0, |t| t.line),
                    test_gated: false,
                });
                self.claim(i, body_end, scope);
                self.walk(i + 2, body_end.saturating_sub(1), scope);
                i = body_end;
                continue;
            }
            i += 1;
        }
    }

    /// If an item header starts at `header` (attributes began at
    /// `start`), records its scope, recurses into its body, and returns
    /// the index just past it.
    fn try_item(
        &mut self,
        start: usize,
        header: usize,
        end: usize,
        parent: usize,
    ) -> Option<usize> {
        // Skip visibility (`pub`, `pub(crate)`, `pub(in a::b)`).
        let mut k = header;
        if self.is_ident(k, "pub") {
            k += 1;
            if self.is_punct(k, '(') {
                k = self.match_paren(k, end);
            }
        }
        // Skip modifiers (`const`, `async`, `unsafe`, `extern "C"`).
        let mut is_unsafe_item = false;
        while self
            .at(k)
            .is_some_and(|t| t.kind == TokKind::Ident && ITEM_MODIFIERS.contains(&t.text.as_str()))
        {
            // `const NAME` / `const {` are items/blocks themselves, not
            // modifiers — only treat `const` as a modifier before `fn`.
            if self.is_ident(k, "const") && !self.is_ident(k + 1, "fn") {
                break;
            }
            if self.is_ident(k, "unsafe") {
                is_unsafe_item = true;
            }
            k += 1;
            if self.at(k).is_some_and(|t| t.kind == TokKind::Str) {
                k += 1; // the ABI string of `extern "C"`
            }
        }
        // `unsafe {` after modifiers is a block, not an item.
        if is_unsafe_item && self.is_punct(k, '{') {
            return None;
        }
        let kw = self.at(k)?;
        if kw.kind != TokKind::Ident || !ITEM_KEYWORDS.contains(&kw.text.as_str()) {
            // `const NAME: T = …;` / `static NAME …` style items.
            if !(self.is_ident(k, "const") || self.is_ident(k, "static")) {
                return None;
            }
        }
        let keyword = kw.text.clone();
        let line = kw.line;
        match keyword.as_str() {
            "fn" => {
                // `fn` must introduce a named fn (`fn(u32)` is a type).
                let name = self.at(k + 1).filter(|t| t.kind == TokKind::Ident)?;
                let name = name.text.clone();
                let (body, item_end) = self.item_extent(k + 1, end);
                let scope = self.push_scope(Scope {
                    kind: ScopeKind::Fn,
                    name,
                    parent,
                    start,
                    header,
                    body,
                    end: item_end,
                    line,
                    test_gated: self.attrs_test_gated(start, header),
                });
                self.claim(start, body.unwrap_or(item_end), scope);
                if let Some(b) = body {
                    self.walk(b, item_end, scope);
                }
                Some(item_end)
            }
            "mod" => {
                let name = self.at(k + 1).filter(|t| t.kind == TokKind::Ident)?;
                let name = name.text.clone();
                let (body, item_end) = self.item_extent(k + 1, end);
                let kind = if body.is_some() {
                    ScopeKind::Mod
                } else {
                    ScopeKind::Item
                };
                let scope = self.push_scope(Scope {
                    kind,
                    name,
                    parent,
                    start,
                    header,
                    body,
                    end: item_end,
                    line,
                    test_gated: self.attrs_test_gated(start, header),
                });
                self.claim(start, body.unwrap_or(item_end), scope);
                if let Some(b) = body {
                    self.walk(b, item_end, scope);
                }
                Some(item_end)
            }
            "impl" | "trait" => {
                let (body, item_end) = self.item_extent(k, end);
                let name = self.header_label(k + 1, body.unwrap_or(item_end));
                let kind = if keyword == "impl" {
                    ScopeKind::Impl
                } else {
                    ScopeKind::Trait
                };
                let scope = self.push_scope(Scope {
                    kind,
                    name,
                    parent,
                    start,
                    header,
                    body,
                    end: item_end,
                    line,
                    test_gated: self.attrs_test_gated(start, header),
                });
                self.claim(start, body.unwrap_or(item_end), scope);
                if let Some(b) = body {
                    self.walk(b, item_end, scope);
                }
                Some(item_end)
            }
            _ => {
                // Opaque items: structs, enums, statics, uses, macros.
                // They own their tokens (so attributes attach) but we
                // never recurse — nothing scope-sensitive lives inside.
                let (body, item_end) = self.item_extent(k, end);
                let name = self
                    .at(k + 1)
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone())
                    .unwrap_or_default();
                let scope = self.push_scope(Scope {
                    kind: ScopeKind::Item,
                    name,
                    parent,
                    start,
                    header,
                    body,
                    end: item_end,
                    line,
                    test_gated: self.attrs_test_gated(start, header),
                });
                self.claim(start, item_end, scope);
                Some(item_end)
            }
        }
    }

    /// From a position inside an item header, finds the body `{` (at
    /// paren/bracket depth 0) or the terminating `;`, and the index
    /// just past the whole item.
    fn item_extent(&self, from: usize, end: usize) -> (Option<usize>, usize) {
        let mut depth = 0i32;
        let mut j = from;
        while j < end {
            let Some(t) = self.at(j) else { break };
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if t.is_punct('{') && depth <= 0 {
                return (Some(j), self.match_brace(j, end));
            } else if t.is_punct(';') && depth <= 0 {
                return (None, j + 1);
            }
            j += 1;
        }
        (None, end)
    }

    /// Index just past the `}` matching the `{` at `open`.
    fn match_brace(&self, open: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut j = open;
        while j < end {
            if self.is_punct(j, '{') {
                depth += 1;
            } else if self.is_punct(j, '}') {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        end
    }

    /// Index just past the `)` matching the `(` at `open`.
    fn match_paren(&self, open: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut j = open;
        while j < end {
            if self.is_punct(j, '(') {
                depth += 1;
            } else if self.is_punct(j, ')') {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        end
    }

    /// If an attribute `#[…]` starts at `i`, the index past its `]`.
    fn skip_attr(&self, i: usize) -> Option<usize> {
        if !(self.is_punct(i, '#') && self.is_punct(i + 1, '[')) {
            return None;
        }
        let mut depth = 0i32;
        let mut j = i + 1;
        while let Some(t) = self.at(j) {
            if t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    return Some(j + 1);
                }
            }
            j += 1;
        }
        None
    }

    /// Do the attributes in `start..header` include `#[test]` or a
    /// `#[cfg(…)]` naming `test` positively (`cfg(not(test))` is
    /// library code and stays unmasked)?
    fn attrs_test_gated(&self, start: usize, header: usize) -> bool {
        let mut i = start;
        while i < header {
            let Some(attr_end) = self.skip_attr(i) else {
                break;
            };
            let body = self
                .tokens
                .get(i + 2..attr_end.saturating_sub(1))
                .unwrap_or(&[]);
            let gated = match body.first() {
                Some(t) if t.is_ident("test") => body.len() == 1,
                Some(t) if t.is_ident("cfg") => {
                    body.iter().any(|t| t.is_ident("test"))
                        && !body.iter().any(|t| t.is_ident("not"))
                }
                _ => false,
            };
            if gated {
                return true;
            }
            i = attr_end;
        }
        false
    }

    /// Joined text of the header tokens (for `impl`/`trait` labels),
    /// truncated before any `where` clause.
    fn header_label(&self, from: usize, to: usize) -> String {
        let mut parts = Vec::new();
        for j in from..to {
            let Some(t) = self.at(j) else { break };
            if t.is_ident("where") {
                break;
            }
            if t.kind == TokKind::Ident || t.kind == TokKind::Lifetime {
                parts.push(t.text.clone());
            }
        }
        parts.join(" ")
    }

    fn push_scope(&mut self, scope: Scope) -> usize {
        self.scopes.push(scope);
        self.scopes.len() - 1
    }

    /// Assigns every token in `start..end` to `scope` (children later
    /// overwrite their own ranges via recursion).
    fn claim(&mut self, start: usize, end: usize, scope: usize) {
        for o in self.owner.iter_mut().take(end).skip(start) {
            *o = scope;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree_of(src: &str) -> (Vec<Tok>, ScopeTree) {
        let lexed = lex(src);
        let tree = build(&lexed.tokens);
        (lexed.tokens, tree)
    }

    fn find<'a>(tree: &'a ScopeTree, kind: ScopeKind, name: &str) -> &'a Scope {
        tree.scopes
            .iter()
            .find(|s| s.kind == kind && s.name == name)
            .unwrap_or_else(|| panic!("no {kind:?} named {name}"))
    }

    #[test]
    fn nesting_mod_impl_fn() {
        let src = "
            mod outer {
                pub struct S { x: u32 }
                impl S {
                    pub fn get(&self) -> u32 { self.x }
                }
                mod inner {
                    fn leaf() {}
                }
            }
        ";
        let (_, tree) = tree_of(src);
        let outer = find(&tree, ScopeKind::Mod, "outer");
        let imp = find(&tree, ScopeKind::Impl, "S");
        let get = find(&tree, ScopeKind::Fn, "get");
        let leaf = find(&tree, ScopeKind::Fn, "leaf");
        assert!(leaf.start > outer.start && leaf.end <= outer.end);
        assert!(imp.start > outer.start && imp.end <= outer.end);
        assert!(get.start > imp.start && get.end <= imp.end);
        assert_eq!(
            tree.path_of(tree.scopes.iter().position(|s| s.name == "leaf").unwrap()),
            "outer::inner::leaf"
        );
        assert_eq!(
            tree.path_of(tree.scopes.iter().position(|s| s.name == "get").unwrap()),
            "outer::S::get"
        );
    }

    #[test]
    fn token_partition_is_total_and_nested() {
        let src = "
            #![allow(dead_code)]
            use std::fmt;
            pub fn a(x: u32) -> u32 { match x { 0 => 1, n => n * 2 } }
            #[derive(Debug)]
            struct T(u32);
            impl fmt::Display for T {
                fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                    write!(f, \"{}\", self.0)
                }
            }
        ";
        let (tokens, tree) = tree_of(src);
        assert_eq!(tree.owner.len(), tokens.len());
        for (i, &o) in tree.owner.iter().enumerate() {
            let s = &tree.scopes[o];
            assert!(s.start <= i && i < s.end, "token {i} outside owner range");
            // Every ancestor range must contain the token too.
            let mut cur = o;
            while cur != 0 {
                cur = tree.scopes[cur].parent;
                let anc = &tree.scopes[cur];
                assert!(anc.start <= i && i < anc.end, "token {i} outside ancestor");
            }
        }
    }

    #[test]
    fn attributes_attach_and_gate_tests() {
        let src = "
            fn lib() { let v = vec![1]; }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { assert!(true); }
            }
            #[cfg(not(test))]
            fn shipped() {}
        ";
        let (tokens, tree) = tree_of(src);
        let mask = tree.test_mask();
        let masked_idents: Vec<&str> = tokens
            .iter()
            .enumerate()
            .filter(|(i, t)| mask[*i] && t.kind == TokKind::Ident)
            .map(|(_, t)| t.text.as_str())
            .collect();
        assert!(masked_idents.contains(&"assert"));
        assert!(!masked_idents.contains(&"lib"));
        assert!(!masked_idents.contains(&"shipped"));
        let tests = find(&tree, ScopeKind::Mod, "tests");
        assert!(tests.test_gated);
        // The attribute tokens themselves belong to the gated scope.
        assert_eq!(tree.owner_of(tests.start), tree.owner_of(tests.header));
    }

    #[test]
    fn unsafe_blocks_and_unsafe_fn() {
        let src = "
            fn shim() {
                let p = unsafe { libc_call() };
                drop(p);
            }
            unsafe fn raw() { other(); }
        ";
        let (tokens, tree) = tree_of(src);
        let blocks: Vec<&Scope> = tree
            .scopes
            .iter()
            .filter(|s| s.kind == ScopeKind::UnsafeBlock)
            .collect();
        assert_eq!(blocks.len(), 1, "{:?}", tree.scopes);
        let block = blocks[0];
        let inside: Vec<&str> = (block.start..block.end)
            .filter(|&i| tokens[i].kind == TokKind::Ident)
            .map(|i| tokens[i].text.as_str())
            .collect();
        assert!(inside.contains(&"libc_call"));
        assert!(!inside.contains(&"drop"));
        // `unsafe fn` is a Fn scope, not an UnsafeBlock.
        let raw = find(&tree, ScopeKind::Fn, "raw");
        assert!(raw.body.is_some());
    }

    #[test]
    fn raw_strings_and_braces_in_strings_do_not_derail() {
        let src = r####"
            fn a() -> &'static str { r#"not a brace: { nor } here"# }
            fn b() { let s = "also { unbalanced"; drop(s); }
            fn c() {}
        "####;
        let (_, tree) = tree_of(src);
        for name in ["a", "b", "c"] {
            let f = find(&tree, ScopeKind::Fn, name);
            assert!(f.body.is_some(), "fn {name} has a body");
        }
        // a, b, c are siblings under the root, not nested.
        let a = find(&tree, ScopeKind::Fn, "a");
        let c = find(&tree, ScopeKind::Fn, "c");
        assert_eq!(a.parent, 0);
        assert_eq!(c.parent, 0);
        assert!(a.end <= c.start);
    }

    #[test]
    fn fn_pointer_types_and_semicolon_items() {
        let src = "
            type Cb = fn(u32) -> u32;
            mod external;
            static N: usize = 3;
            fn real(cb: Cb) -> u32 { cb(N as u32) }
        ";
        let (_, tree) = tree_of(src);
        // Exactly one Fn scope: `fn(u32)` in the type alias is not one.
        let fns: Vec<&Scope> = tree
            .scopes
            .iter()
            .filter(|s| s.kind == ScopeKind::Fn)
            .collect();
        assert_eq!(fns.len(), 1, "{:?}", tree.scopes);
        assert_eq!(fns[0].name, "real");
        // `mod external;` is an Item (no body), not a Mod scope.
        let ext = find(&tree, ScopeKind::Item, "external");
        assert!(ext.body.is_none());
    }

    #[test]
    fn impl_header_label_and_where_clause() {
        let src = "
            impl<T> Wrapper<T> where T: Clone {
                fn dup(&self) {}
            }
            trait Power { fn watts(&self) -> f64; }
        ";
        let (_, tree) = tree_of(src);
        let imp = tree
            .scopes
            .iter()
            .find(|s| s.kind == ScopeKind::Impl)
            .expect("impl scope");
        assert!(imp.name.contains("Wrapper"), "{}", imp.name);
        assert!(
            !imp.name.contains("Clone"),
            "where clause leaked: {}",
            imp.name
        );
        let tr = find(&tree, ScopeKind::Trait, "Power");
        // The method signature inside the trait is a Fn scope too.
        let watts = find(&tree, ScopeKind::Fn, "watts");
        assert!(watts.start > tr.start && watts.end <= tr.end);
        assert!(watts.body.is_none());
    }
}
