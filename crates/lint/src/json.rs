//! Minimal shared JSON support: a recursive-descent parser for the
//! subset the analyzer's documents use, plus the canonical string
//! escaper. Shared by the baseline, the incremental cache, and the
//! report/SARIF writers so the crate stays dependency-free. Errors are
//! plain strings — each caller wraps them in its own error type (the
//! cache just discards any document that fails to parse).

use std::collections::BTreeMap;

/// Minimal JSON value.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Value {
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    pub(crate) fn as_object(&self, what: &str) -> Result<&BTreeMap<String, Value>, String> {
        match self {
            Value::Obj(m) => Ok(m),
            other => Err(format!("{what} must be a JSON object, found {other:?}")),
        }
    }

    pub(crate) fn as_count(&self, what: &str) -> Result<usize, String> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as usize),
            other => Err(format!(
                "count for {what:?} must be a non-negative integer, found {other:?}"
            )),
        }
    }

    pub(crate) fn str_of(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub(crate) fn arr_of(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Serializes `s` as a quoted JSON string.
pub(crate) fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses one JSON document (rejects trailing content).
pub(crate) fn parse(text: &str) -> Result<Value, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut p = Parser { chars, pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(format!("trailing content at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        match self.bump() {
            Some(got) if got == c => Ok(()),
            got => Err(format!(
                "expected {c:?} at offset {}, found {got:?}",
                self.pos
            )),
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Value::Str(self.string()?)),
            Some('t') => self.literal("true", Value::Bool(true)),
            Some('f') => self.literal("false", Value::Bool(false)),
            Some('n') => self.literal("null", Value::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            got => Err(format!("unexpected {got:?} at offset {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        for expected in word.chars() {
            match self.bump() {
                Some(c) if c == expected => {}
                got => {
                    return Err(format!(
                        "bad literal near offset {}: expected {word:?}, found {got:?}",
                        self.pos
                    ))
                }
            }
        }
        Ok(v)
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect('{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.bump();
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(Value::Obj(map)),
                got => {
                    return Err(format!(
                        "expected ',' or '}}' at offset {}, found {got:?}",
                        self.pos
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.bump();
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => return Ok(Value::Arr(items)),
                got => {
                    return Err(format!(
                        "expected ',' or ']' at offset {}, found {got:?}",
                        self.pos
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|c| c.to_digit(16))
                                .ok_or_else(|| "bad \\u escape".to_string())?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    got => return Err(format!("bad escape {got:?} at offset {}", self.pos)),
                },
                Some(c) => out.push(c),
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.bump();
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        {
            self.bump();
        }
        let text: String = self
            .chars
            .get(start..self.pos)
            .unwrap_or(&[])
            .iter()
            .collect();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number {text:?} at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, "two", true, null], "b": {"c": -3.5}}"#).unwrap();
        let obj = v.as_object("doc").unwrap();
        let arr = obj.get("a").and_then(Value::arr_of).unwrap();
        assert_eq!(arr.len(), 4);
        assert_eq!(arr[1].str_of(), Some("two"));
        let b = obj.get("b").unwrap().as_object("b").unwrap();
        assert_eq!(b.get("c"), Some(&Value::Num(-3.5)));
    }

    #[test]
    fn quote_round_trips_through_parse() {
        let nasty = "quote \" slash \\ newline \n tab \t ctrl \u{1}";
        let v = parse(&quote(nasty)).unwrap();
        assert_eq!(v.str_of(), Some(nasty));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{} junk").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }
}
