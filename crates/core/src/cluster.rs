//! Cluster composition: GPUs + fat-tree network + device powers.

use serde::{Deserialize, Serialize};

use npp_power::devices::{DeviceDb, SWITCH_CAPACITY};
use npp_power::{PowerModel, Proportionality};
use npp_topology::{FatTreeModel, FatTreeSize, InterpMode};
use npp_units::{Gbps, Watts};
use npp_workload::IterationModel;

use crate::{CoreError, Result};

/// Full configuration of a modeled ML cluster (§2.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of GPUs (= network endpoints; one NIC per GPU).
    pub gpus: f64,
    /// Per-GPU network interface speed.
    pub bandwidth: Gbps,
    /// Aggregate switch ASIC capacity (51.2 Tbps in the paper).
    pub switch_capacity: Gbps,
    /// Device power database (powers + proportionalities).
    pub devices: DeviceDb,
    /// Fat-tree sizing rule (the paper interpolates fractional stages).
    pub interp: InterpMode,
    /// Optical transceivers per inter-switch link (2 in the paper: one at
    /// each end; GPU↔ToR links are electrical and free).
    pub transceivers_per_link: f64,
    /// The workload's iteration model.
    pub workload: IterationModel,
}

impl ClusterConfig {
    /// The §2.1 baseline: 15k (= 15,360, one Alibaba HPN pod) H100 GPUs,
    /// 400 G per GPU, 51.2 Tbps switches, 10 % communication ratio.
    pub fn paper_baseline() -> Self {
        Self {
            gpus: 15_360.0,
            bandwidth: Gbps::new(400.0),
            switch_capacity: SWITCH_CAPACITY,
            devices: DeviceDb::paper_baseline(),
            interp: InterpMode::FractionalStages,
            transceivers_per_link: 2.0,
            workload: IterationModel::paper_baseline(),
        }
    }

    /// Returns a copy with a different per-GPU bandwidth.
    pub fn with_bandwidth(mut self, bw: Gbps) -> Self {
        self.bandwidth = bw;
        self
    }

    /// Returns a copy with a different GPU count.
    pub fn with_gpus(mut self, gpus: f64) -> Self {
        self.gpus = gpus;
        self
    }

    /// Returns a copy with a different network power proportionality —
    /// the paper's central what-if knob.
    pub fn with_network_proportionality(mut self, p: Proportionality) -> Self {
        self.devices = self.devices.with_network_proportionality(p);
        self
    }

    /// The network proportionality currently configured.
    pub fn network_proportionality(&self) -> Proportionality {
        self.devices.network_proportionality
    }
}

/// Counts of network hardware needed to connect the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkInventory {
    /// Switches (fractional: continuous model).
    pub switches: f64,
    /// Inter-switch links.
    pub links: f64,
    /// Optical transceivers (2 per inter-switch link by default).
    pub transceivers: f64,
    /// NICs (one per GPU).
    pub nics: f64,
    /// The underlying fat-tree sizing.
    pub tree: FatTreeSize,
}

/// Per-component maximum network power (the Figure 2 decomposition).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkPowerBreakdown {
    /// All switches.
    pub switches: Watts,
    /// All NICs.
    pub nics: Watts,
    /// All transceivers.
    pub transceivers: Watts,
}

impl NetworkPowerBreakdown {
    /// Sum over components.
    pub fn total(&self) -> Watts {
        self.switches + self.nics + self.transceivers
    }
}

/// A cluster model with the derived network inventory and power figures
/// cached at construction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterModel {
    config: ClusterConfig,
    inventory: NetworkInventory,
    breakdown: NetworkPowerBreakdown,
}

impl ClusterModel {
    /// Builds the model, sizing the fat tree and the device powers.
    ///
    /// # Errors
    ///
    /// Fails on invalid radixes (bandwidth not dividing the switch
    /// capacity evenly), unknown device speeds, or non-positive GPU
    /// counts.
    pub fn new(config: ClusterConfig) -> Result<Self> {
        if config.gpus <= 0.0 || !config.gpus.is_finite() {
            return Err(CoreError::InvalidConfig(format!(
                "gpu count {} must be positive and finite",
                config.gpus
            )));
        }
        if config.transceivers_per_link < 0.0 {
            return Err(CoreError::InvalidConfig(format!(
                "transceivers_per_link {} must be non-negative",
                config.transceivers_per_link
            )));
        }
        let tree_model =
            FatTreeModel::from_switch_capacity(config.switch_capacity, config.bandwidth)?;
        let tree = tree_model.size_for_hosts_with(config.gpus, config.interp)?;
        let inventory = NetworkInventory {
            switches: tree.switches,
            links: tree.inter_switch_links,
            transceivers: tree.inter_switch_links * config.transceivers_per_link,
            nics: config.gpus,
            tree,
        };
        let nic = config.devices.nic(config.bandwidth)?;
        let xcvr = config.devices.transceiver(config.bandwidth)?;
        let breakdown = NetworkPowerBreakdown {
            switches: config.devices.switch().max_power() * inventory.switches,
            nics: nic.max_power() * inventory.nics,
            transceivers: xcvr.max_power() * inventory.transceivers,
        };
        Ok(Self {
            config,
            inventory,
            breakdown,
        })
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// The derived network hardware counts.
    pub fn inventory(&self) -> &NetworkInventory {
        &self.inventory
    }

    /// Per-component max network power.
    pub fn network_breakdown(&self) -> &NetworkPowerBreakdown {
        &self.breakdown
    }

    /// Total compute power at full load: `gpus × 500 W`.
    pub fn compute_max_power(&self) -> Watts {
        self.config.devices.gpu().max_power() * self.config.gpus
    }

    /// Total compute power when all GPUs idle: `gpus × 75 W`.
    pub fn compute_idle_power(&self) -> Watts {
        self.config.devices.gpu().idle_power() * self.config.gpus
    }

    /// Total network power at full load.
    pub fn network_max_power(&self) -> Watts {
        self.breakdown.total()
    }

    /// Total network power when the network idles, at the configured
    /// proportionality: `(1 − p) × max`.
    pub fn network_idle_power(&self) -> Watts {
        self.config
            .network_proportionality()
            .idle_power(self.network_max_power())
    }

    /// Cluster-wide maximum power (everything busy — never happens under
    /// the paper's no-overlap workload, but bounds the PSU provisioning).
    pub fn peak_power(&self) -> Watts {
        self.compute_max_power() + self.network_max_power()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_inventory() {
        let m = ClusterModel::new(ClusterConfig::paper_baseline()).unwrap();
        let inv = m.inventory();
        assert!(
            (inv.switches - 396.28).abs() < 0.1,
            "switches {}",
            inv.switches
        );
        assert!((inv.links - 17_681.6).abs() < 1.0);
        assert!((inv.transceivers - 35_363.3).abs() < 2.0);
        assert_eq!(inv.nics, 15_360.0);
    }

    #[test]
    fn baseline_power_figures() {
        let m = ClusterModel::new(ClusterConfig::paper_baseline()).unwrap();
        // Compute: 15,360 × 500 W = 7.68 MW; idle 1.152 MW.
        assert!(m.compute_max_power().approx_eq(Watts::from_mw(7.68), 1.0));
        assert!(m.compute_idle_power().approx_eq(Watts::from_mw(1.152), 1.0));
        // Network: ≈ 1.041 MW max, 0.937 MW idle at 10% proportionality.
        assert!((m.network_max_power().as_kw() - 1040.98).abs() < 0.5);
        assert!((m.network_idle_power().as_kw() - 936.89).abs() < 0.5);
        let b = m.network_breakdown();
        assert!((b.switches.as_kw() - 297.2).abs() < 0.2);
        assert!((b.nics.as_kw() - 390.1).abs() < 0.2);
        assert!((b.transceivers.as_kw() - 353.6).abs() < 0.2);
    }

    #[test]
    fn bandwidth_sweep_network_power() {
        // Validated against the Table-3 reverse-engineering: the network
        // max power at each bandwidth.
        let expected = [
            (100.0, 257.0),
            (200.0, 545.0),
            (400.0, 1041.0),
            (800.0, 2142.0),
            (1600.0, 4731.0),
        ];
        for (bw, kw) in expected {
            let cfg = ClusterConfig::paper_baseline().with_bandwidth(Gbps::new(bw));
            let m = ClusterModel::new(cfg).unwrap();
            let got = m.network_max_power().as_kw();
            assert!(
                (got - kw).abs() / kw < 0.01,
                "bw {bw}: network {got:.1} kW, expected ≈{kw}"
            );
        }
    }

    #[test]
    fn higher_bandwidth_draws_more_network_power() {
        let mut last = Watts::ZERO;
        for bw in [100.0, 200.0, 400.0, 800.0, 1600.0] {
            let m =
                ClusterModel::new(ClusterConfig::paper_baseline().with_bandwidth(Gbps::new(bw)))
                    .unwrap();
            assert!(m.network_max_power() > last);
            last = m.network_max_power();
        }
    }

    #[test]
    fn proportionality_knob_changes_idle_only() {
        let base = ClusterModel::new(ClusterConfig::paper_baseline()).unwrap();
        let perfect = ClusterModel::new(
            ClusterConfig::paper_baseline().with_network_proportionality(Proportionality::PERFECT),
        )
        .unwrap();
        assert_eq!(base.network_max_power(), perfect.network_max_power());
        assert_eq!(perfect.network_idle_power(), Watts::ZERO);
        assert!(base.network_idle_power() > Watts::ZERO);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(ClusterModel::new(ClusterConfig::paper_baseline().with_gpus(0.0)).is_err());
        assert!(ClusterModel::new(ClusterConfig::paper_baseline().with_gpus(f64::NAN)).is_err());
        let mut cfg = ClusterConfig::paper_baseline();
        cfg.transceivers_per_link = -1.0;
        assert!(ClusterModel::new(cfg).is_err());
        // A bandwidth that doesn't divide the ASIC capacity into an even
        // radix: 51.2 T / 300 G = 170.67 → radix 170 is fine (even), but
        // 51.2 T / 30000 G < 2 ports.
        let cfg = ClusterConfig::paper_baseline().with_bandwidth(Gbps::new(30_000.0));
        assert!(ClusterModel::new(cfg).is_err());
    }

    #[test]
    fn peak_power_is_sum() {
        let m = ClusterModel::new(ClusterConfig::paper_baseline()).unwrap();
        assert!(m
            .peak_power()
            .approx_eq(m.compute_max_power() + m.network_max_power(), 1e-6));
    }
}
