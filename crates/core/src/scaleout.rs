//! Scale-out analysis: how the network's power share — and thus the
//! value of proportionality — grows with cluster size.
//!
//! The paper analyzes one pod (15k GPUs). Production clusters stack pods
//! behind additional fabric stages (the Alibaba HPN design it cites), and
//! the fractional-stage fat-tree model extends continuously to any size.
//! Bigger clusters need *relatively more* network: each endpoint's
//! traffic crosses more stages, so switches and transceivers grow
//! super-linearly in share — making the paper's argument stronger at
//! frontier scale.

use serde::{Deserialize, Serialize};

use npp_power::Proportionality;
use npp_units::Ratio;
use npp_workload::ScalingScenario;

use crate::cluster::{ClusterConfig, ClusterModel};
use crate::phases::phase_breakdown;
use crate::savings::average_power;
use crate::Result;

/// One point of the scale sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalePoint {
    /// GPU count.
    pub gpus: f64,
    /// Fat-tree stages the fabric needs (fractional).
    pub stages: f64,
    /// Switches per 1000 GPUs (the density that drives the share).
    pub switches_per_kilo_gpu: f64,
    /// Network share of the time-averaged cluster power.
    pub network_share: Ratio,
    /// Headline saving: 10 % → 85 % network proportionality.
    pub headline_savings: Ratio,
}

/// Sweeps cluster sizes at the baseline bandwidth and reports how the
/// network share and the headline saving scale. The workload scales with
/// the cluster (fixed communication ratio): a 32-pod cluster trains a
/// 32-pod-sized job, keeping the 90/10 iteration structure of §2.1.
///
/// # Errors
///
/// Propagates model errors.
pub fn savings_vs_scale(base: &ClusterConfig, gpu_counts: &[f64]) -> Result<Vec<ScalePoint>> {
    gpu_counts
        .iter()
        .map(|&gpus| {
            let cfg = base.clone().with_gpus(gpus);
            let model = ClusterModel::new(cfg.clone())?;
            let b = phase_breakdown(&model, ScalingScenario::FixedCommRatio)?;
            let baseline = average_power(
                &cfg.clone()
                    .with_network_proportionality(Proportionality::NETWORK_BASELINE),
                ScalingScenario::FixedCommRatio,
            )?;
            let improved = average_power(
                &cfg.clone()
                    .with_network_proportionality(Proportionality::COMPUTE),
                ScalingScenario::FixedCommRatio,
            )?;
            Ok(ScalePoint {
                gpus,
                stages: model.inventory().tree.stages,
                switches_per_kilo_gpu: model.inventory().switches / gpus * 1000.0,
                network_share: b.average.network_share(),
                headline_savings: Ratio::new(1.0 - improved / baseline),
            })
        })
        .collect()
}

/// The pod-multiples grid used by the CLI: 1, 2, 4, 8, 16, 32 pods of
/// the §2.1 baseline.
pub fn pod_grid() -> Vec<f64> {
    [1.0, 2.0, 4.0, 8.0, 16.0, 32.0]
        .map(|p| p * 15_360.0)
        .to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> Vec<ScalePoint> {
        savings_vs_scale(&ClusterConfig::paper_baseline(), &pod_grid()).unwrap()
    }

    #[test]
    fn single_pod_matches_the_paper() {
        let s = sweep();
        assert_eq!(s[0].gpus, 15_360.0);
        assert!((s[0].network_share.percent() - 11.9).abs() < 0.3);
        assert!((s[0].headline_savings.percent() - 8.8).abs() < 0.1);
    }

    #[test]
    fn scale_deepens_the_tree_and_raises_the_share() {
        let s = sweep();
        for w in s.windows(2) {
            assert!(w[1].stages > w[0].stages);
            assert!(
                w[1].switches_per_kilo_gpu > w[0].switches_per_kilo_gpu,
                "density must grow with scale"
            );
            assert!(w[1].network_share > w[0].network_share);
            assert!(w[1].headline_savings > w[0].headline_savings);
        }
    }

    #[test]
    fn half_million_gpus_make_the_case_stronger() {
        // At 32 pods (~half a million GPUs), the headline saving beats
        // the single-pod 8.8% visibly — the paper's argument compounds
        // with scale.
        let s = sweep();
        let last = s.last().unwrap();
        assert!(last.gpus > 490_000.0);
        assert!(
            last.headline_savings.percent() > 9.5,
            "at scale: {}",
            last.headline_savings
        );
    }
}
