//! Fixed-power-budget performance speedups — §3.3, Figures 3 and 4.
//!
//! Data centers are power-limited, so every watt saved on the network can
//! buy GPUs instead. For a fixed power budget (the baseline cluster's
//! average draw), the solver finds the GPU count whose time-averaged power
//! exactly meets the budget — the network is re-sized along with the GPU
//! count — and reports the resulting iteration-time speedup.
//!
//! - **Figure 3 (fixed workload)**: communication time ∝ 1/bandwidth;
//!   speedups are relative to the §2.1 baseline (400 G, 10 %
//!   proportionality), which by construction sits at exactly 0 %.
//! - **Figure 4 (fixed communication ratio)**: the communication workload
//!   grows with bandwidth so the 10 % ratio is preserved; speedups are
//!   relative to a zero-proportionality network at the *same* bandwidth.

use serde::{Deserialize, Serialize};

use npp_power::Proportionality;
use npp_units::{Gbps, Ratio, Seconds, Watts};
use npp_workload::ScalingScenario;

use crate::cluster::{ClusterConfig, ClusterModel};
use crate::phases::phase_breakdown;
use crate::{CoreError, Result};

/// One point of a speedup curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedupPoint {
    /// Per-GPU bandwidth.
    pub bandwidth: Gbps,
    /// Network proportionality.
    pub proportionality: Proportionality,
    /// GPU count that exactly exhausts the power budget.
    pub gpus: f64,
    /// Resulting iteration time.
    pub iteration_time: Seconds,
    /// Speedup relative to the curve's reference iteration time
    /// (positive = faster).
    pub speedup: Ratio,
}

/// A per-bandwidth speedup curve over a proportionality sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedupCurve {
    /// The bandwidth of this curve.
    pub bandwidth: Gbps,
    /// Points in proportionality order.
    pub points: Vec<SpeedupPoint>,
}

/// Time-averaged cluster power for a configuration with `gpus` GPUs.
fn avg_power(base: &ClusterConfig, gpus: f64, scenario: ScalingScenario) -> Result<Watts> {
    let model = ClusterModel::new(base.clone().with_gpus(gpus))?;
    Ok(phase_breakdown(&model, scenario)?.average.total())
}

/// Finds the GPU count whose time-averaged power equals `budget`, by
/// bisection (the average power is monotonically increasing in the GPU
/// count under both scenarios).
///
/// # Errors
///
/// [`CoreError::SolverFailed`] if no bracketing interval can be found or
/// the iteration does not converge.
pub fn gpus_for_budget(
    base: &ClusterConfig,
    budget: Watts,
    scenario: ScalingScenario,
) -> Result<f64> {
    let f = |g: f64| -> Result<f64> { Ok(avg_power(base, g, scenario)?.value() - budget.value()) };

    let mut lo = 8.0;
    if f(lo)? > 0.0 {
        return Err(CoreError::SolverFailed(format!(
            "budget {budget:.0} below the power of a {lo}-GPU cluster"
        )));
    }
    let mut hi = 1024.0;
    let mut expansions = 0;
    while f(hi)? < 0.0 {
        hi *= 2.0;
        expansions += 1;
        if expansions > 40 {
            return Err(CoreError::SolverFailed(
                "could not bracket the power budget".into(),
            ));
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if f(mid)? < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo) / hi < 1e-12 {
            break;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// The power budget used by both figures: the average power of the §2.1
/// baseline cluster (400 G at 10 % proportionality).
///
/// # Errors
///
/// Propagates model errors.
pub fn baseline_budget() -> Result<Watts> {
    let model = ClusterModel::new(ClusterConfig::paper_baseline())?;
    Ok(phase_breakdown(&model, ScalingScenario::FixedWorkload)?
        .average
        .total())
}

/// Computes one speedup point under the fixed-workload scenario, relative
/// to a reference iteration time.
fn fixed_workload_point(
    base: &ClusterConfig,
    bw: Gbps,
    p: Proportionality,
    budget: Watts,
    reference_time: Seconds,
) -> Result<SpeedupPoint> {
    let cfg = base
        .clone()
        .with_bandwidth(bw)
        .with_network_proportionality(p);
    let gpus = gpus_for_budget(&cfg, budget, ScalingScenario::FixedWorkload)?;
    let iter = cfg
        .workload
        .iteration(gpus, bw, ScalingScenario::FixedWorkload)?;
    Ok(SpeedupPoint {
        bandwidth: bw,
        proportionality: p,
        gpus,
        iteration_time: iter.total(),
        speedup: Ratio::new(reference_time / iter.total() - 1.0),
    })
}

/// Figure 3: fixed-workload speedup curves over a proportionality sweep,
/// one curve per bandwidth, all relative to the §2.1 baseline iteration
/// time.
///
/// # Errors
///
/// Propagates solver and model errors.
pub fn figure3(
    bandwidths: &[Gbps],
    proportionalities: &[Proportionality],
) -> Result<Vec<SpeedupCurve>> {
    let base = ClusterConfig::paper_baseline();
    let budget = baseline_budget()?;
    // Reference: the baseline config solves to exactly the baseline GPU
    // count, whose iteration time is 1 by construction.
    let reference_time = base
        .workload
        .iteration(base.gpus, base.bandwidth, ScalingScenario::FixedWorkload)?
        .total();
    bandwidths
        .iter()
        .map(|&bw| {
            let points = proportionalities
                .iter()
                .map(|&p| fixed_workload_point(&base, bw, p, budget, reference_time))
                .collect::<Result<Vec<_>>>()?;
            Ok(SpeedupCurve {
                bandwidth: bw,
                points,
            })
        })
        .collect()
}

/// Figure 4: fixed-communication-ratio speedup curves, one per bandwidth,
/// each relative to the zero-proportionality point of the *same*
/// bandwidth.
///
/// # Errors
///
/// Propagates solver and model errors.
pub fn figure4(
    bandwidths: &[Gbps],
    proportionalities: &[Proportionality],
) -> Result<Vec<SpeedupCurve>> {
    let base = ClusterConfig::paper_baseline();
    let budget = baseline_budget()?;
    bandwidths
        .iter()
        .map(|&bw| {
            // Reference: zero proportionality at this bandwidth.
            let ref_cfg = base
                .clone()
                .with_bandwidth(bw)
                .with_network_proportionality(Proportionality::FLAT);
            let ref_gpus = gpus_for_budget(&ref_cfg, budget, ScalingScenario::FixedCommRatio)?;
            let ref_time = ref_cfg
                .workload
                .iteration(ref_gpus, bw, ScalingScenario::FixedCommRatio)?
                .total();
            let points = proportionalities
                .iter()
                .map(|&p| {
                    let cfg = base
                        .clone()
                        .with_bandwidth(bw)
                        .with_network_proportionality(p);
                    let gpus = gpus_for_budget(&cfg, budget, ScalingScenario::FixedCommRatio)?;
                    let iter = cfg
                        .workload
                        .iteration(gpus, bw, ScalingScenario::FixedCommRatio)?;
                    Ok(SpeedupPoint {
                        bandwidth: bw,
                        proportionality: p,
                        gpus,
                        iteration_time: iter.total(),
                        speedup: Ratio::new(ref_time / iter.total() - 1.0),
                    })
                })
                .collect::<Result<Vec<_>>>()?;
            Ok(SpeedupCurve {
                bandwidth: bw,
                points,
            })
        })
        .collect()
}

/// The paper's bandwidth grid for Figures 3 and 4.
pub fn paper_bandwidths() -> Vec<Gbps> {
    [100.0, 200.0, 400.0, 800.0, 1600.0].map(Gbps::new).to_vec()
}

/// A proportionality sweep from 0 to 100 % in `steps` increments.
pub fn proportionality_sweep(steps: usize) -> Vec<Proportionality> {
    (0..=steps)
        .map(|i| Proportionality::new(i as f64 / steps as f64).expect("sweep values are in [0,1]"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prop(f: f64) -> Proportionality {
        Proportionality::new(f).unwrap()
    }

    #[test]
    fn budget_matches_baseline_average() {
        let b = baseline_budget().unwrap();
        assert!((b.as_mw() - 7.975).abs() < 0.01);
    }

    #[test]
    fn solver_recovers_baseline_gpu_count() {
        // At the baseline config the budget is hit at exactly 15,360 GPUs.
        let cfg = ClusterConfig::paper_baseline();
        let budget = baseline_budget().unwrap();
        let g = gpus_for_budget(&cfg, budget, ScalingScenario::FixedWorkload).unwrap();
        assert!((g - 15_360.0).abs() < 1.0, "g = {g}");
    }

    #[test]
    fn figure3_baseline_point_is_zero_speedup() {
        let curves = figure3(&[Gbps::new(400.0)], &[prop(0.10)]).unwrap();
        let s = curves[0].points[0].speedup;
        assert!(s.approx_eq(Ratio::ZERO, 1e-6), "speedup {s}");
    }

    #[test]
    fn figure3_low_proportionality_favors_low_bandwidth() {
        // §3.3: "lower network bandwidth is faster overall if the network
        // power proportionality is poor." At 10% proportionality the
        // winner is 200 G (100 G pays a 4×-longer communication phase
        // that almost exactly cancels its cheaper network), and speedup
        // falls monotonically from 200 G up.
        let bws = paper_bandwidths();
        let curves = figure3(&bws, &[prop(0.10)]).unwrap();
        let speedups: Vec<f64> = curves
            .iter()
            .map(|c| c.points[0].speedup.fraction())
            .collect();
        let best = speedups
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(bws[best] <= Gbps::new(200.0), "best bw {}", bws[best]);
        // From 200 G up, higher bandwidth is strictly worse.
        for w in speedups[1..].windows(2) {
            assert!(w[0] > w[1], "speedups {speedups:?}");
        }
        // 1600 G is dramatically slower (paper's curve: ≈ −30%).
        assert!(speedups[4] < -0.2, "speedups {speedups:?}");
    }

    #[test]
    fn figure3_200g_beats_400g_even_at_50_percent() {
        // §3.3: "even at 50% proportionality, a 200 Gbps network is still
        // faster than a 400 Gbps one."
        let curves = figure3(&[Gbps::new(200.0), Gbps::new(400.0)], &[prop(0.50)]).unwrap();
        assert!(curves[0].points[0].speedup > curves[1].points[0].speedup);
    }

    #[test]
    fn figure3_high_bandwidth_needs_very_high_proportionality() {
        // §3.3: 800/1600 G "become the best alternatives only at very high
        // proportionality values (> 90%)". At 90% they should not yet
        // dominate 200G; at 100% they should.
        let bws = paper_bandwidths();
        let at_90 = figure3(&bws, &[prop(0.90)]).unwrap();
        let best_90 = at_90
            .iter()
            .max_by(|a, b| {
                a.points[0]
                    .speedup
                    .partial_cmp(&b.points[0].speedup)
                    .unwrap()
            })
            .unwrap()
            .bandwidth;
        let at_100 = figure3(&bws, &[prop(1.0)]).unwrap();
        let best_100 = at_100
            .iter()
            .max_by(|a, b| {
                a.points[0]
                    .speedup
                    .partial_cmp(&b.points[0].speedup)
                    .unwrap()
            })
            .unwrap()
            .bandwidth;
        assert!(best_100 >= Gbps::new(800.0), "best at 100%: {best_100}");
        assert!(best_90 <= best_100);
    }

    #[test]
    fn figure3_speedup_increases_with_proportionality() {
        // "Better power proportionality improves the iteration time for
        // all bandwidth speeds."
        for bw in [100.0, 400.0, 1600.0] {
            let curves = figure3(&[Gbps::new(bw)], &[prop(0.0), prop(0.5), prop(1.0)]).unwrap();
            let pts = &curves[0].points;
            assert!(pts[0].speedup < pts[1].speedup, "bw {bw}");
            assert!(pts[1].speedup < pts[2].speedup, "bw {bw}");
        }
    }

    #[test]
    fn figure4_zero_proportionality_is_reference() {
        let curves = figure4(&[Gbps::new(800.0)], &[prop(0.0)]).unwrap();
        assert!(curves[0].points[0].speedup.approx_eq(Ratio::ZERO, 1e-9));
    }

    #[test]
    fn figure4_800g_at_50_percent_is_about_10_percent() {
        // §3.3: "a network power proportionality of 50% on a 800 Gbps
        // network would enable a 10% speedup." We land at ≈11%; the shape
        // and magnitude match (see EXPERIMENTS.md).
        let curves = figure4(&[Gbps::new(800.0)], &[prop(0.50)]).unwrap();
        let s = curves[0].points[0].speedup.percent();
        assert!((s - 10.0).abs() < 2.5, "speedup {s:.1}%");
    }

    #[test]
    fn figure4_gain_grows_with_bandwidth() {
        // §3.3: "the higher the bandwidth, the bigger the performance
        // gain."
        let bws = paper_bandwidths();
        let curves = figure4(&bws, &[prop(0.50)]).unwrap();
        let speedups: Vec<f64> = curves
            .iter()
            .map(|c| c.points[0].speedup.fraction())
            .collect();
        for w in speedups.windows(2) {
            assert!(w[1] > w[0], "speedups {speedups:?}");
        }
    }

    #[test]
    fn figure4_speedup_is_gpu_ratio() {
        // Under fixed comm ratio, iteration time ∝ 1/GPUs, so the speedup
        // equals the GPU-count ratio.
        let curves = figure4(&[Gbps::new(400.0)], &[prop(0.0), prop(1.0)]).unwrap();
        let pts = &curves[0].points;
        let gpu_ratio = pts[1].gpus / pts[0].gpus;
        assert!((pts[1].speedup.fraction() + 1.0 - gpu_ratio).abs() < 1e-6);
    }

    #[test]
    fn solver_rejects_impossible_budget() {
        let cfg = ClusterConfig::paper_baseline();
        let err = gpus_for_budget(&cfg, Watts::new(1.0), ScalingScenario::FixedWorkload);
        assert!(err.is_err());
    }

    #[test]
    fn sweep_helpers() {
        assert_eq!(paper_bandwidths().len(), 5);
        let sweep = proportionality_sweep(10);
        assert_eq!(sweep.len(), 11);
        assert_eq!(sweep[0], Proportionality::FLAT);
        assert_eq!(sweep[10], Proportionality::PERFECT);
    }
}
