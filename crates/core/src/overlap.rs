//! Power analysis under compute/communication overlap (§3.4).
//!
//! Answers the question §3.4 raises: do the proportionality savings
//! survive if training overlaps communication with computation? The
//! three-segment schedule (both busy / compute only / comm only) replaces
//! the two-phase breakdown; everything else (device models, topology
//! sizing) is shared with the core analysis.

use serde::{Deserialize, Serialize};

use npp_power::Proportionality;
use npp_units::{Ratio, Watts};
use npp_workload::overlap::OverlapSchedule;
use npp_workload::ScalingScenario;

use crate::cluster::{ClusterConfig, ClusterModel};
use crate::Result;

/// The overlap-aware power summary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverlapPowerSummary {
    /// The schedule analyzed.
    pub schedule: OverlapSchedule,
    /// Time-averaged cluster power.
    pub average_power: Watts,
    /// Network energy efficiency over the iteration.
    pub network_efficiency: Ratio,
    /// Fraction of the iteration the network idles.
    pub network_idle_fraction: Ratio,
}

/// Computes the power summary for a cluster whose iteration overlaps a
/// fraction `overlap` of its communication with computation.
///
/// # Errors
///
/// Propagates model and workload errors.
pub fn overlap_summary(config: &ClusterConfig, overlap: Ratio) -> Result<OverlapPowerSummary> {
    let model = ClusterModel::new(config.clone())?;
    let iter = config.workload.iteration(
        config.gpus,
        config.bandwidth,
        ScalingScenario::FixedWorkload,
    )?;
    let schedule = OverlapSchedule::from_iteration(&iter, overlap)?;

    let c_max = model.compute_max_power();
    let c_idle = model.compute_idle_power();
    let n_max = model.network_max_power();
    let n_idle = model.network_idle_power();

    let t_both = schedule.both.value();
    let t_comp = schedule.compute_only.value();
    let t_comm = schedule.comm_only.value();
    let total = schedule.total().value();

    let energy = (c_max + n_max) * t_both + (c_max + n_idle) * t_comp + (c_idle + n_max) * t_comm;
    let average_power = energy / total;

    // Network efficiency (§3.1 definition): useful energy (busy time at
    // max) over consumed energy.
    let net_energy = n_max * (t_both + t_comm) + n_idle * t_comp;
    let net_useful = n_max * (t_both + t_comm);
    let network_efficiency = if net_energy.value() > 0.0 {
        Ratio::new(net_useful.value() / net_energy.value())
    } else {
        Ratio::ZERO
    };

    Ok(OverlapPowerSummary {
        schedule,
        average_power,
        network_efficiency,
        network_idle_fraction: schedule.network_busy_fraction().complement(),
    })
}

/// One row of the overlap sweep: how the proportionality saving changes
/// as overlap increases.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverlapSavingsPoint {
    /// Overlap fraction.
    pub overlap: Ratio,
    /// Average power at the baseline (10 %) network proportionality.
    pub baseline_power: Watts,
    /// Average power at the improved proportionality.
    pub improved_power: Watts,
    /// Relative saving.
    pub savings: Ratio,
    /// Network energy efficiency at the baseline proportionality.
    pub baseline_efficiency: Ratio,
}

/// Sweeps the overlap fraction and reports how much of the Table 3
/// saving survives (§3.4's what-if).
///
/// # Errors
///
/// Propagates model errors.
pub fn overlap_savings_sweep(
    base: &ClusterConfig,
    improved: Proportionality,
    overlaps: &[Ratio],
) -> Result<Vec<OverlapSavingsPoint>> {
    overlaps
        .iter()
        .map(|&o| {
            let at_baseline = overlap_summary(base, o)?;
            let improved_cfg = base.clone().with_network_proportionality(improved);
            let at_improved = overlap_summary(&improved_cfg, o)?;
            Ok(OverlapSavingsPoint {
                overlap: o,
                baseline_power: at_baseline.average_power,
                improved_power: at_improved.average_power,
                savings: Ratio::new(1.0 - at_improved.average_power / at_baseline.average_power),
                baseline_efficiency: at_baseline.network_efficiency,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> Vec<OverlapSavingsPoint> {
        let overlaps: Vec<Ratio> = [0.0, 0.25, 0.5, 0.75, 1.0].map(Ratio::new).to_vec();
        overlap_savings_sweep(
            &ClusterConfig::paper_baseline(),
            Proportionality::COMPUTE,
            &overlaps,
        )
        .unwrap()
    }

    #[test]
    fn zero_overlap_matches_core_analysis() {
        let s = sweep();
        // At zero overlap this must equal the Table 3 cell: 8.8%.
        assert!(
            (s[0].savings.percent() - 8.8).abs() < 0.1,
            "savings {}",
            s[0].savings
        );
        let summary = overlap_summary(&ClusterConfig::paper_baseline(), Ratio::ZERO).unwrap();
        assert!((summary.average_power.as_mw() - 7.975).abs() < 0.01);
        assert!((summary.network_efficiency.percent() - 11.0).abs() < 0.2);
    }

    #[test]
    fn savings_survive_under_overlap() {
        // §3.4's claim: "there is still underutilization" — the savings
        // shrink with overlap but remain sizeable even at full overlap.
        let s = sweep();
        for w in s.windows(2) {
            assert!(
                w[1].savings <= w[0].savings,
                "savings should not grow with overlap: {w:?}"
            );
        }
        let full = s.last().unwrap();
        assert!(
            full.savings.percent() > 7.0,
            "even fully overlapped, savings {} stay sizeable",
            full.savings
        );
    }

    #[test]
    fn efficiency_improves_with_overlap_but_stays_low() {
        let s = sweep();
        for w in s.windows(2) {
            assert!(w[1].baseline_efficiency >= w[0].baseline_efficiency);
        }
        // Even at full overlap the network is busy only 10% of the
        // (shorter) iteration: efficiency ~12%.
        let full = s.last().unwrap();
        assert!(full.baseline_efficiency.percent() < 15.0);
    }

    #[test]
    fn overlap_shortens_iterations_and_raises_average_power() {
        // Overlap removes pure-idle GPU time, so average power rises —
        // the flip side of finishing faster.
        let none = overlap_summary(&ClusterConfig::paper_baseline(), Ratio::ZERO).unwrap();
        let full = overlap_summary(&ClusterConfig::paper_baseline(), Ratio::ONE).unwrap();
        assert!(full.average_power > none.average_power);
        assert!(full.schedule.total() < none.schedule.total());
    }

    #[test]
    fn network_idle_fraction_tracks_schedule() {
        let s = overlap_summary(&ClusterConfig::paper_baseline(), Ratio::new(0.5)).unwrap();
        let expected = s.schedule.network_busy_fraction().complement();
        assert!(s.network_idle_fraction.approx_eq(expected, 1e-12));
    }
}
