//! Total-cluster power savings from better network proportionality —
//! Table 3 of the paper.
//!
//! For each (bandwidth, proportionality) pair, the cluster's time-averaged
//! power is computed under the fixed-workload scaling rules (communication
//! time ∝ 1/bandwidth) and compared against the same bandwidth at the 10 %
//! baseline proportionality. The unit tests in this module check **all 25
//! cells** of the paper's Table 3 against the printed values.

use serde::{Deserialize, Serialize};

use npp_power::Proportionality;
use npp_units::{Gbps, Ratio, Watts};
use npp_workload::ScalingScenario;

use crate::cluster::{ClusterConfig, ClusterModel};
use crate::phases::phase_breakdown;
use crate::Result;

/// One cell of the savings table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SavingsCell {
    /// Per-GPU bandwidth of this row.
    pub bandwidth: Gbps,
    /// Network proportionality of this column.
    pub proportionality: Proportionality,
    /// Time-averaged cluster power at this configuration.
    pub average_power: Watts,
    /// Relative saving vs. the same bandwidth at the baseline
    /// proportionality.
    pub savings: Ratio,
}

/// The full savings sweep (Table 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SavingsTable {
    /// The reference proportionality savings are measured against.
    pub baseline_proportionality: Proportionality,
    /// The bandwidth of each row.
    pub bandwidths: Vec<Gbps>,
    /// The proportionality of each column.
    pub proportionalities: Vec<Proportionality>,
    /// `cells[row][col]`, aligned with the two vectors above.
    pub cells: Vec<Vec<SavingsCell>>,
}

impl SavingsTable {
    /// Looks up a cell by row/column indexes.
    pub fn cell(&self, row: usize, col: usize) -> Option<&SavingsCell> {
        self.cells.get(row)?.get(col)
    }
}

/// Time-averaged cluster power for a configuration under a scenario.
///
/// # Errors
///
/// Propagates model-construction and workload errors.
pub fn average_power(config: &ClusterConfig, scenario: ScalingScenario) -> Result<Watts> {
    let model = ClusterModel::new(config.clone())?;
    Ok(phase_breakdown(&model, scenario)?.average.total())
}

/// Computes a savings table over the given bandwidth × proportionality
/// grid, relative to `baseline_proportionality` at each bandwidth.
///
/// # Errors
///
/// Propagates model-construction and workload errors.
pub fn savings_table(
    base: &ClusterConfig,
    bandwidths: &[Gbps],
    proportionalities: &[Proportionality],
    baseline_proportionality: Proportionality,
    scenario: ScalingScenario,
) -> Result<SavingsTable> {
    let mut cells = Vec::with_capacity(bandwidths.len());
    for &bw in bandwidths {
        let ref_cfg = base
            .clone()
            .with_bandwidth(bw)
            .with_network_proportionality(baseline_proportionality);
        let ref_power = average_power(&ref_cfg, scenario)?;
        let mut row = Vec::with_capacity(proportionalities.len());
        for &p in proportionalities {
            let cfg = base
                .clone()
                .with_bandwidth(bw)
                .with_network_proportionality(p);
            let avg = average_power(&cfg, scenario)?;
            row.push(SavingsCell {
                bandwidth: bw,
                proportionality: p,
                average_power: avg,
                savings: Ratio::new(1.0 - avg / ref_power),
            });
        }
        cells.push(row);
    }
    Ok(SavingsTable {
        baseline_proportionality,
        bandwidths: bandwidths.to_vec(),
        proportionalities: proportionalities.to_vec(),
        cells,
    })
}

/// The exact grid of the paper's Table 3: bandwidths 100–1600 G ×
/// proportionalities {10, 20, 50, 85, 100} %, baseline 10 %.
///
/// # Errors
///
/// Propagates model-construction and workload errors.
pub fn paper_table3() -> Result<SavingsTable> {
    let bandwidths: Vec<Gbps> = [100.0, 200.0, 400.0, 800.0, 1600.0].map(Gbps::new).to_vec();
    let props: Vec<Proportionality> = [0.10, 0.20, 0.50, 0.85, 1.00]
        .into_iter()
        .map(|f| Proportionality::new(f).expect("static values are in range"))
        .collect();
    savings_table(
        &ClusterConfig::paper_baseline(),
        &bandwidths,
        &props,
        Proportionality::NETWORK_BASELINE,
        ScalingScenario::FixedWorkload,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Table 3, in percent, rows = 100..1600 G, columns =
    /// {10, 20, 50, 85, 100} % proportionality.
    const PAPER_TABLE3: [[f64; 5]; 5] = [
        [0.0, 0.3, 1.2, 2.3, 2.7],
        [0.0, 0.6, 2.5, 4.8, 5.7],
        [0.0, 1.2, 4.7, 8.8, 10.6],
        [0.0, 2.2, 8.7, 16.4, 19.7],
        [0.0, 3.9, 15.6, 29.3, 35.1],
    ];

    #[test]
    fn reproduces_every_cell_of_paper_table3() {
        let table = paper_table3().unwrap();
        for (r, row) in PAPER_TABLE3.iter().enumerate() {
            for (c, &expected_pct) in row.iter().enumerate() {
                let got = table.cell(r, c).unwrap().savings.percent();
                assert!(
                    (got - expected_pct).abs() < 0.1,
                    "row {} ({}G) col {} ({}): got {:.2}%, paper says {:.1}%",
                    r,
                    table.bandwidths[r].value(),
                    c,
                    table.proportionalities[c],
                    got,
                    expected_pct
                );
            }
        }
    }

    #[test]
    fn headline_claims() {
        // Abstract: ≈5% savings at 50% proportionality, ≈9% at 85% (400G).
        let table = paper_table3().unwrap();
        let at_50 = table.cell(2, 2).unwrap().savings.percent();
        let at_85 = table.cell(2, 3).unwrap().savings.percent();
        assert!((at_50 - 4.7).abs() < 0.1);
        assert!((at_85 - 8.8).abs() < 0.1);
    }

    #[test]
    fn savings_increase_with_proportionality() {
        let table = paper_table3().unwrap();
        for row in &table.cells {
            for w in row.windows(2) {
                assert!(w[1].savings >= w[0].savings);
            }
        }
    }

    #[test]
    fn savings_increase_with_bandwidth() {
        // Higher bandwidth → network is a larger power share → bigger
        // relative savings (the paper's Table 3 column trend).
        let table = paper_table3().unwrap();
        for c in 1..5 {
            for r in 1..5 {
                assert!(table.cell(r, c).unwrap().savings > table.cell(r - 1, c).unwrap().savings);
            }
        }
    }

    #[test]
    fn baseline_column_is_zero() {
        let table = paper_table3().unwrap();
        for row in &table.cells {
            assert!(row[0].savings.approx_eq(Ratio::ZERO, 1e-12));
        }
    }

    #[test]
    fn average_power_matches_phase_breakdown() {
        let cfg = ClusterConfig::paper_baseline();
        let p = average_power(&cfg, ScalingScenario::FixedWorkload).unwrap();
        assert!((p.as_mw() - 7.975).abs() < 0.01);
    }

    #[test]
    fn fixed_ratio_scenario_savings_are_bandwidth_insensitive_in_time() {
        // Under fixed comm ratio the phase weights are always 90/10, so
        // relative savings depend only on the network's power share.
        let bandwidths = vec![Gbps::new(400.0)];
        let props = vec![Proportionality::NETWORK_BASELINE, Proportionality::PERFECT];
        let t = savings_table(
            &ClusterConfig::paper_baseline(),
            &bandwidths,
            &props,
            Proportionality::NETWORK_BASELINE,
            ScalingScenario::FixedCommRatio,
        )
        .unwrap();
        // Same as fixed-workload at 400G (the reference point).
        assert!((t.cell(0, 1).unwrap().savings.percent() - 10.6).abs() < 0.1);
    }
}
