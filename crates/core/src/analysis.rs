//! The §3.2 operating-cost analysis: converting a proportionality
//! improvement into kilowatts and dollars.

use serde::{Deserialize, Serialize};

use npp_power::cost::{CostModel, SavingsBreakdown};
use npp_power::Proportionality;
use npp_units::{Ratio, Usd, Watts};
use npp_workload::ScalingScenario;

use crate::cluster::ClusterConfig;
use crate::savings::average_power;
use crate::Result;

/// The §3.2 result: what improving network proportionality is worth for a
/// given cluster, in power and money.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostAnalysis {
    /// Average cluster power before the improvement.
    pub baseline_power: Watts,
    /// Average cluster power after the improvement.
    pub improved_power: Watts,
    /// Relative saving.
    pub savings: Ratio,
    /// Annualized monetary breakdown.
    pub money: SavingsBreakdown,
}

impl CostAnalysis {
    /// Average power reduction.
    pub fn power_reduction(&self) -> Watts {
        self.baseline_power - self.improved_power
    }

    /// Total (electricity + cooling) annual saving.
    pub fn total_per_year(&self) -> Usd {
        self.money.total_per_year()
    }
}

/// Quantifies the §3.2 scenario: the given cluster moving from
/// `from` to `to` network proportionality, monetized with `costs`.
///
/// # Errors
///
/// Propagates model errors.
pub fn cost_of_proportionality(
    base: &ClusterConfig,
    from: Proportionality,
    to: Proportionality,
    costs: &CostModel,
    scenario: ScalingScenario,
) -> Result<CostAnalysis> {
    let baseline_power = average_power(&base.clone().with_network_proportionality(from), scenario)?;
    let improved_power = average_power(&base.clone().with_network_proportionality(to), scenario)?;
    let reduction = baseline_power - improved_power;
    Ok(CostAnalysis {
        baseline_power,
        improved_power,
        savings: Ratio::new(1.0 - improved_power / baseline_power),
        money: costs.savings(reduction),
    })
}

/// The exact §3.2 headline scenario: the 400 G baseline cluster improving
/// from 10 % to 50 % proportionality.
///
/// # Errors
///
/// Propagates model errors.
pub fn paper_cost_analysis() -> Result<CostAnalysis> {
    cost_of_proportionality(
        &ClusterConfig::paper_baseline(),
        Proportionality::NETWORK_BASELINE,
        Proportionality::new(0.50).expect("0.5 is in range"),
        &CostModel::paper_baseline(),
        ScalingScenario::FixedWorkload,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_headline_numbers() {
        // §3.2: "5% power savings convert to an average power draw
        // reduction of 365 kW ... results in $416k/year saved on the
        // electricity bill ... adding another $125k/year" for cooling.
        // Our model yields 4.70% and ≈375 kW; the paper's 365 kW implies
        // they rounded the savings percentage upstream. Bands below cover
        // both (documented in EXPERIMENTS.md).
        let a = paper_cost_analysis().unwrap();
        assert!(
            (a.savings.percent() - 4.7).abs() < 0.1,
            "savings {}",
            a.savings
        );
        let kw = a.power_reduction().as_kw();
        assert!((kw - 370.0).abs() < 10.0, "reduction {kw:.0} kW");
        let elec = a.money.electricity_per_year.as_thousands();
        assert!((elec - 425.0).abs() < 15.0, "electricity ${elec:.0}k");
        let cool = a.money.cooling_per_year.as_thousands();
        assert!((cool - 128.0).abs() < 6.0, "cooling ${cool:.0}k");
        assert!(a.total_per_year() > Usd::new(500_000.0));
    }

    #[test]
    fn no_improvement_no_savings() {
        let a = cost_of_proportionality(
            &ClusterConfig::paper_baseline(),
            Proportionality::NETWORK_BASELINE,
            Proportionality::NETWORK_BASELINE,
            &CostModel::paper_baseline(),
            ScalingScenario::FixedWorkload,
        )
        .unwrap();
        assert!(a.savings.approx_eq(Ratio::ZERO, 1e-12));
        assert!(a.power_reduction().approx_eq(Watts::ZERO, 1e-6));
    }

    #[test]
    fn savings_scale_with_target_proportionality() {
        let to_85 = cost_of_proportionality(
            &ClusterConfig::paper_baseline(),
            Proportionality::NETWORK_BASELINE,
            Proportionality::COMPUTE,
            &CostModel::paper_baseline(),
            ScalingScenario::FixedWorkload,
        )
        .unwrap();
        let to_50 = paper_cost_analysis().unwrap();
        assert!(to_85.power_reduction() > to_50.power_reduction());
        // §3.2 / abstract: 85% proportionality saves almost 9%.
        assert!((to_85.savings.percent() - 8.8).abs() < 0.1);
    }
}
