//! Parameter sensitivity of the paper's headline result.
//!
//! The model behind Table 3 rests on a handful of published-but-uncertain
//! constants (switch power, NIC/transceiver powers, the communication
//! ratio, the server overhead, transceiver counting). This module
//! perturbs each by ±`delta` and reports how the headline cell — the
//! 400 G / 85 % savings the abstract quotes as "close to 9 %" — moves,
//! plus the elasticity `d(ln savings)/d(ln param)`. A tornado-style
//! ranking shows which inputs matter and which are noise.

use serde::{Deserialize, Serialize};

use npp_power::Proportionality;
use npp_units::{Ratio, Seconds};
use npp_workload::{IterationModel, ScalingScenario};

use crate::cluster::ClusterConfig;
use crate::savings::average_power;
use crate::Result;

/// The perturbable parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Parameter {
    /// The workload's communication ratio (§2.2's assumed 10 %).
    CommRatio,
    /// Per-switch max power (Table 1's 750 W).
    SwitchPower,
    /// NIC + transceiver powers (Table 2), scaled jointly.
    InterfacePower,
    /// Optical transceivers per inter-switch link (the paper's 2).
    TransceiversPerLink,
    /// Per-GPU max power incl. server share (§2.3.1's 500 W).
    GpuPower,
    /// Compute-side proportionality (§2.3.1's 85 %).
    ComputeProportionality,
}

impl Parameter {
    /// All parameters, in the order the tornado table reports them.
    pub fn all() -> [Parameter; 6] {
        [
            Parameter::CommRatio,
            Parameter::SwitchPower,
            Parameter::InterfacePower,
            Parameter::TransceiversPerLink,
            Parameter::GpuPower,
            Parameter::ComputeProportionality,
        ]
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Parameter::CommRatio => "communication ratio",
            Parameter::SwitchPower => "switch power",
            Parameter::InterfacePower => "NIC+transceiver power",
            Parameter::TransceiversPerLink => "transceivers per link",
            Parameter::GpuPower => "GPU+server power",
            Parameter::ComputeProportionality => "compute proportionality",
        }
    }

    /// Applies a relative perturbation to the parameter in a config.
    fn apply(&self, cfg: &mut ClusterConfig, factor: f64) -> Result<()> {
        match self {
            Parameter::CommRatio => {
                let ratio = (cfg.workload.comm_ratio().fraction() * factor).clamp(1e-6, 0.99);
                cfg.workload = IterationModel::from_comm_ratio(
                    ratio,
                    Seconds::new(1.0),
                    cfg.workload.reference_gpus,
                    cfg.workload.reference_bandwidth,
                )?;
            }
            Parameter::SwitchPower => {
                cfg.devices.switch_max = cfg.devices.switch_max * factor;
            }
            Parameter::InterfacePower => {
                cfg.devices.interface_power_scale *= factor;
            }
            Parameter::TransceiversPerLink => {
                cfg.transceivers_per_link *= factor;
            }
            Parameter::GpuPower => {
                cfg.devices.gpu_max = cfg.devices.gpu_max * factor;
            }
            Parameter::ComputeProportionality => {
                let p = (cfg.devices.compute_proportionality.fraction() * factor).clamp(0.0, 1.0);
                cfg.devices.compute_proportionality =
                    Proportionality::new(p).expect("clamped into range");
            }
        }
        Ok(())
    }
}

/// One row of the sensitivity table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityRow {
    /// Which parameter was perturbed.
    pub parameter: String,
    /// Relative perturbation applied (e.g. 0.1 = ±10 %).
    pub delta: f64,
    /// Headline savings with the parameter decreased.
    pub savings_low: Ratio,
    /// Headline savings at the baseline.
    pub savings_base: Ratio,
    /// Headline savings with the parameter increased.
    pub savings_high: Ratio,
    /// Central-difference elasticity `d(ln s)/d(ln p)`.
    pub elasticity: f64,
}

impl SensitivityRow {
    /// Total swing of the headline across the ± perturbation, in
    /// percentage points.
    pub fn swing_pp(&self) -> f64 {
        (self.savings_high.percent() - self.savings_low.percent()).abs()
    }
}

/// The headline metric: relative savings of moving the network from the
/// 10 % baseline to `target` proportionality for this configuration.
fn headline(cfg: &ClusterConfig, target: Proportionality) -> Result<Ratio> {
    let base = average_power(
        &cfg.clone()
            .with_network_proportionality(Proportionality::NETWORK_BASELINE),
        ScalingScenario::FixedWorkload,
    )?;
    let improved = average_power(
        &cfg.clone().with_network_proportionality(target),
        ScalingScenario::FixedWorkload,
    )?;
    Ok(Ratio::new(1.0 - improved / base))
}

/// Computes the sensitivity table for the given perturbation size
/// (`delta = 0.1` ⇒ ±10 %), targeting the 85 %-proportionality headline.
///
/// # Errors
///
/// Propagates model errors.
pub fn headline_sensitivity(base: &ClusterConfig, delta: f64) -> Result<Vec<SensitivityRow>> {
    let target = Proportionality::COMPUTE;
    let s_base = headline(base, target)?;
    let mut rows = Vec::new();
    for p in Parameter::all() {
        let mut low_cfg = base.clone();
        p.apply(&mut low_cfg, 1.0 - delta)?;
        let mut high_cfg = base.clone();
        p.apply(&mut high_cfg, 1.0 + delta)?;
        let s_low = headline(&low_cfg, target)?;
        let s_high = headline(&high_cfg, target)?;
        let elasticity = if s_base.fraction() > 0.0 {
            ((s_high.fraction() - s_low.fraction()) / s_base.fraction()) / (2.0 * delta)
        } else {
            0.0
        };
        rows.push(SensitivityRow {
            parameter: p.name().to_string(),
            delta,
            savings_low: s_low,
            savings_base: s_base,
            savings_high: s_high,
            elasticity,
        });
    }
    // Tornado order: biggest swing first.
    rows.sort_by(|a, b| b.swing_pp().total_cmp(&a.swing_pp()));
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<SensitivityRow> {
        headline_sensitivity(&ClusterConfig::paper_baseline(), 0.10).unwrap()
    }

    #[test]
    fn baseline_headline_is_the_papers_8_8_percent() {
        let r = rows();
        assert!((r[0].savings_base.percent() - 8.8).abs() < 0.1);
    }

    #[test]
    fn every_row_brackets_the_baseline_or_is_monotone() {
        for row in rows() {
            let (lo, hi) = (
                row.savings_low.percent().min(row.savings_high.percent()),
                row.savings_low.percent().max(row.savings_high.percent()),
            );
            assert!(
                lo <= row.savings_base.percent() + 1e-9 && row.savings_base.percent() <= hi + 1e-9,
                "{}: {lo} .. {} .. {hi}",
                row.parameter,
                row.savings_base.percent()
            );
        }
    }

    #[test]
    fn network_device_powers_raise_savings_gpu_power_lowers_them() {
        let r = rows();
        let by = |n: &str| r.iter().find(|x| x.parameter == n).unwrap();
        // More network power → proportionality worth more.
        assert!(by("switch power").elasticity > 0.0);
        assert!(by("NIC+transceiver power").elasticity > 0.0);
        assert!(by("transceivers per link").elasticity > 0.0);
        // More GPU power → network is a smaller share → worth less.
        assert!(by("GPU+server power").elasticity < 0.0);
    }

    #[test]
    fn comm_ratio_matters_less_than_device_powers() {
        // The savings come mostly from the *computation* phase (the
        // network idles 90% of the time); nudging the comm ratio barely
        // moves the headline, while the network device powers move it
        // almost one-for-one.
        let r = rows();
        let by = |n: &str| r.iter().find(|x| x.parameter == n).unwrap();
        assert!(by("communication ratio").elasticity.abs() < by("switch power").elasticity.abs());
    }

    #[test]
    fn tornado_is_sorted_by_swing() {
        let r = rows();
        for w in r.windows(2) {
            assert!(w[0].swing_pp() >= w[1].swing_pp() - 1e-12);
        }
    }

    #[test]
    fn interface_power_scale_actually_scales() {
        use crate::cluster::ClusterModel;
        let mut cfg = ClusterConfig::paper_baseline();
        cfg.devices.interface_power_scale = 2.0;
        let doubled = ClusterModel::new(cfg).unwrap();
        let base = ClusterModel::new(ClusterConfig::paper_baseline()).unwrap();
        let b = base.network_breakdown();
        let d = doubled.network_breakdown();
        assert!(d.nics.approx_eq(b.nics * 2.0, 1e-6));
        assert!(d.transceivers.approx_eq(b.transceivers * 2.0, 1e-6));
        assert!(d.switches.approx_eq(b.switches, 1e-6));
    }
}
