//! Per-phase power breakdown and efficiencies — §3.1 / Figure 2.

use serde::{Deserialize, Serialize};

use npp_power::energy::{PowerProfile, PowerSegment};
use npp_units::{Ratio, Seconds, Watts};
use npp_workload::{Iteration, ScalingScenario};

use crate::cluster::ClusterModel;
use crate::Result;

/// Power draw of each component class during one phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhasePower {
    /// Phase duration.
    pub duration: Seconds,
    /// GPU + server draw.
    pub gpu: Watts,
    /// All switches.
    pub switches: Watts,
    /// All NICs.
    pub nics: Watts,
    /// All transceivers.
    pub transceivers: Watts,
}

impl PhasePower {
    /// Network total (switches + NICs + transceivers).
    pub fn network(&self) -> Watts {
        self.switches + self.nics + self.transceivers
    }

    /// Cluster total.
    pub fn total(&self) -> Watts {
        self.gpu + self.network()
    }

    /// GPU share of the total (the number Figure 2a labels).
    pub fn gpu_share(&self) -> Ratio {
        Ratio::new(self.gpu / self.total())
    }

    /// Network share of the total.
    pub fn network_share(&self) -> Ratio {
        Ratio::new(self.network() / self.total())
    }
}

/// The full Figure 2 dataset: computation, communication, and
/// time-weighted average rows, plus the §3.1 energy efficiencies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// Computation phase (GPUs busy, network idle).
    pub computation: PhasePower,
    /// Communication phase (network busy, GPUs idle).
    pub communication: PhasePower,
    /// Time-weighted average over the iteration.
    pub average: PhasePower,
    /// Network energy efficiency over the iteration (§3.1: 11 % for the
    /// baseline).
    pub network_efficiency: Ratio,
    /// Compute energy efficiency over the iteration.
    pub compute_efficiency: Ratio,
}

/// Computes the Figure 2 breakdown for a cluster under its configured
/// workload and scenario.
///
/// During computation the network draws idle power (per-device
/// `(1 − p) × max`); during communication the GPUs draw idle power. The
/// average row is weighted by phase durations.
///
/// # Errors
///
/// Propagates workload scaling errors.
pub fn phase_breakdown(model: &ClusterModel, scenario: ScalingScenario) -> Result<PhaseBreakdown> {
    let cfg = model.config();
    let iter = cfg.workload.iteration(cfg.gpus, cfg.bandwidth, scenario)?;
    Ok(breakdown_for_iteration(model, &iter))
}

/// Same as [`phase_breakdown`] but with an explicit iteration (used by the
/// speedup solvers, which construct non-baseline iterations).
pub fn breakdown_for_iteration(model: &ClusterModel, iter: &Iteration) -> PhaseBreakdown {
    let idle_frac = 1.0 - model.config().network_proportionality().fraction();
    let b = model.network_breakdown();

    let computation = PhasePower {
        duration: iter.compute,
        gpu: model.compute_max_power(),
        switches: b.switches * idle_frac,
        nics: b.nics * idle_frac,
        transceivers: b.transceivers * idle_frac,
    };
    let communication = PhasePower {
        duration: iter.comm,
        gpu: model.compute_idle_power(),
        switches: b.switches,
        nics: b.nics,
        transceivers: b.transceivers,
    };

    let total = iter.total().value();
    let (wc, wm) = if total > 0.0 {
        (iter.compute.value() / total, iter.comm.value() / total)
    } else {
        (0.0, 0.0)
    };
    let average = PhasePower {
        duration: iter.total(),
        gpu: computation.gpu * wc + communication.gpu * wm,
        switches: computation.switches * wc + communication.switches * wm,
        nics: computation.nics * wc + communication.nics * wm,
        transceivers: computation.transceivers * wc + communication.transceivers * wm,
    };

    // Efficiencies via the §3.1 definition: useful energy / consumed.
    let net_profile = PowerProfile::new()
        .with(PowerSegment::idle(
            "computation",
            iter.compute,
            computation.network(),
        ))
        .with(PowerSegment::busy(
            "communication",
            iter.comm,
            communication.network(),
        ));
    let gpu_profile = PowerProfile::new()
        .with(PowerSegment::busy(
            "computation",
            iter.compute,
            computation.gpu,
        ))
        .with(PowerSegment::idle(
            "communication",
            iter.comm,
            communication.gpu,
        ));

    PhaseBreakdown {
        computation,
        communication,
        average,
        network_efficiency: net_profile.efficiency(),
        compute_efficiency: gpu_profile.efficiency(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;

    fn baseline() -> PhaseBreakdown {
        let m = ClusterModel::new(ClusterConfig::paper_baseline()).unwrap();
        phase_breakdown(&m, ScalingScenario::FixedWorkload).unwrap()
    }

    #[test]
    fn figure2a_computation_phase_is_compute_dominated() {
        let b = baseline();
        // With the network idling at 90% of its max, the GPU share during
        // computation is ≈ 89% (the paper's figure labels 88.1%, which
        // corresponds to rendering the network at max; see EXPERIMENTS.md).
        let share = b.computation.gpu_share().percent();
        assert!((share - 89.1).abs() < 0.3, "gpu share {share:.2}%");
    }

    #[test]
    fn figure2a_communication_phase_is_roughly_50_50() {
        // §3.1: "The split with network power is more even during the
        // communication phase, close to 50/50."
        let b = baseline();
        let share = b.communication.network_share().percent();
        assert!((share - 47.5).abs() < 1.0, "network share {share:.2}%");
        assert!(share > 40.0 && share < 55.0);
    }

    #[test]
    fn figure2b_absolute_powers() {
        let b = baseline();
        // Computation: 7.68 MW compute + 0.937 MW network ≈ 8.62 MW.
        assert!((b.computation.total().as_mw() - 8.617).abs() < 0.01);
        // Communication: 1.152 + 1.041 ≈ 2.19 MW.
        assert!((b.communication.total().as_mw() - 2.193).abs() < 0.01);
        // Average ≈ 7.97 MW.
        assert!((b.average.total().as_mw() - 7.975).abs() < 0.01);
    }

    #[test]
    fn network_is_12_percent_of_average() {
        // §3.1: "the network accounts for a not-so-small 12% of the
        // cluster's energy demand".
        let b = baseline();
        let share = b.average.network_share().percent();
        assert!((share - 11.9).abs() < 0.3, "network share {share:.2}%");
    }

    #[test]
    fn network_efficiency_is_11_percent() {
        // §3.1: "consumed with an appallingly low efficiency of 11%".
        let b = baseline();
        let eff = b.network_efficiency.percent();
        assert!((eff - 11.0).abs() < 0.15, "network efficiency {eff:.2}%");
    }

    #[test]
    fn compute_efficiency_is_high() {
        // Figure 2b: compute efficiency ≈ 98% (flag marker near full).
        let b = baseline();
        let eff = b.compute_efficiency.percent();
        assert!((eff - 98.4).abs() < 0.3, "compute efficiency {eff:.2}%");
    }

    #[test]
    fn average_is_convex_combination() {
        let b = baseline();
        let avg = b.average.total().value();
        let lo = b
            .communication
            .total()
            .value()
            .min(b.computation.total().value());
        let hi = b
            .communication
            .total()
            .value()
            .max(b.computation.total().value());
        assert!(avg >= lo && avg <= hi);
        // 90/10 weighting exactly.
        let expected = 0.9 * b.computation.total().value() + 0.1 * b.communication.total().value();
        assert!((avg - expected).abs() < 1e-6);
    }

    #[test]
    fn perfect_proportionality_zeroes_idle_network_draw() {
        let m = ClusterModel::new(
            ClusterConfig::paper_baseline()
                .with_network_proportionality(npp_power::Proportionality::PERFECT),
        )
        .unwrap();
        let b = phase_breakdown(&m, ScalingScenario::FixedWorkload).unwrap();
        assert_eq!(b.computation.network(), Watts::ZERO);
        assert!(b.network_efficiency.approx_eq(Ratio::ONE, 1e-9));
    }

    #[test]
    fn fixed_ratio_scenario_matches_baseline_at_reference_point() {
        // At the reference bandwidth the two scenarios coincide.
        let m = ClusterModel::new(ClusterConfig::paper_baseline()).unwrap();
        let a = phase_breakdown(&m, ScalingScenario::FixedWorkload).unwrap();
        let b = phase_breakdown(&m, ScalingScenario::FixedCommRatio).unwrap();
        assert!(a.average.total().approx_eq(b.average.total(), 1e-6));
    }
}
