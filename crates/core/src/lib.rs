//! # npp-core
//!
//! The what-if engine of *"It Is Time to Address Network Power
//! Proportionality"* (HotNets '25) — the paper's primary contribution.
//!
//! Given a cluster configuration (GPU count, per-GPU bandwidth, device
//! power database, network proportionality), this crate computes:
//!
//! - the full power inventory and per-phase breakdown of §3.1 /
//!   Figure 2 ([`phases`]);
//! - the total-cluster power savings from better network proportionality —
//!   Table 3 ([`savings`]);
//! - the fixed-power-budget performance speedups of §3.3 — Figures 3
//!   and 4 ([`speedup`]);
//! - the §3.2 operating-cost conversion ([`analysis`]).
//!
//! ## Model fidelity
//!
//! The model was reverse-engineered from §2 and validated against every
//! number the paper reports: all 25 cells of Table 3 (to the printed
//! decimal), the 12 % average network share, the 11 % network energy
//! efficiency, and the ≈50/50 communication-phase split. The validation
//! lives in this crate's test suite (`tests` module of [`savings`] and
//! [`phases`]).
//!
//! ## Example
//!
//! ```
//! use npp_core::cluster::{ClusterConfig, ClusterModel};
//! use npp_power::Proportionality;
//!
//! let baseline = ClusterModel::new(ClusterConfig::paper_baseline()).unwrap();
//! // The network draws ≈ 1.04 MW at max — ~12% of the cluster average.
//! let net = baseline.network_max_power();
//! assert!((net.as_mw() - 1.041).abs() < 0.01);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod cluster;
pub mod overlap;
pub mod phases;
pub mod savings;
pub mod scaleout;
pub mod sensitivity;
pub mod speedup;

pub use cluster::{ClusterConfig, ClusterModel, NetworkInventory};

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Propagated from the power crate.
    Power(npp_power::PowerError),
    /// Propagated from the topology crate.
    Topology(npp_topology::TopologyError),
    /// Propagated from the workload crate.
    Workload(npp_workload::WorkloadError),
    /// A numeric solver failed to converge.
    SolverFailed(String),
    /// An invalid configuration value.
    InvalidConfig(String),
}

impl core::fmt::Display for CoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CoreError::Power(e) => write!(f, "power model: {e}"),
            CoreError::Topology(e) => write!(f, "topology model: {e}"),
            CoreError::Workload(e) => write!(f, "workload model: {e}"),
            CoreError::SolverFailed(msg) => write!(f, "solver failed: {msg}"),
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Power(e) => Some(e),
            CoreError::Topology(e) => Some(e),
            CoreError::Workload(e) => Some(e),
            _ => None,
        }
    }
}

impl From<npp_power::PowerError> for CoreError {
    fn from(e: npp_power::PowerError) -> Self {
        CoreError::Power(e)
    }
}

impl From<npp_topology::TopologyError> for CoreError {
    fn from(e: npp_topology::TopologyError) -> Self {
        CoreError::Topology(e)
    }
}

impl From<npp_workload::WorkloadError> for CoreError {
    fn from(e: npp_workload::WorkloadError) -> Self {
        CoreError::Workload(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
