//! Property-based tests for the mechanism simulations: conservation laws
//! and safety invariants that must hold for *any* policy configuration
//! and workload within the supported envelope.

use npp_mechanisms::governor::{run_governor, GovernorConfig};
use npp_mechanisms::pipeline_park::{simulate_parking, ParkConfig};
use npp_mechanisms::rate_adapt::{simulate_rate_adaptation, RateAdaptConfig};
use npp_simnet::sources::{CbrSource, OnOffSource, TrafficSource};
use npp_simnet::switchsim::SwitchParams;
use npp_simnet::SimTime;
use npp_units::{Gbps, Ratio, Seconds};
use npp_workload::trace::MlPhaseTrace;
use proptest::prelude::*;

/// A bounded random on/off source.
fn source(period_us: u64, duty_pct: u64, rate_tbps: f64, horizon: SimTime) -> impl TrafficSource {
    let period_ns = period_us * 1_000;
    let off_ns = period_ns * (100 - duty_pct) / 100;
    OnOffSource::new(
        period_ns,
        off_ns,
        Gbps::from_tbps(rate_tbps),
        9_000,
        0,
        horizon,
    )
    .expect("generated parameters are valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Rate adaptation never consumes more energy than the all-on switch
    /// and never less than the idle floor, for any controller tuning.
    #[test]
    fn rate_adaptation_energy_is_bounded(
        interval_us in 10u64..500,
        target in 0.5..1.0f64,
        min_freq in 0.05..0.9f64,
        per_pipeline in any::<bool>(),
        duty in 1u64..60,
        rate in 0.5..10.0f64,
    ) {
        let horizon = SimTime::from_millis(4);
        let cfg = RateAdaptConfig {
            control_interval_ns: interval_us * 1_000,
            target_utilization: target,
            min_freq,
            per_pipeline,
        };
        let params = SwitchParams::paper_51t2();
        let mut src = source(500, duty, rate, horizon);
        let r = simulate_rate_adaptation(params, &cfg, &mut src, horizon).unwrap();
        prop_assert!(r.energy <= r.energy_all_on + npp_units::Joules::new(1e-9));
        // Idle floor: overhead + all pipelines at min_freq.
        let floor = (params.overhead_power
            + params.pipeline_power.at_freq(min_freq) * params.pipelines as f64)
            * horizon.as_seconds();
        prop_assert!(
            r.energy.value() >= floor.value() - 1e-6,
            "energy {} below floor {}", r.energy, floor
        );
        prop_assert!((0.0..=1.0).contains(&r.loss_rate));
    }

    /// Parking conserves packets: offered = delivered + dropped, and the
    /// energy stays within [one-pipeline floor, all-on].
    #[test]
    fn parking_conserves_packets_and_bounds_energy(
        interval_us in 20u64..400,
        standby in 0usize..3,
        duty in 1u64..60,
        rate in 0.5..10.0f64,
    ) {
        let horizon = SimTime::from_millis(4);
        let cfg = ParkConfig {
            control_interval_ns: interval_us * 1_000,
            standby,
            ..ParkConfig::reactive()
        };
        let params = SwitchParams::paper_51t2();
        let mut src = source(500, duty, rate, horizon);
        let r = simulate_parking(params, &cfg, &mut src, horizon).unwrap();
        prop_assert!(r.energy <= r.energy_all_on + npp_units::Joules::new(1e-9));
        let floor = (params.overhead_power + params.pipeline_power.at_freq(1.0))
            * horizon.as_seconds();
        // The first control interval runs all-on, so the floor is a
        // strict lower bound.
        prop_assert!(r.energy.value() >= floor.value() * 0.9);
        prop_assert!((0.0..=1.0).contains(&r.loss_rate));
    }

    /// The governor's state residencies account for the whole horizon,
    /// and its energy sits between the deepest state and C0.
    #[test]
    fn governor_residency_partitions_time(
        interval_ms in 1u64..20,
        headroom in 1.0..2.0f64,
        patience in 1usize..10,
        compute_ms in 10u64..200,
        comm_ms in 1u64..50,
    ) {
        let trace = MlPhaseTrace {
            compute: Seconds::from_millis(compute_ms as f64),
            comm: Seconds::from_millis(comm_ms as f64),
            peak: Ratio::ONE,
        };
        let horizon = Seconds::new(1.0);
        let cfg = GovernorConfig {
            interval: Seconds::from_millis(interval_ms as f64),
            headroom,
            patience,
            ..GovernorConfig::default()
        };
        let r = run_governor(&trace, horizon, &cfg).unwrap();
        let total: f64 = r.residency.iter().map(|(_, s)| s.value()).sum();
        let steps = (horizon.value() / cfg.interval.value()).ceil();
        prop_assert!((total - steps * cfg.interval.value()).abs() < 1e-9);
        prop_assert!(r.energy <= r.energy_c0);
        prop_assert!(r.savings.fraction() >= -1e-12);
    }

    /// EEE never *increases* energy relative to always-on, whatever the
    /// traffic (the state machine only ever substitutes LPI for active).
    #[test]
    fn eee_never_wastes_energy(
        rate_gbps in 0.001..9.0f64,
        packet in 64u64..9000,
        coalesce_us in 0u64..100,
    ) {
        use npp_mechanisms::eee::{simulate_eee, EeeParams};
        let horizon = SimTime::from_millis(50);
        let params = EeeParams::ten_gbase_t().with_coalescing(coalesce_us * 1_000);
        let mut src =
            CbrSource::new(Gbps::new(rate_gbps), packet, 0, SimTime::ZERO, horizon).unwrap();
        let r = simulate_eee(&params, &mut src, horizon).unwrap();
        prop_assert!(r.energy <= r.energy_always_on + npp_units::Joules::new(1e-12));
        prop_assert!(r.lpi_fraction.fraction() >= 0.0);
        prop_assert!(r.lpi_fraction.fraction() <= 1.0 + 1e-12);
        prop_assert!(r.mean_added_latency_ns >= 0.0);
    }
}
