//! An automatic C-state governor (§4.1): "which knobs should be exposed
//! to the user, and which should be dialed automatically?"
//!
//! The paper proposes a catalog of pre-defined low-power modes (the
//! networking analogue of CPU C-states) so that operators need no
//! knowledge of the ASIC internals. This module supplies the missing
//! piece: a governor that dials those modes automatically from observed
//! load, with hysteresis against mode thrashing and an exit-latency
//! budget that bounds how deep the governor may go for
//! latency-sensitive deployments.

use serde::{Deserialize, Serialize};

use npp_power::gating::{switch_component_model, switch_cstates, CState};
use npp_units::{Joules, Ratio, Seconds, Watts};
use npp_workload::trace::LoadTrace;

use crate::{MechanismError, Result};

/// A C-state annotated with the capacity it can still serve and the time
/// to exit back to full speed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GovernedState {
    /// The underlying mode.
    pub cstate: CState,
    /// Fraction of line rate this mode can still forward.
    pub capacity: Ratio,
    /// Time to return to C0.
    pub exit_latency: Seconds,
    /// Device power in this mode.
    pub power: Watts,
}

/// The default governed catalog for the paper-calibrated switch:
/// capacities follow the gated pipeline/frequency configuration and exit
/// latencies grow with depth (clock relock ≪ power-gate exit).
///
/// # Errors
///
/// Propagates gating errors (none occur for the static catalog).
pub fn governed_catalog() -> Result<Vec<GovernedState>> {
    let mut device = switch_component_model();
    let specs = [
        // (capacity, exit latency µs)
        (1.00, 0.0),   // C0
        (0.60, 10.0),  // C1-rate: all pipelines at 60% clock
        (0.50, 100.0), // C2-park2: two pipelines gated
        (0.25, 150.0), // C3-deep: one pipeline left
    ];
    switch_cstates()
        .into_iter()
        .zip(specs)
        .map(|(cstate, (cap, exit_us))| {
            cstate.apply(&mut device).map_err(MechanismError::Power)?;
            Ok(GovernedState {
                power: device.power(),
                cstate,
                capacity: Ratio::new(cap),
                exit_latency: Seconds::from_micros(exit_us),
            })
        })
        .collect()
}

/// Governor tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GovernorConfig {
    /// How often the governor re-evaluates.
    pub interval: Seconds,
    /// Headroom: the chosen state must have `capacity ≥ load × headroom`.
    pub headroom: f64,
    /// Consecutive intervals of lower load required before going deeper
    /// (hysteresis against thrashing).
    pub patience: usize,
    /// Maximum exit latency the deployment tolerates; deeper states are
    /// off-limits.
    pub exit_latency_budget: Seconds,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        Self {
            interval: Seconds::from_millis(1.0),
            headroom: 1.25,
            patience: 3,
            exit_latency_budget: Seconds::from_micros(200.0),
        }
    }
}

/// Governor run summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GovernorReport {
    /// Time spent in each state, aligned with [`governed_catalog`].
    pub residency: Vec<(String, Seconds)>,
    /// State transitions performed.
    pub transitions: usize,
    /// Energy with the governor active.
    pub energy: Joules,
    /// Energy pinned at C0.
    pub energy_c0: Joules,
    /// Relative saving.
    pub savings: Ratio,
    /// Intervals where the load exceeded the active state's capacity
    /// before the governor could react (the under-provisioning risk).
    pub capacity_misses: usize,
}

/// Runs the governor over a load trace for `horizon`.
///
/// Per interval: measure the load; if it needs a shallower state, exit
/// immediately (safety first); if a deeper state would suffice for
/// `patience` consecutive intervals, enter it — provided its exit latency
/// fits the budget.
///
/// # Errors
///
/// Rejects degenerate configurations.
pub fn run_governor(
    trace: &dyn LoadTrace,
    horizon: Seconds,
    cfg: &GovernorConfig,
) -> Result<GovernorReport> {
    if horizon.value() <= 0.0 || cfg.interval.value() <= 0.0 {
        return Err(MechanismError::Config(
            "horizon and interval must be positive".into(),
        ));
    }
    if cfg.headroom < 1.0 {
        return Err(MechanismError::Config(format!(
            "headroom {} must be >= 1",
            cfg.headroom
        )));
    }
    let catalog = governed_catalog()?;
    let allowed: Vec<usize> = catalog
        .iter()
        .enumerate()
        .filter(|(_, s)| s.exit_latency <= cfg.exit_latency_budget)
        .map(|(i, _)| i)
        .collect();
    if allowed.is_empty() {
        return Err(MechanismError::Config(
            "no state fits the exit-latency budget".into(),
        ));
    }

    let steps = (horizon.value() / cfg.interval.value()).ceil() as usize;
    let mut residency = vec![0.0f64; catalog.len()];
    let mut state = 0usize; // C0
    let mut deeper_streak = 0usize;
    let mut transitions = 0usize;
    let mut energy = 0.0f64;
    let mut misses = 0usize;

    for step in 0..steps {
        let t = cfg.interval * step as f64;
        let load = trace.utilization(t).fraction();
        let required = load * cfg.headroom;

        // The deepest allowed state that still satisfies the demand.
        let target = allowed
            .iter()
            .copied()
            .filter(|&i| {
                catalog
                    .get(i)
                    .map(|s| s.capacity.fraction() >= required.min(1.0))
                    .unwrap_or(false)
            })
            .max()
            .unwrap_or(0);

        let active_capacity = catalog
            .get(state)
            .map(|s| s.capacity.fraction())
            .unwrap_or(1.0);
        if load > active_capacity + 1e-12 {
            misses += 1;
            npp_telemetry::trace_event!("governor.capacity_miss", seconds_to_ns(t), load);
        }

        if target < state {
            // Demand rose: exit immediately.
            state = target;
            transitions += 1;
            deeper_streak = 0;
            npp_telemetry::trace_counter!("governor.state", seconds_to_ns(t), 0, state as f64);
        } else if target > state {
            deeper_streak += 1;
            if deeper_streak >= cfg.patience {
                state = target;
                transitions += 1;
                deeper_streak = 0;
                npp_telemetry::trace_counter!("governor.state", seconds_to_ns(t), 0, state as f64);
            }
        } else {
            deeper_streak = 0;
        }

        if let Some(r) = residency.get_mut(state) {
            *r += cfg.interval.value();
        }
        let active_power = catalog.get(state).map(|s| s.power.value()).unwrap_or(0.0);
        energy += active_power * cfg.interval.value();
    }
    npp_telemetry::metrics::counter_add("governor.transitions", transitions as u64);
    npp_telemetry::metrics::counter_add("governor.capacity_misses", misses as u64);

    let total_time: f64 = residency.iter().sum();
    let energy_c0 = catalog.first().map(|s| s.power.value()).unwrap_or(0.0) * total_time;
    Ok(GovernorReport {
        residency: catalog
            .iter()
            .zip(&residency)
            .map(|(s, &r)| (s.cstate.name.clone(), Seconds::new(r)))
            .collect(),
        transitions,
        energy: Joules::new(energy),
        energy_c0: Joules::new(energy_c0),
        savings: Ratio::new(1.0 - energy / energy_c0),
        capacity_misses: misses,
    })
}

/// Governor control time (seconds) as integer sim nanoseconds, for trace
/// records.
fn seconds_to_ns(t: Seconds) -> u64 {
    (t.value() * 1e9).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use npp_units::Ratio;
    use npp_workload::trace::MlPhaseTrace;

    /// A constant-load trace.
    struct Flat(f64);
    impl LoadTrace for Flat {
        fn utilization(&self, _t: Seconds) -> Ratio {
            Ratio::new(self.0)
        }
    }

    #[test]
    fn catalog_is_ordered_by_depth() {
        let cat = governed_catalog().unwrap();
        assert_eq!(cat.len(), 4);
        for w in cat.windows(2) {
            assert!(w[1].power < w[0].power, "power must fall with depth");
            assert!(w[1].capacity <= w[0].capacity);
            assert!(w[1].exit_latency >= w[0].exit_latency);
        }
        assert!(cat[0].power.approx_eq(Watts::new(750.0), 1e-9));
    }

    #[test]
    fn idle_device_sinks_to_the_deepest_allowed_state() {
        let r = run_governor(&Flat(0.0), Seconds::new(1.0), &GovernorConfig::default()).unwrap();
        // After the patience window everything is C3.
        let c3 = &r.residency[3];
        assert!(c3.1.value() > 0.99, "C3 residency {}", c3.1);
        assert!(r.savings.fraction() > 0.6, "savings {}", r.savings);
        assert_eq!(r.capacity_misses, 0);
        assert_eq!(r.transitions, 1);
    }

    #[test]
    fn busy_device_stays_at_c0() {
        let r = run_governor(&Flat(0.9), Seconds::new(1.0), &GovernorConfig::default()).unwrap();
        assert!(r.residency[0].1.value() > 0.99);
        assert!(r.savings.approx_eq(Ratio::ZERO, 1e-9));
        assert_eq!(r.transitions, 0);
    }

    #[test]
    fn ml_phases_cycle_the_states() {
        // 10% duty bursts: deep during compute, shallow for the bursts.
        let trace = MlPhaseTrace {
            compute: Seconds::from_millis(90.0),
            comm: Seconds::from_millis(10.0),
            peak: Ratio::ONE,
        };
        let r = run_governor(&trace, Seconds::new(1.0), &GovernorConfig::default()).unwrap();
        assert!(r.transitions >= 10, "transitions {}", r.transitions);
        assert!(r.savings.fraction() > 0.3, "savings {}", r.savings);
        // Full-rate bursts exceed even C1's capacity momentarily: the
        // reactive governor eats some misses — §4.1's automation risk.
        assert!(r.capacity_misses > 0);
    }

    #[test]
    fn latency_budget_caps_the_depth() {
        let tight = GovernorConfig {
            exit_latency_budget: Seconds::from_micros(50.0),
            ..GovernorConfig::default()
        };
        let r = run_governor(&Flat(0.0), Seconds::new(1.0), &tight).unwrap();
        // C2/C3 (100/150 µs exits) are off-limits: all idle time in C1.
        assert_eq!(r.residency[2].1, Seconds::ZERO);
        assert_eq!(r.residency[3].1, Seconds::ZERO);
        assert!(r.residency[1].1.value() > 0.9);
        // Shallower floor ⇒ smaller savings than the default governor.
        let deep = run_governor(&Flat(0.0), Seconds::new(1.0), &GovernorConfig::default()).unwrap();
        assert!(deep.savings > r.savings);
    }

    #[test]
    fn hysteresis_delays_deepening() {
        let patient = GovernorConfig {
            patience: 100,
            ..GovernorConfig::default()
        };
        let eager = GovernorConfig {
            patience: 1,
            ..GovernorConfig::default()
        };
        let slow = run_governor(&Flat(0.0), Seconds::new(0.05), &patient).unwrap();
        let fast = run_governor(&Flat(0.0), Seconds::new(0.05), &eager).unwrap();
        assert!(fast.savings > slow.savings);
    }

    #[test]
    fn validation() {
        let c = GovernorConfig::default();
        assert!(run_governor(&Flat(0.0), Seconds::ZERO, &c).is_err());
        let bad = GovernorConfig { headroom: 0.5, ..c };
        assert!(run_governor(&Flat(0.0), Seconds::new(1.0), &bad).is_err());
        let impossible = GovernorConfig {
            exit_latency_budget: Seconds::new(-1.0),
            ..c
        };
        assert!(run_governor(&Flat(0.0), Seconds::new(1.0), &impossible).is_err());
    }
}
