//! Energy Efficient Ethernet (IEEE 802.3az) low-power idle — the
//! historical link-sleeping baseline the paper revisits.
//!
//! EEE lets a link enter a *low-power idle* (LPI) state when it has
//! nothing to send. Entering LPI takes `Ts` (the sleep transition), waking
//! takes `Tw`; both stall transmission. The classic engineering knobs are
//! an idle timeout before sleeping and optional frame coalescing.
//!
//! The simulation here reproduces the canonical result of Christensen
//! et al. (the paper's ref. 8): at low utilization EEE recovers most of the
//! idle energy at microsecond-scale latency cost. It also demonstrates
//! the paper's obsolescence argument: at 400 G the *same* transition
//! times correspond to hundreds of kilobytes of line-rate traffic, so the
//! sleep windows vanish and the savings collapse (see
//! [`sleep_viability`]).

use serde::{Deserialize, Serialize};

use npp_simnet::sources::{Arrival, TrafficSource};
use npp_simnet::{PowerTracker, SimTime};
use npp_units::{Gbps, Joules, Ratio, Seconds, Watts};

use crate::{MechanismError, Result};

/// EEE link parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EeeParams {
    /// Link rate.
    pub rate: Gbps,
    /// Sleep-entry transition time (Ts), ns.
    pub sleep_ns: u64,
    /// Wake transition time (Tw), ns.
    pub wake_ns: u64,
    /// Idle time before initiating sleep, ns.
    pub idle_timeout_ns: u64,
    /// Power while active (and during transitions).
    pub active_power: Watts,
    /// Power while in LPI.
    pub lpi_power: Watts,
    /// Frame-coalescing hold time: on a wake-triggering arrival, the
    /// link lingers in LPI this long to batch subsequent frames into one
    /// wake (0 = coalescing off). The classic 802.3az knob trading
    /// latency for fewer, longer sleeps.
    pub coalesce_ns: u64,
}

impl EeeParams {
    /// 10GBASE-T numbers from the 802.3az literature: Ts = 2.88 µs,
    /// Tw = 4.48 µs, ≈4 W active PHY, LPI at ≈10 % of active. The idle
    /// timeout defaults to Tw (sleep only pays off beyond that).
    pub fn ten_gbase_t() -> Self {
        Self {
            rate: Gbps::new(10.0),
            sleep_ns: 2_880,
            wake_ns: 4_480,
            idle_timeout_ns: 4_480,
            active_power: Watts::new(4.0),
            lpi_power: Watts::new(0.4),
            coalesce_ns: 0,
        }
    }

    /// The same transition machinery hypothetically bolted onto a 400 G
    /// optical link (10 W transceiver, Table 2): transition times do not
    /// shrink with line rate, which is the obsolescence problem.
    pub fn hypothetical_400g() -> Self {
        Self {
            rate: Gbps::new(400.0),
            sleep_ns: 2_880,
            wake_ns: 4_480,
            idle_timeout_ns: 4_480,
            active_power: Watts::new(10.0),
            lpi_power: Watts::new(1.0),
            coalesce_ns: 0,
        }
    }

    /// Returns a copy with frame coalescing enabled at the given hold
    /// time.
    pub fn with_coalescing(mut self, hold_ns: u64) -> Self {
        self.coalesce_ns = hold_ns;
        self
    }

    /// The link's power proportionality if it could sleep perfectly
    /// (Eq. 1 with `idle = lpi_power`).
    pub fn ideal_proportionality(&self) -> Ratio {
        Ratio::new(1.0 - self.lpi_power / self.active_power)
    }
}

/// Result of an EEE link simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EeeReport {
    /// Total simulated time.
    pub duration: Seconds,
    /// Energy with EEE enabled.
    pub energy: Joules,
    /// Energy of the same link always-active.
    pub energy_always_on: Joules,
    /// Relative energy saving.
    pub savings: Ratio,
    /// Fraction of time spent in LPI.
    pub lpi_fraction: Ratio,
    /// Mean extra latency per packet vs. an always-on link, ns.
    pub mean_added_latency_ns: f64,
    /// Worst-case extra latency, ns.
    pub max_added_latency_ns: f64,
    /// Number of sleep/wake cycles.
    pub sleep_cycles: u64,
    /// Packets transmitted.
    pub packets: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum LinkState {
    Active,
    EnteringSleep { until: SimTime },
    Lpi,
}

/// Simulates an EEE link fed by `source` until `horizon`.
///
/// The state machine: the link sleeps after `idle_timeout_ns` of
/// inactivity (paying `sleep_ns` of transition at active power), draws
/// `lpi_power` in LPI, and pays `wake_ns` at active power when traffic
/// arrives. Arrivals during the sleep transition abort it but must wait
/// for the transition plus a wake.
///
/// # Errors
///
/// Propagates simulator errors; rejects a zero horizon.
pub fn simulate_eee(
    params: &EeeParams,
    source: &mut dyn TrafficSource,
    horizon: SimTime,
) -> Result<EeeReport> {
    if horizon == SimTime::ZERO {
        return Err(MechanismError::Config("horizon must be positive".into()));
    }
    let mut tracker = PowerTracker::new(SimTime::ZERO, params.active_power);
    let mut state = LinkState::Active;
    let mut wire_free = SimTime::ZERO; // when the serializer frees up
    let mut idle_since = SimTime::ZERO;
    let mut lpi_ns: u64 = 0;
    let mut sleep_cycles: u64 = 0;
    let mut packets: u64 = 0;
    let mut added_lat_sum: f64 = 0.0;
    let mut added_lat_max: f64 = 0.0;

    /// Advances the idle state machine from `idle_since` to `t`,
    /// accounting sleep entries. Returns the new state.
    fn advance_idle(
        params: &EeeParams,
        tracker: &mut PowerTracker,
        state: LinkState,
        idle_since: SimTime,
        t: SimTime,
        lpi_ns: &mut u64,
        sleep_cycles: &mut u64,
    ) -> npp_simnet::Result<LinkState> {
        match state {
            LinkState::Active => {
                let sleep_at = idle_since.plus_nanos(params.idle_timeout_ns);
                let lpi_at = sleep_at.plus_nanos(params.sleep_ns);
                if t >= lpi_at {
                    // Full transition happened in the gap.
                    tracker.set_power(lpi_at, params.lpi_power)?;
                    *lpi_ns += t.since(lpi_at);
                    *sleep_cycles += 1;
                    Ok(LinkState::Lpi)
                } else if t >= sleep_at {
                    Ok(LinkState::EnteringSleep { until: lpi_at })
                } else {
                    Ok(LinkState::Active)
                }
            }
            LinkState::EnteringSleep { until } => {
                if t >= until {
                    tracker.set_power(until, params.lpi_power)?;
                    *lpi_ns += t.since(until);
                    *sleep_cycles += 1;
                    Ok(LinkState::Lpi)
                } else {
                    Ok(LinkState::EnteringSleep { until })
                }
            }
            LinkState::Lpi => {
                *lpi_ns += t.since(idle_since.max(SimTime::ZERO));
                Ok(LinkState::Lpi)
            }
        }
    }

    while let Some(Arrival { at, bytes, .. }) = source.next_arrival() {
        if at >= horizon {
            break;
        }
        // Bring the idle state machine up to the arrival time (the link
        // may have slept during the gap).
        state = advance_idle(
            params,
            &mut tracker,
            state,
            idle_since,
            at,
            &mut lpi_ns,
            &mut sleep_cycles,
        )
        .map_err(MechanismError::Sim)?;

        // Compute when transmission can start.
        let tx_ready = match state {
            LinkState::Active => at,
            LinkState::EnteringSleep { until } => {
                // Abort: finish entry, then wake.
                tracker
                    .set_power(until, params.active_power)
                    .map_err(MechanismError::Sim)?;
                until.plus_nanos(params.wake_ns)
            }
            LinkState::Lpi => {
                // LPI time was counted up to `at` by advance_idle. With
                // frame coalescing the link lingers in LPI for another
                // `coalesce_ns` to batch subsequent arrivals into one
                // wake; then it pays the wake at active power.
                let wake_at = at.plus_nanos(params.coalesce_ns);
                lpi_ns += params.coalesce_ns;
                tracker
                    .set_power(wake_at, params.active_power)
                    .map_err(MechanismError::Sim)?;
                wake_at.plus_nanos(params.wake_ns)
            }
        };
        let start = [at, tx_ready, wire_free]
            .into_iter()
            .max()
            .expect("non-empty");
        let ser_ns = (bytes as f64 * 8.0 / params.rate.value()).ceil() as u64;
        let end = start.plus_nanos(ser_ns);
        // Added latency vs. an always-on link, where the packet would
        // have departed at max(at, wire_free_always_on) + ser. Always-on
        // wire frees at the same pace minus wake stalls; we approximate
        // the baseline as unqueued (low-load regime), which makes the
        // reported number the *EEE-induced* delay.
        let baseline_end = at.plus_nanos(ser_ns);
        let added = end.since(baseline_end) as f64;
        added_lat_sum += added;
        added_lat_max = added_lat_max.max(added);
        wire_free = end;
        idle_since = end;
        state = LinkState::Active;
        packets += 1;
    }

    // Tail: account idle time from the last departure to the horizon.
    state = advance_idle(
        params,
        &mut tracker,
        state,
        idle_since,
        horizon,
        &mut lpi_ns,
        &mut sleep_cycles,
    )
    .map_err(MechanismError::Sim)?;
    let _ = state;

    // Transitions triggered near the end of the run may have advanced
    // the tracker past the horizon; close the books at the later of the
    // two so both sides of the comparison cover the same span.
    let end = horizon.max(tracker.last_change_time());
    let timeline = tracker.finish(end).map_err(MechanismError::Sim)?;
    let energy_always_on = params.active_power * end.as_seconds();
    Ok(EeeReport {
        duration: end.as_seconds(),
        energy: timeline.energy,
        energy_always_on,
        savings: Ratio::new(1.0 - timeline.energy / energy_always_on),
        lpi_fraction: Ratio::new(lpi_ns as f64 / end.as_nanos() as f64),
        mean_added_latency_ns: if packets > 0 {
            added_lat_sum / packets as f64
        } else {
            0.0
        },
        max_added_latency_ns: added_lat_max,
        sleep_cycles,
        packets,
    })
}

/// The paper's obsolescence argument in one function: the fraction of an
/// inter-packet gap that EEE can actually spend in LPI, for a given
/// utilization and packet size. At 10 G the gaps dwarf the transition
/// times; at 400 G the same microsecond transitions eat the entire gap.
pub fn sleep_viability(params: &EeeParams, utilization: f64, packet_bytes: u64) -> Ratio {
    if !(0.0..1.0).contains(&utilization) || utilization == 0.0 {
        return Ratio::ZERO;
    }
    let ser_ns = packet_bytes as f64 * 8.0 / params.rate.value();
    let gap_ns = ser_ns * (1.0 - utilization) / utilization;
    let overhead = (params.idle_timeout_ns + params.sleep_ns + params.wake_ns) as f64;
    Ratio::new(((gap_ns - overhead) / gap_ns).max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use npp_simnet::sources::{CbrSource, OnOffSource};

    #[test]
    fn idle_link_sleeps_and_saves() {
        // No traffic at all: the link should spend essentially the whole
        // horizon in LPI and save close to 90 % (LPI draws 10 %).
        let params = EeeParams::ten_gbase_t();
        let mut empty = CbrSource::new(
            Gbps::new(1.0),
            100,
            0,
            SimTime::from_secs(100), // starts after the horizon
            SimTime::from_secs(200),
        )
        .unwrap();
        let r = simulate_eee(&params, &mut empty, SimTime::from_secs(1)).unwrap();
        assert_eq!(r.packets, 0);
        assert_eq!(r.sleep_cycles, 1);
        assert!(r.lpi_fraction.fraction() > 0.99, "lpi {}", r.lpi_fraction);
        assert!(r.savings.fraction() > 0.89, "savings {}", r.savings);
    }

    #[test]
    fn busy_link_never_sleeps() {
        // Back-to-back traffic: gaps are 1.2 µs < the 4.48 µs timeout, so
        // the link stays active and saves nothing.
        let params = EeeParams::ten_gbase_t();
        // 1500 B at 10 G = 1.2 µs serialization; send at 50% load → 1.2 µs
        // gaps, below the idle timeout.
        let mut src = CbrSource::new(
            Gbps::new(5.0),
            1500,
            0,
            SimTime::ZERO,
            SimTime::from_millis(10),
        )
        .unwrap();
        let r = simulate_eee(&params, &mut src, SimTime::from_millis(10)).unwrap();
        assert_eq!(r.sleep_cycles, 0);
        assert!(r.savings.fraction().abs() < 1e-6, "savings {}", r.savings);
        assert_eq!(r.mean_added_latency_ns, 0.0);
    }

    #[test]
    fn low_load_saves_most_idle_energy_at_us_latency_cost() {
        // The classic EEE result: ~1% load in bursts → big savings, added
        // latency on the order of the wake time.
        let params = EeeParams::ten_gbase_t();
        // One 1500B packet every 1.2 ms ⇒ 0.1% load.
        let mut src = CbrSource::new(
            Gbps::new(0.01),
            1500,
            0,
            SimTime::ZERO,
            SimTime::from_secs(1),
        )
        .unwrap();
        let r = simulate_eee(&params, &mut src, SimTime::from_secs(1)).unwrap();
        assert!(r.savings.fraction() > 0.8, "savings {}", r.savings);
        assert!(r.sleep_cycles > 500, "cycles {}", r.sleep_cycles);
        // Every packet pays roughly one wake.
        assert!(
            (r.mean_added_latency_ns - params.wake_ns as f64).abs() < 500.0,
            "added latency {}",
            r.mean_added_latency_ns
        );
    }

    #[test]
    fn ml_burst_traffic_sleeps_during_compute_phase() {
        let params = EeeParams::ten_gbase_t();
        // 1 ms iterations: 900 µs silent, 100 µs burst at line rate.
        let mut src = OnOffSource::new(
            1_000_000,
            900_000,
            Gbps::new(10.0),
            1500,
            0,
            SimTime::from_millis(10),
        )
        .unwrap();
        let r = simulate_eee(&params, &mut src, SimTime::from_millis(10)).unwrap();
        // Should sleep once per iteration and spend ≈ 89% in LPI.
        assert!(r.sleep_cycles >= 9, "cycles {}", r.sleep_cycles);
        assert!(r.lpi_fraction.fraction() > 0.8, "lpi {}", r.lpi_fraction);
        assert!(r.savings.fraction() > 0.7, "savings {}", r.savings);
    }

    #[test]
    fn viability_collapses_at_high_rates() {
        // Same 30% utilization, same packets: viable at 10 G, hopeless at
        // 400 G — the paper's "EEE lost its appeal".
        let at10 = sleep_viability(&EeeParams::ten_gbase_t(), 0.3, 1500);
        let at400 = sleep_viability(&EeeParams::hypothetical_400g(), 0.3, 1500);
        assert!(at10.fraction() == 0.0 || at10.fraction() < 0.5);
        // At 10G the 1500B gap at 30% load is 2.8µs — still below the
        // 10.2µs overhead: even 10G needs coalescing at this load.
        // At 0.1% load 10G is viable:
        let at10_low = sleep_viability(&EeeParams::ten_gbase_t(), 0.001, 1500);
        assert!(at10_low.fraction() > 0.99);
        let at400_low = sleep_viability(&EeeParams::hypothetical_400g(), 0.001, 1500);
        // 400G gap at 0.1%: 30ns × 999 ≈ 30µs vs 11.8µs overhead → ~60%.
        assert!(at400_low.fraction() < at10_low.fraction());
        assert_eq!(
            sleep_viability(&EeeParams::ten_gbase_t(), 0.0, 1500),
            Ratio::ZERO
        );
        let _ = at400;
    }

    #[test]
    fn ideal_proportionality() {
        let p = EeeParams::ten_gbase_t().ideal_proportionality();
        assert!(p.approx_eq(Ratio::new(0.9), 1e-12));
    }

    #[test]
    fn coalescing_trades_latency_for_lpi_residency() {
        // Sparse periodic traffic: each arrival wakes the link. With
        // coalescing, every packet waits `coalesce_ns` longer but the
        // link banks that time in LPI.
        let horizon = SimTime::from_secs(1);
        let mk = || CbrSource::new(Gbps::new(0.01), 1500, 0, SimTime::ZERO, horizon).unwrap();
        let plain = simulate_eee(&EeeParams::ten_gbase_t(), &mut mk(), horizon).unwrap();
        let hold_ns = 50_000;
        let coalesced = simulate_eee(
            &EeeParams::ten_gbase_t().with_coalescing(hold_ns),
            &mut mk(),
            horizon,
        )
        .unwrap();
        // Latency cost: about the hold time on top of the wake.
        assert!(
            (coalesced.mean_added_latency_ns - (plain.mean_added_latency_ns + hold_ns as f64))
                .abs()
                < 1_000.0,
            "plain {} vs coalesced {}",
            plain.mean_added_latency_ns,
            coalesced.mean_added_latency_ns
        );
        // Energy: at least as good (more LPI residency per cycle).
        assert!(coalesced.savings.fraction() >= plain.savings.fraction() - 1e-9);
        assert!(coalesced.lpi_fraction >= plain.lpi_fraction);
    }

    #[test]
    fn zero_horizon_rejected() {
        let params = EeeParams::ten_gbase_t();
        let mut src = CbrSource::new(Gbps::new(1.0), 100, 0, SimTime::ZERO, SimTime::MAX).unwrap();
        assert!(simulate_eee(&params, &mut src, SimTime::ZERO).is_err());
    }
}
