//! Cross-mechanism comparison harness.
//!
//! Runs the dynamic §4 mechanisms (plus the all-on baseline and the EEE
//! ancestor) on one common ML-training traffic pattern and reports a
//! table of energy savings, achieved proportionality floors, and the
//! latency/loss costs — the summary the paper's §4 narrates
//! qualitatively.

use serde::{Deserialize, Serialize};

use npp_simnet::sources::{MergedSource, OnOffSource, TrafficSource};
use npp_simnet::switchsim::SwitchParams;
use npp_simnet::SimTime;
use npp_units::{Gbps, Ratio};

use crate::pipeline_park::{
    park_floor_proportionality, simulate_parking, ParkConfig, PredictiveSchedule,
};
use crate::rate_adapt::{idle_floor_proportionality, simulate_rate_adaptation, RateAdaptConfig};
use crate::Result;

/// One row of the comparison table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MechanismOutcome {
    /// Mechanism name.
    pub name: String,
    /// Energy saving vs. the all-on switch on the same traffic.
    pub savings: Ratio,
    /// The idle-power proportionality floor this mechanism can reach.
    pub proportionality_floor: Ratio,
    /// Packet loss rate on the test traffic.
    pub loss_rate: f64,
    /// 99th-percentile switch latency, ns.
    pub p99_latency_ns: f64,
}

/// The common workload: ML iterations with the paper's 10 % communication
/// ratio, scaled down to 1 ms iterations so simulations stay fast. The
/// burst uses ~40 % of the switch, spread over four ports.
pub fn ml_workload(horizon: SimTime) -> MergedSource {
    let per_port = (0..4)
        .map(|port| {
            Box::new(
                OnOffSource::new(
                    1_000_000,
                    900_000,
                    Gbps::from_tbps(5.0),
                    12_500,
                    port,
                    horizon,
                )
                .expect("static workload parameters are valid"),
            ) as Box<dyn TrafficSource>
        })
        .collect();
    MergedSource::new(per_port)
}

/// Runs every dynamic mechanism on the common workload and returns the
/// comparison table (ordered roughly by increasing ambition).
///
/// # Errors
///
/// Propagates simulation errors.
pub fn compare_mechanisms(horizon: SimTime) -> Result<Vec<MechanismOutcome>> {
    let params = SwitchParams::paper_51t2();
    let mut out = Vec::new();

    // Baseline: everything on, all the time.
    out.push(MechanismOutcome {
        name: "all-on (today)".into(),
        savings: Ratio::ZERO,
        proportionality_floor: Ratio::ZERO,
        loss_rate: 0.0,
        p99_latency_ns: 0.0,
    });

    // Global rate adaptation (what current ASICs could do).
    let cfg = RateAdaptConfig::default_global();
    let r = simulate_rate_adaptation(params, &cfg, &mut ml_workload(horizon), horizon)?;
    out.push(MechanismOutcome {
        name: "rate adaptation (global clock)".into(),
        savings: r.savings,
        proportionality_floor: idle_floor_proportionality(&params, &cfg),
        loss_rate: r.loss_rate,
        p99_latency_ns: r.p99_latency_ns,
    });

    // Per-pipeline rate adaptation (§4.3 proposal).
    let cfg = RateAdaptConfig::default_per_pipeline();
    let r = simulate_rate_adaptation(params, &cfg, &mut ml_workload(horizon), horizon)?;
    out.push(MechanismOutcome {
        name: "rate adaptation (per-pipeline)".into(),
        savings: r.savings,
        proportionality_floor: idle_floor_proportionality(&params, &cfg),
        loss_rate: r.loss_rate,
        p99_latency_ns: r.p99_latency_ns,
    });

    // Reactive pipeline parking (§4.4).
    let cfg = ParkConfig::reactive();
    let r = simulate_parking(params, &cfg, &mut ml_workload(horizon), horizon)?;
    out.push(MechanismOutcome {
        name: "pipeline parking (reactive)".into(),
        savings: r.savings,
        proportionality_floor: park_floor_proportionality(&params, 0),
        loss_rate: r.loss_rate,
        p99_latency_ns: r.p99_latency_ns,
    });

    // Predictive pipeline parking (§4.4 + ML predictability).
    let cfg = ParkConfig::predictive(PredictiveSchedule {
        period_ns: 1_000_000,
        burst_start_ns: 900_000,
        burst_len_ns: 100_000,
        prewake_ns: 200_000,
    });
    let r = simulate_parking(params, &cfg, &mut ml_workload(horizon), horizon)?;
    out.push(MechanismOutcome {
        name: "pipeline parking (predictive)".into(),
        savings: r.savings,
        proportionality_floor: park_floor_proportionality(&params, 0),
        loss_rate: r.loss_rate,
        p99_latency_ns: r.p99_latency_ns,
    });

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_table_shape_and_ordering() {
        let table = compare_mechanisms(SimTime::from_millis(10)).unwrap();
        assert_eq!(table.len(), 5);
        // Baseline saves nothing.
        assert!(table[0].savings.approx_eq(Ratio::ZERO, 1e-12));
        // The §4 narrative: per-pipeline beats global; parking beats rate
        // adaptation on this skew-free but bursty workload.
        let by_name = |n: &str| {
            table
                .iter()
                .find(|o| o.name.starts_with(n))
                .unwrap_or_else(|| panic!("missing {n}"))
        };
        let global = by_name("rate adaptation (global");
        let per = by_name("rate adaptation (per-");
        let reactive = by_name("pipeline parking (reactive");
        let predictive = by_name("pipeline parking (predictive");
        assert!(per.savings >= global.savings);
        assert!(reactive.savings > per.savings);
        // Predictive trades a little energy for avoiding the reactive
        // loss penalty.
        assert!(predictive.loss_rate <= reactive.loss_rate);
        assert!(predictive.savings.fraction() > 0.3);
        // Proportionality floors are ordered too.
        assert!(reactive.proportionality_floor > per.proportionality_floor);
    }

    #[test]
    fn no_mechanism_reaches_compute_proportionality() {
        // §4.5's point: even parking leaves the chassis overhead, so a
        // full redesign is needed to rival compute's 85%.
        let table = compare_mechanisms(SimTime::from_millis(5)).unwrap();
        for row in &table {
            assert!(
                row.proportionality_floor.fraction() < 0.85,
                "{} reached {}",
                row.name,
                row.proportionality_floor
            );
        }
    }
}

/// One row of the §4.5 granularity-by-simulation comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GranularitySimRow {
    /// Processing units in the redesigned switch.
    pub units: usize,
    /// Energy saving of predictive parking on this design, on the common
    /// ML workload.
    pub savings: Ratio,
    /// Packet loss rate.
    pub loss_rate: f64,
}

/// Runs the *same* predictive-parking policy on progressively
/// finer-grained §4.5 switch designs — the simulation counterpart of
/// `redesign::granularity_sweep`'s closed-form analysis. Finer units let
/// the policy keep less silicon awake during the computation phase.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn compare_granularity(horizon: SimTime) -> Result<Vec<GranularitySimRow>> {
    use crate::redesign::RedesignedSwitch;

    let schedule = PredictiveSchedule {
        period_ns: 1_000_000,
        burst_start_ns: 900_000,
        burst_len_ns: 100_000,
        prewake_ns: 200_000,
    };
    // Spread the 20 Tbps burst over all 64 ports (312.5 G each) so no
    // single port exceeds even the finest design's per-unit rate — the
    // port-striping that a real many-unit ASIC would do in hardware.
    let make_workload = || {
        let per_port = (0..64)
            .map(|port| {
                Box::new(
                    OnOffSource::new(1_000_000, 900_000, Gbps::new(312.5), 12_500, port, horizon)
                        .expect("static workload parameters are valid"),
                ) as Box<dyn TrafficSource>
            })
            .collect();
        MergedSource::new(per_port)
    };
    [4usize, 16, 64]
        .into_iter()
        .map(|units| {
            let params = RedesignedSwitch::from_baseline(units)?.to_switch_params();
            let r = simulate_parking(
                params,
                &ParkConfig::predictive(schedule),
                &mut make_workload(),
                horizon,
            )?;
            Ok(GranularitySimRow {
                units,
                savings: r.savings,
                loss_rate: r.loss_rate,
            })
        })
        .collect()
}

#[cfg(test)]
mod granularity_tests {
    use super::*;

    #[test]
    fn simulated_granularity_confirms_the_analytic_sweep() {
        let rows = compare_granularity(SimTime::from_millis(10)).unwrap();
        assert_eq!(rows.len(), 3);
        // Finer designs park deeper on the same policy and workload.
        assert!(
            rows[1].savings > rows[0].savings,
            "16 units {} vs 4 units {}",
            rows[1].savings,
            rows[0].savings
        );
        assert!(
            rows[2].savings > rows[1].savings,
            "64 units {} vs 16 units {}",
            rows[2].savings,
            rows[1].savings
        );
        // Without losing traffic.
        for r in &rows {
            assert!(r.loss_rate < 0.01, "{} units lost {}", r.units, r.loss_rate);
        }
    }
}
