//! The §3.4 ISP scenario, quantified: diurnal traffic on the Abilene
//! backbone, and what each proportionality mechanism recovers.
//!
//! §3.4's distinction: ISP links are *underutilized rather than
//! completely unused* — there is load around the clock, so link sleeping
//! (EEE-style) has nothing to grab, two-state devices never idle, and
//! the win comes from devices whose power follows load: ideal linear
//! proportionality, or the practical §4.3 proxy of *down-rating* links
//! to the smallest standard speed that still carries the demand (e.g.
//! running a 400 G link as 100 G overnight, with transceiver power from
//! the paper's Table 2).

use serde::{Deserialize, Serialize};

use npp_power::devices::DeviceDb;
use npp_power::{LinearPower, PowerModel, Proportionality, TwoStatePower};
use npp_topology::isp::{abilene, ABILENE_POPS};
use npp_topology::loads::LinkLoads;
use npp_topology::NodeId;
use npp_units::{Gbps, Joules, Ratio, Seconds, Watts};
use npp_workload::trace::{DiurnalTrace, LoadTrace};

use crate::{MechanismError, Result};

/// Study configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IspStudyConfig {
    /// Backbone link speed.
    pub link_speed: Gbps,
    /// Peak-hour utilization of the busiest link (provisioning target).
    pub peak_target: Ratio,
    /// Router power proportionality for the "improved" scenarios.
    pub improved_proportionality: Proportionality,
    /// RNG seed for the diurnal noise.
    pub seed: u64,
}

impl Default for IspStudyConfig {
    fn default() -> Self {
        Self {
            link_speed: Gbps::new(400.0),
            peak_target: Ratio::new(0.6),
            improved_proportionality: Proportionality::COMPUTE,
            seed: 42,
        }
    }
}

/// One hour of the simulated day.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IspHour {
    /// Hour of day (0–23).
    pub hour: u32,
    /// Diurnal demand multiplier applied this hour.
    pub demand_factor: f64,
    /// Mean link utilization.
    pub mean_utilization: Ratio,
    /// Busiest-link utilization.
    pub max_utilization: Ratio,
    /// Backbone links carrying nothing this hour.
    pub unused_links: usize,
}

/// The full §3.4 report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IspReport {
    /// Per-hour load statistics.
    pub hours: Vec<IspHour>,
    /// 24 h energy: routers at today's two-state 10 % proportionality,
    /// fixed-rate links.
    pub energy_today: Joules,
    /// 24 h energy with two-state routers at the improved
    /// proportionality (spoiler: identical to today — never idle).
    pub energy_two_state_improved: Joules,
    /// 24 h energy with linearly proportional routers.
    pub energy_linear: Joules,
    /// 24 h energy with linear routers *and* down-rated links.
    pub energy_linear_downrated: Joules,
    /// Saving of the linear scenario vs. today.
    pub savings_linear: Ratio,
    /// Saving of linear + down-rating vs. today.
    pub savings_linear_downrated: Ratio,
    /// Fraction of backbone links that are underutilized (< 50 %) even at
    /// the peak hour.
    pub underutilized_at_peak: Ratio,
}

/// Relative "population" weights of the Abilene PoPs for the gravity
/// traffic matrix (rough metro-area proportions; the absolute scale is
/// normalized away by the peak target).
const POP_WEIGHTS: [f64; 11] = [
    4.0,  // Seattle
    7.7,  // Sunnyvale (Bay Area)
    13.2, // Los Angeles
    3.0,  // Denver
    2.2,  // Kansas City
    7.1,  // Houston
    9.5,  // Chicago
    2.1,  // Indianapolis
    6.1,  // Atlanta
    6.3,  // Washington DC
    19.5, // New York
];

/// Builds the gravity demand set between PoP client hosts, unnormalized.
fn gravity_demands(hosts: &[NodeId]) -> Vec<(NodeId, NodeId, Gbps)> {
    let mut demands = Vec::new();
    for (i, &src) in hosts.iter().enumerate() {
        for (j, &dst) in hosts.iter().enumerate() {
            if i != j {
                demands.push((src, dst, Gbps::new(POP_WEIGHTS[i] * POP_WEIGHTS[j])));
            }
        }
    }
    demands
}

/// Smallest standard speed step (from the paper's Table 2 grid) that
/// carries `load`, never exceeding the link speed. Returns the full link
/// speed if even that is insufficient (overload is clamped, not dropped).
fn downrate_step(load: Gbps, link_speed: Gbps) -> Gbps {
    for step in [100.0, 200.0, 400.0, 800.0, 1600.0] {
        let s = Gbps::new(step);
        if s > link_speed {
            break;
        }
        if load <= s {
            return s;
        }
    }
    link_speed
}

/// Runs the 24-hour study.
///
/// # Errors
///
/// Propagates routing and device-lookup errors.
pub fn run_isp_study(cfg: &IspStudyConfig) -> Result<IspReport> {
    let topo = abilene(cfg.link_speed);
    let hosts = topo.hosts();
    assert_eq!(hosts.len(), ABILENE_POPS.len());
    let base = LinkLoads::route(&topo, &gravity_demands(&hosts), 8)?;

    // Normalize so that at demand factor 1.0 (the diurnal peak) the
    // busiest link hits the provisioning target.
    let raw_peak = base.max_utilization(&topo).fraction();
    if raw_peak <= 0.0 {
        return Err(MechanismError::Config(
            "gravity matrix produced no load".into(),
        ));
    }
    let norm = cfg.peak_target.fraction() / raw_peak;

    let trace = DiurnalTrace::typical_backbone(cfg.seed);
    // The trace yields absolute utilization; convert to a demand factor
    // relative to its peak.
    let trace_peak = trace.peak.fraction();

    let db = DeviceDb::paper_baseline();
    let router_max = npp_power::devices::SWITCH_51T2_MAX;
    let today_router = TwoStatePower::new(router_max, Proportionality::NETWORK_BASELINE);
    let improved_two_state = TwoStatePower::new(router_max, cfg.improved_proportionality);
    let linear_router = LinearPower::new(router_max, cfg.improved_proportionality);
    let xcvr_full = db.transceiver(cfg.link_speed)?.max_power();

    let n_routers = topo.switches().len() as f64;
    let backbone_links = topo.inter_switch_links();
    let hour = Seconds::from_hours(1.0);

    let mut hours = Vec::with_capacity(24);
    let (mut e_today, mut e_two, mut e_lin, mut e_lin_dr) =
        (Joules::ZERO, Joules::ZERO, Joules::ZERO, Joules::ZERO);
    let mut peak_underutilized = Ratio::ZERO;
    let mut peak_factor = 0.0;

    for h in 0..24u32 {
        let t = Seconds::from_hours(h as f64 + 0.5);
        let demand_factor = trace.utilization(t).fraction() / trace_peak;
        let loads = base.scaled(norm * demand_factor);
        let utils = loads.utilizations(&topo);

        // Router load: mean utilization of its incident backbone links
        // approximated by the network-wide mean (Abilene is small and
        // fairly homogeneous; per-router granularity changes <2%).
        let mean_u = loads.mean_utilization(&topo);
        let max_u = loads.max_utilization(&topo);

        // Energy contributions for this hour.
        let routers_today = today_router.power_at(Ratio::new(mean_u.fraction())) * n_routers;
        let routers_two = improved_two_state.power_at(Ratio::new(mean_u.fraction())) * n_routers;
        let routers_lin = linear_router.power_at(mean_u) * n_routers;

        // Links: fixed-rate transceivers vs down-rated ones.
        let mut links_fixed = Watts::ZERO;
        let mut links_dr = Watts::ZERO;
        for &lid in &backbone_links {
            let load = loads.load(lid);
            links_fixed += xcvr_full * 2.0;
            let step = downrate_step(load, cfg.link_speed);
            links_dr += db.transceiver(step)?.max_power() * 2.0;
        }

        e_today += (routers_today + links_fixed) * hour;
        e_two += (routers_two + links_fixed) * hour;
        e_lin += (routers_lin + links_fixed) * hour;
        e_lin_dr += (routers_lin + links_dr) * hour;

        let unused = loads.unused_links(&topo).len();
        if demand_factor > peak_factor {
            peak_factor = demand_factor;
            let under = utils
                .iter()
                .enumerate()
                .filter(|(i, u)| {
                    backbone_links.contains(&npp_topology::LinkId(*i)) && u.fraction() < 0.5
                })
                .count();
            peak_underutilized = Ratio::new(under as f64 / backbone_links.len() as f64);
        }
        hours.push(IspHour {
            hour: h,
            demand_factor,
            mean_utilization: mean_u,
            max_utilization: max_u,
            unused_links: unused,
        });
    }

    Ok(IspReport {
        hours,
        energy_today: e_today,
        energy_two_state_improved: e_two,
        energy_linear: e_lin,
        energy_linear_downrated: e_lin_dr,
        savings_linear: Ratio::new(1.0 - e_lin / e_today),
        savings_linear_downrated: Ratio::new(1.0 - e_lin_dr / e_today),
        underutilized_at_peak: peak_underutilized,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> IspReport {
        run_isp_study(&IspStudyConfig::default()).unwrap()
    }

    #[test]
    fn links_are_underutilized_not_unused() {
        // §3.4's distinction, asserted: around the clock there is load on
        // every backbone link (gravity all-to-all), yet most links sit
        // below 50% even at peak.
        let r = report();
        for h in &r.hours {
            assert_eq!(h.unused_links, 0, "hour {} had unused links", h.hour);
            assert!(h.mean_utilization.fraction() > 0.0);
        }
        assert!(
            r.underutilized_at_peak.fraction() > 0.5,
            "underutilized at peak: {}",
            r.underutilized_at_peak
        );
    }

    #[test]
    fn two_state_improvement_saves_nothing() {
        // Never idle ⇒ a two-state device at any proportionality draws
        // max around the clock.
        let r = report();
        assert!(
            (r.energy_two_state_improved.value() - r.energy_today.value()).abs()
                < r.energy_today.value() * 1e-9
        );
    }

    #[test]
    fn linear_proportionality_recovers_the_gap() {
        let r = report();
        assert!(
            r.savings_linear.fraction() > 0.3,
            "linear savings {}",
            r.savings_linear
        );
        // Down-rating links adds on top.
        assert!(r.savings_linear_downrated > r.savings_linear);
    }

    #[test]
    fn diurnal_structure_visible() {
        let r = report();
        let night = &r.hours[4];
        let evening = &r.hours[20];
        assert!(evening.demand_factor > night.demand_factor * 1.5);
        assert!(evening.mean_utilization > night.mean_utilization);
        // Peak-hour max utilization hits the provisioning target.
        let max_over_day = r
            .hours
            .iter()
            .map(|h| h.max_utilization.fraction())
            .fold(0.0, f64::max);
        assert!((max_over_day - 0.6).abs() < 0.05, "peak {max_over_day}");
    }

    #[test]
    fn downrate_step_logic() {
        let link = Gbps::new(400.0);
        assert_eq!(downrate_step(Gbps::new(10.0), link), Gbps::new(100.0));
        assert_eq!(downrate_step(Gbps::new(150.0), link), Gbps::new(200.0));
        assert_eq!(downrate_step(Gbps::new(350.0), link), Gbps::new(400.0));
        // Overload clamps to the link speed.
        assert_eq!(downrate_step(Gbps::new(900.0), link), Gbps::new(400.0));
    }

    #[test]
    fn custom_config_peak_target() {
        let cfg = IspStudyConfig {
            peak_target: Ratio::new(0.9),
            ..IspStudyConfig::default()
        };
        let r = run_isp_study(&cfg).unwrap();
        let max_over_day = r
            .hours
            .iter()
            .map(|h| h.max_utilization.fraction())
            .fold(0.0, f64::max);
        assert!((max_over_day - 0.9).abs() < 0.07, "peak {max_over_day}");
    }
}

/// Green traffic engineering: at low load, reroute traffic away from as
/// many backbone links as possible so they can sleep entirely — the
/// ISP-side analogue of §4.2's "concentrate the workload on as few
/// devices as possible". A link is sleepable in a given hour if removing
/// it (and every previously removed link) still leaves all demands
/// routable with every remaining link below `max_util`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GreenTeReport {
    /// Per-hour number of links put to sleep (out of the backbone total).
    pub sleepable_per_hour: Vec<usize>,
    /// Backbone link count.
    pub links_total: usize,
    /// 24 h transceiver energy without TE (all links always on).
    pub link_energy_baseline: Joules,
    /// 24 h transceiver energy with sleeping enabled.
    pub link_energy_green_te: Joules,
    /// Relative saving on the transceiver fleet.
    pub savings: Ratio,
}

/// Runs the 24-hour green-TE study on Abilene.
///
/// # Errors
///
/// Propagates routing errors.
pub fn run_green_te(cfg: &IspStudyConfig, max_util: Ratio) -> Result<GreenTeReport> {
    use npp_topology::graph::Topology;

    let topo = abilene(cfg.link_speed);
    let hosts = topo.hosts();
    let demands = gravity_demands(&hosts);
    let base = LinkLoads::route(&topo, &demands, 8)?;
    let raw_peak = base.max_utilization(&topo).fraction();
    if raw_peak <= 0.0 {
        return Err(MechanismError::Config("no load".into()));
    }
    let norm = cfg.peak_target.fraction() / raw_peak;
    let trace = DiurnalTrace::typical_backbone(cfg.seed);
    let trace_peak = trace.peak.fraction();

    let backbone: Vec<_> = topo.inter_switch_links();
    let db = DeviceDb::paper_baseline();
    let xcvr_pair = db.transceiver(cfg.link_speed)?.max_power() * 2.0;
    let hour = Seconds::from_hours(1.0);

    // Rebuilds the topology without a set of backbone links.
    let without = |removed: &[npp_topology::LinkId]| -> Topology {
        let mut t = Topology::new();
        let mut map = std::collections::HashMap::new();
        for n in topo.nodes() {
            let id = match n.kind {
                npp_topology::NodeKind::Host => t.add_host(n.name.clone()),
                npp_topology::NodeKind::Switch { tier } => t.add_switch(n.name.clone(), tier),
            };
            map.insert(n.id, id);
        }
        for l in topo.links() {
            if !removed.contains(&l.id) {
                t.add_link(map[&l.a], map[&l.b], l.capacity)
                    .expect("copied links are valid");
            }
        }
        t
    };

    let mut sleepable_per_hour = Vec::with_capacity(24);
    let mut e_base = Joules::ZERO;
    let mut e_green = Joules::ZERO;
    for h in 0..24u32 {
        let t = Seconds::from_hours(h as f64 + 0.5);
        let factor = norm * trace.utilization(t).fraction() / trace_peak;
        let scaled: Vec<_> = demands
            .iter()
            .map(|&(s, d, r)| (s, d, r * factor))
            .collect();

        // Greedy: try removing backbone links in ascending-load order.
        let loads_now = LinkLoads::route(&topo, &scaled, 8)?;
        let mut candidates: Vec<_> = backbone.clone();
        candidates.sort_by(|a, b| {
            loads_now
                .load(*a)
                .value()
                .total_cmp(&loads_now.load(*b).value())
        });
        let mut removed: Vec<npp_topology::LinkId> = Vec::new();
        for cand in candidates {
            let mut trial = removed.clone();
            trial.push(cand);
            let sub = without(&trial);
            // A routing error means the trial disconnects something:
            // keep the link.
            if let Ok(loads) = LinkLoads::route(&sub, &remap_demands(&topo, &sub, &scaled), 8) {
                if loads.max_utilization(&sub).fraction() <= max_util.fraction() {
                    removed = trial;
                }
            }
        }
        sleepable_per_hour.push(removed.len());
        e_base += xcvr_pair * backbone.len() as f64 * hour;
        e_green += xcvr_pair * (backbone.len() - removed.len()) as f64 * hour;
    }

    Ok(GreenTeReport {
        sleepable_per_hour,
        links_total: backbone.len(),
        link_energy_baseline: e_base,
        link_energy_green_te: e_green,
        savings: Ratio::new(1.0 - e_green / e_base),
    })
}

/// Maps demands from the original topology onto the reduced copy (node
/// ids are assigned in the same order, so indexes carry over).
fn remap_demands(
    orig: &npp_topology::Topology,
    _sub: &npp_topology::Topology,
    demands: &[(NodeId, NodeId, Gbps)],
) -> Vec<(NodeId, NodeId, Gbps)> {
    // Node creation order is identical, so ids are stable.
    let _ = orig;
    demands.to_vec()
}

#[cfg(test)]
mod green_te_tests {
    use super::*;

    #[test]
    fn night_hours_sleep_more_links_than_peak_hours() {
        let r = run_green_te(&IspStudyConfig::default(), Ratio::new(0.8)).unwrap();
        assert_eq!(r.sleepable_per_hour.len(), 24);
        // Night (4am) vs evening peak (8pm).
        let night = r.sleepable_per_hour[4];
        let peak = r.sleepable_per_hour[20];
        assert!(night >= peak, "night {night} vs peak {peak}");
        assert!(night >= 1, "some links must be sleepable at night");
        // Never more than the redundancy allows.
        assert!(r.sleepable_per_hour.iter().all(|&n| n < r.links_total));
    }

    #[test]
    fn green_te_saves_link_energy() {
        let r = run_green_te(&IspStudyConfig::default(), Ratio::new(0.8)).unwrap();
        assert!(r.savings.fraction() > 0.05, "savings {}", r.savings);
        assert!(r.link_energy_green_te < r.link_energy_baseline);
    }

    #[test]
    fn strict_utilization_cap_sleeps_fewer_links() {
        let strict = run_green_te(&IspStudyConfig::default(), Ratio::new(0.5)).unwrap();
        let loose = run_green_te(&IspStudyConfig::default(), Ratio::new(0.95)).unwrap();
        let total = |r: &GreenTeReport| r.sleepable_per_hour.iter().sum::<usize>();
        assert!(total(&strict) <= total(&loose));
    }
}
