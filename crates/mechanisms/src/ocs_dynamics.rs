//! Job churn over time: replanning the OCS-tailored topology as training
//! jobs arrive and depart (§4.2's "the reconfiguration should ideally
//! only happen when a new job arrives").
//!
//! [`simulate_job_timeline`] integrates fabric power over a sequence of
//! job arrivals/departures: between events the fabric runs the §4.2 plan
//! for the current job set; each event triggers a replan, paying the OCS
//! reconfiguration time during which *both* the old and new switch sets
//! stay powered (make-before-break, so no traffic is dropped).

use serde::{Deserialize, Serialize};

use npp_topology::builder::three_tier_fat_tree;
use npp_units::{Gbps, Joules, Ratio, Seconds, Watts};

use crate::ocs_sched::{plan, Job, OcsPlan, Placement, RoutingMode};
use crate::{MechanismError, Result};

/// A job arriving or departing at a point in time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobEvent {
    /// A job starts.
    Arrive {
        /// When.
        at: Seconds,
        /// The job.
        job: Job,
        /// Its placement policy.
        placement: Placement,
    },
    /// A job (by name) ends.
    Depart {
        /// When.
        at: Seconds,
        /// Name of the departing job.
        name: String,
    },
}

impl JobEvent {
    fn at(&self) -> Seconds {
        match self {
            JobEvent::Arrive { at, .. } | JobEvent::Depart { at, .. } => *at,
        }
    }
}

/// Timeline-simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OcsDynamicsConfig {
    /// Fat-tree arity.
    pub k: usize,
    /// Link speed.
    pub link_speed: Gbps,
    /// Per-switch power.
    pub switch_power: Watts,
    /// Routing concentration mode.
    pub mode: RoutingMode,
    /// Whether OCS core bypass is available.
    pub use_ocs: bool,
    /// Switches kept powered as warm standby even when unused (§4.2's
    /// energy-vs-reaction-time trade).
    pub standby_switches: usize,
}

impl Default for OcsDynamicsConfig {
    fn default() -> Self {
        Self {
            k: 8,
            link_speed: Gbps::new(400.0),
            switch_power: Watts::new(750.0),
            mode: RoutingMode::Concentrated,
            use_ocs: true,
            standby_switches: 2,
        }
    }
}

/// The integrated timeline result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OcsTimelineReport {
    /// Total horizon simulated.
    pub horizon: Seconds,
    /// Replans performed (one per event).
    pub reconfigurations: usize,
    /// Total time spent in make-before-break reconfiguration.
    pub reconfiguration_time: Seconds,
    /// Fabric energy with the scheduler + OCS active.
    pub energy: Joules,
    /// Fabric energy with every switch always on.
    pub energy_all_on: Joules,
    /// Relative saving.
    pub savings: Ratio,
    /// Time-weighted average number of switches powered.
    pub avg_switches_on: f64,
}

/// Simulates a job timeline on a k-ary fat tree.
///
/// Events must be time-ordered; the simulation ends at `horizon`.
///
/// # Errors
///
/// Rejects unsorted events, departures of unknown jobs, and horizon
/// violations; propagates planning errors.
pub fn simulate_job_timeline(
    cfg: &OcsDynamicsConfig,
    events: &[JobEvent],
    horizon: Seconds,
) -> Result<OcsTimelineReport> {
    if horizon.value() <= 0.0 {
        return Err(MechanismError::Config("horizon must be positive".into()));
    }
    for w in events.windows(2) {
        if w[1].at() < w[0].at() {
            return Err(MechanismError::Config("events must be time-ordered".into()));
        }
    }
    if let Some(last) = events.last() {
        if last.at() > horizon {
            return Err(MechanismError::Config("event beyond the horizon".into()));
        }
    }

    let topo = three_tier_fat_tree(cfg.k, cfg.link_speed)?;
    let all_switches = topo.switches().len();
    let all_on_power = cfg.switch_power * all_switches as f64;

    let replan = |jobs: &[(Job, Placement)]| -> Result<OcsPlan> {
        plan(&topo, jobs, cfg.switch_power, cfg.mode, cfg.use_ocs)
    };
    let powered = |p: &OcsPlan| -> f64 {
        (p.active_switches.len() + cfg.standby_switches).min(all_switches) as f64
    };

    let mut jobs: Vec<(Job, Placement)> = Vec::new();
    let mut current = replan(&jobs)?;
    let mut t = Seconds::ZERO;
    let mut energy = Joules::ZERO;
    let mut switch_seconds = 0.0;
    let mut reconfig_time = Seconds::ZERO;
    let mut reconfigs = 0usize;

    for ev in events {
        let at = ev.at();
        let dt = at - t;
        let n_on = powered(&current);
        energy += (cfg.switch_power * n_on + current_ocs_power(&current)) * dt;
        switch_seconds += n_on * dt.value();

        match ev {
            JobEvent::Arrive { job, placement, .. } => {
                jobs.push((job.clone(), *placement));
            }
            JobEvent::Depart { name, .. } => {
                let before = jobs.len();
                jobs.retain(|(j, _)| &j.name != name);
                if jobs.len() == before {
                    return Err(MechanismError::Config(format!(
                        "departure of unknown job {name:?}"
                    )));
                }
            }
        }
        let next = replan(&jobs)?;
        // Make-before-break: both switch sets powered during the OCS
        // sweep. (Without OCS the replan is instantaneous in this model:
        // turning switches on/off has no fabric-wide blackout.)
        if cfg.use_ocs {
            let union = current.active_switches.union(&next.active_switches).count() as f64
                + cfg.standby_switches as f64;
            let dt_reconf = next.reconfiguration;
            energy += (cfg.switch_power * union.min(all_switches as f64)
                + current_ocs_power(&next))
                * dt_reconf;
            switch_seconds += union.min(all_switches as f64) * dt_reconf.value();
            reconfig_time += dt_reconf;
        }
        reconfigs += 1;
        current = next;
        t = at;
    }

    // Tail segment to the horizon.
    let dt = horizon - t;
    let n_on = powered(&current);
    energy += (cfg.switch_power * n_on + current_ocs_power(&current)) * dt;
    switch_seconds += n_on * dt.value();

    let energy_all_on = all_on_power * horizon;
    Ok(OcsTimelineReport {
        horizon,
        reconfigurations: reconfigs,
        reconfiguration_time: reconfig_time,
        energy,
        energy_all_on,
        savings: Ratio::new(1.0 - energy / energy_all_on),
        avg_switches_on: switch_seconds / horizon.value(),
    })
}

/// The OCS control power currently charged (zero when no circuits).
fn current_ocs_power(p: &OcsPlan) -> Watts {
    if p.circuits.is_empty() {
        Watts::ZERO
    } else {
        npp_topology::ocs::OcsSpec::off_the_shelf(2 * p.circuits.len().max(16)).power
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npp_units::Gbps;
    use npp_workload::parallelism::TrafficMatrix;

    fn ring_job(name: &str, ranks: usize) -> Job {
        let ring: Vec<usize> = (0..ranks).collect();
        Job::from_matrix(
            name,
            &TrafficMatrix::ring(ranks, &ring, Gbps::new(100.0)).unwrap(),
        )
    }

    fn day() -> Seconds {
        Seconds::from_hours(24.0)
    }

    #[test]
    fn empty_fabric_runs_on_standby_only() {
        let cfg = OcsDynamicsConfig::default();
        let r = simulate_job_timeline(&cfg, &[], day()).unwrap();
        assert_eq!(r.reconfigurations, 0);
        assert!((r.avg_switches_on - cfg.standby_switches as f64).abs() < 1e-9);
        assert!(r.savings.fraction() > 0.95, "savings {}", r.savings);
    }

    #[test]
    fn job_day_timeline() {
        let cfg = OcsDynamicsConfig::default();
        let events = vec![
            JobEvent::Arrive {
                at: Seconds::from_hours(1.0),
                job: ring_job("a", 32),
                placement: Placement::Packed,
            },
            JobEvent::Arrive {
                at: Seconds::from_hours(6.0),
                job: ring_job("b", 16),
                placement: Placement::Packed,
            },
            JobEvent::Depart {
                at: Seconds::from_hours(18.0),
                name: "a".into(),
            },
        ];
        let r = simulate_job_timeline(&cfg, &events, day()).unwrap();
        assert_eq!(r.reconfigurations, 3);
        // OCS sweeps cost 25 ms each, and only replans that establish
        // circuits pay it (intra-pod jobs don't need the OCS at all).
        assert!(r.reconfiguration_time.as_millis() <= 75.0 + 1e-6);
        // The fabric never needs more than a fraction of its 80 switches.
        assert!(r.avg_switches_on < 30.0, "avg on {}", r.avg_switches_on);
        assert!(r.savings.fraction() > 0.6, "savings {}", r.savings);
        assert!(r.energy < r.energy_all_on);
    }

    #[test]
    fn standby_costs_energy() {
        let events = vec![JobEvent::Arrive {
            at: Seconds::ZERO,
            job: ring_job("a", 16),
            placement: Placement::Packed,
        }];
        let lean = simulate_job_timeline(
            &OcsDynamicsConfig {
                standby_switches: 0,
                ..OcsDynamicsConfig::default()
            },
            &events,
            day(),
        )
        .unwrap();
        let warm = simulate_job_timeline(
            &OcsDynamicsConfig {
                standby_switches: 8,
                ..OcsDynamicsConfig::default()
            },
            &events,
            day(),
        )
        .unwrap();
        assert!(warm.energy > lean.energy);
        assert!(warm.avg_switches_on > lean.avg_switches_on + 7.0);
    }

    #[test]
    fn reconfiguration_overhead_is_negligible_for_long_jobs() {
        // §4.2's argument quantified: even 10 replans cost < 0.01% of a
        // day in make-before-break time.
        let cfg = OcsDynamicsConfig::default();
        let mut events = Vec::new();
        for i in 0..5 {
            events.push(JobEvent::Arrive {
                at: Seconds::from_hours(i as f64),
                job: ring_job(&format!("j{i}"), 8),
                placement: Placement::Packed,
            });
        }
        for i in 0..5 {
            events.push(JobEvent::Depart {
                at: Seconds::from_hours(12.0 + i as f64),
                name: format!("j{i}"),
            });
        }
        let r = simulate_job_timeline(&cfg, &events, day()).unwrap();
        assert_eq!(r.reconfigurations, 10);
        assert!(r.reconfiguration_time.value() / r.horizon.value() < 1e-4);
    }

    #[test]
    fn validation() {
        let cfg = OcsDynamicsConfig::default();
        assert!(simulate_job_timeline(&cfg, &[], Seconds::ZERO).is_err());
        let unsorted = vec![
            JobEvent::Arrive {
                at: Seconds::from_hours(2.0),
                job: ring_job("a", 8),
                placement: Placement::Packed,
            },
            JobEvent::Arrive {
                at: Seconds::from_hours(1.0),
                job: ring_job("b", 8),
                placement: Placement::Packed,
            },
        ];
        assert!(simulate_job_timeline(&cfg, &unsorted, day()).is_err());
        let unknown = vec![JobEvent::Depart {
            at: Seconds::from_hours(1.0),
            name: "x".into(),
        }];
        assert!(simulate_job_timeline(&cfg, &unknown, day()).is_err());
        let beyond = vec![JobEvent::Arrive {
            at: Seconds::from_hours(30.0),
            job: ring_job("a", 8),
            placement: Placement::Packed,
        }];
        assert!(simulate_job_timeline(&cfg, &beyond, day()).is_err());
    }
}
