//! Rate adaptation (§4.3): scaling pipeline frequency to the load.
//!
//! The paper's observation: DVFS-style scaling exists in switches today
//! but only *globally* — all pipelines share the ASIC clock. The proposal
//! is per-pipeline clocks. This module implements a measurement-driven
//! controller in both modes over the `npp-simnet` pipeline switch so the
//! two can be compared on identical traffic.
//!
//! The controller is deliberately simple (the paper proposes no specific
//! algorithm): every control interval it measures each pipeline's offered
//! load and sets the frequency to `load / target_utilization`, clamped to
//! `[min_freq, 1]`. Global mode applies the *maximum* pipeline load to
//! every pipeline — it must, or the hottest pipeline would drop packets,
//! which is exactly why global scaling saves so little on skewed traffic.

use serde::{Deserialize, Serialize};

use npp_simnet::sources::{Arrival, TrafficSource};
use npp_simnet::switchsim::{PipelineSwitch, SwitchParams};
use npp_simnet::SimTime;
use npp_units::{Joules, Ratio, Seconds, Watts};

use crate::{MechanismError, Result};

/// Controller configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateAdaptConfig {
    /// Control-loop interval, ns.
    pub control_interval_ns: u64,
    /// Utilization headroom target: frequency is sized so measured load
    /// lands at this utilization (e.g. 0.8).
    pub target_utilization: f64,
    /// Frequency floor (clocks cannot stop entirely while on).
    pub min_freq: f64,
    /// Per-pipeline clocks (the §4.3 proposal) vs. one global clock
    /// (today's hardware).
    pub per_pipeline: bool,
}

impl RateAdaptConfig {
    /// A reasonable default: 100 µs control interval, 80 % target
    /// utilization, 20 % frequency floor.
    pub fn default_per_pipeline() -> Self {
        Self {
            control_interval_ns: 100_000,
            target_utilization: 0.8,
            min_freq: 0.2,
            per_pipeline: true,
        }
    }

    /// The same controller restricted to a global clock.
    pub fn default_global() -> Self {
        Self {
            per_pipeline: false,
            ..Self::default_per_pipeline()
        }
    }

    fn validate(&self) -> Result<()> {
        if self.control_interval_ns == 0 {
            return Err(MechanismError::Config(
                "control interval must be positive".into(),
            ));
        }
        if !(0.0 < self.target_utilization && self.target_utilization <= 1.0) {
            return Err(MechanismError::Config(format!(
                "target utilization {} outside (0, 1]",
                self.target_utilization
            )));
        }
        if !(0.0 < self.min_freq && self.min_freq <= 1.0) {
            return Err(MechanismError::Config(format!(
                "min_freq {} outside (0, 1]",
                self.min_freq
            )));
        }
        Ok(())
    }
}

/// Outcome of a rate-adaptation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateAdaptReport {
    /// Simulated duration.
    pub duration: Seconds,
    /// Energy with the controller active.
    pub energy: Joules,
    /// Energy of the same switch with all pipelines at full frequency.
    pub energy_all_on: Joules,
    /// Relative saving.
    pub savings: Ratio,
    /// Time-averaged power.
    pub average_power: Watts,
    /// Packet loss rate.
    pub loss_rate: f64,
    /// Mean switch latency, ns.
    pub mean_latency_ns: f64,
    /// 99th-percentile switch latency, ns.
    pub p99_latency_ns: f64,
    /// Number of frequency updates applied.
    pub freq_updates: u64,
}

/// Runs the rate-adaptation controller over `source` until `horizon`.
///
/// # Errors
///
/// Propagates configuration and simulator errors.
pub fn simulate_rate_adaptation(
    params: SwitchParams,
    cfg: &RateAdaptConfig,
    source: &mut dyn TrafficSource,
    horizon: SimTime,
) -> Result<RateAdaptReport> {
    simulate_rate_adaptation_full(params, cfg, source, horizon).map(|(report, _)| report)
}

/// Like [`simulate_rate_adaptation`], but also returns the simulated
/// switch so callers can replay its per-pipeline power timelines (the
/// PowerScope exporter feeds them into a windowed residency recorder).
///
/// # Errors
///
/// Propagates configuration and simulator errors.
pub fn simulate_rate_adaptation_full(
    params: SwitchParams,
    cfg: &RateAdaptConfig,
    source: &mut dyn TrafficSource,
    horizon: SimTime,
) -> Result<(RateAdaptReport, PipelineSwitch)> {
    cfg.validate()?;
    if horizon == SimTime::ZERO {
        return Err(MechanismError::Config("horizon must be positive".into()));
    }
    let mut sw = PipelineSwitch::new(params, SimTime::ZERO)?;
    let pipelines = params.pipelines;
    let mut interval_bytes = vec![0u64; pipelines];
    let mut next_control = SimTime::from_nanos(cfg.control_interval_ns);
    let mut freq_updates = 0u64;
    // Interval capacity of one pipeline at full frequency, in bytes.
    let interval_capacity = params.pipeline_rate.value() * cfg.control_interval_ns as f64 / 8.0;

    let mut pending = source.next_arrival();
    loop {
        // Apply control decisions due before the next arrival.
        let next_arrival_at = pending.map(|a| a.at).unwrap_or(SimTime::MAX);
        while next_control <= next_arrival_at.min(horizon) {
            let loads: Vec<f64> = interval_bytes
                .iter()
                .map(|&b| b as f64 / interval_capacity)
                .collect();
            let target = |load: f64| (load / cfg.target_utilization).clamp(cfg.min_freq, 1.0);
            if cfg.per_pipeline {
                for (i, &load) in loads.iter().enumerate() {
                    sw.set_frequency(next_control, i, target(load))?;
                    freq_updates += 1;
                }
            } else {
                let max_load = loads.iter().cloned().fold(0.0, f64::max);
                let f = target(max_load);
                for i in 0..pipelines {
                    sw.set_frequency(next_control, i, f)?;
                    freq_updates += 1;
                }
            }
            interval_bytes.iter_mut().for_each(|b| *b = 0);
            npp_telemetry::trace_event!(
                "rate_adapt.control_tick",
                next_control.as_nanos(),
                pipelines as f64
            );
            next_control = next_control.plus_nanos(cfg.control_interval_ns);
        }

        let Some(Arrival { at, bytes, port }) = pending else {
            break;
        };
        if at >= horizon {
            break;
        }
        let pipe = sw.port_pipeline(port % params.ports)?;
        if let Some(b) = interval_bytes.get_mut(pipe) {
            *b += bytes;
        }
        sw.ingress(at, port % params.ports, bytes)?;
        pending = source.next_arrival();
    }

    npp_telemetry::metrics::counter_add("rate_adapt.freq_updates", freq_updates);
    let report = sw.finish(horizon)?;
    let energy_all_on = params.max_power() * horizon.as_seconds();
    let summary = RateAdaptReport {
        duration: horizon.as_seconds(),
        energy: report.energy,
        energy_all_on,
        savings: Ratio::new(1.0 - report.energy / energy_all_on),
        average_power: report.average_power,
        loss_rate: report.loss.loss_rate(),
        mean_latency_ns: report.mean_latency_ns,
        p99_latency_ns: report.p99_latency_ns,
        freq_updates,
    };
    Ok((summary, sw))
}

/// The proportionality a rate-adapted switch converges to at zero load:
/// pipelines at the frequency floor, chassis overhead untouched.
pub fn idle_floor_proportionality(params: &SwitchParams, cfg: &RateAdaptConfig) -> Ratio {
    let idle = params.overhead_power
        + params.pipeline_power.at_freq(cfg.min_freq) * params.pipelines as f64;
    Ratio::new(1.0 - idle / params.max_power())
}

#[cfg(test)]
mod tests {
    use super::*;
    use npp_simnet::sources::{CbrSource, OnOffSource};
    use npp_units::Gbps;

    fn params() -> SwitchParams {
        SwitchParams::paper_51t2()
    }

    #[test]
    fn idle_switch_drops_to_frequency_floor() {
        let cfg = RateAdaptConfig::default_per_pipeline();
        // A source that never fires within the horizon.
        let mut src = CbrSource::new(
            Gbps::new(1.0),
            100,
            0,
            SimTime::from_secs(10),
            SimTime::from_secs(20),
        )
        .unwrap();
        let r =
            simulate_rate_adaptation(params(), &cfg, &mut src, SimTime::from_millis(10)).unwrap();
        // Idle power: 198 + 4×(38 + 0.2·100) = 430 W vs 750 W max.
        let idle_frac = r.average_power.value() / 750.0;
        assert!(
            (idle_frac - 430.0 / 750.0).abs() < 0.02,
            "avg {}",
            r.average_power
        );
        assert!(r.savings.fraction() > 0.4, "savings {}", r.savings);
        assert_eq!(r.loss_rate, 0.0);
    }

    #[test]
    fn skewed_load_per_pipeline_beats_global() {
        // All traffic on port 0 → pipeline 0 hot, pipelines 1–3 idle.
        // Per-pipeline scaling parks the clocks of 1–3 at the floor;
        // global scaling must keep every clock fast.
        let mk = || {
            CbrSource::new(
                Gbps::from_tbps(9.0), // ~70% of one pipeline
                9000,
                0,
                SimTime::ZERO,
                SimTime::from_millis(10),
            )
            .unwrap()
        };
        let horizon = SimTime::from_millis(10);
        let per = simulate_rate_adaptation(
            params(),
            &RateAdaptConfig::default_per_pipeline(),
            &mut mk(),
            horizon,
        )
        .unwrap();
        let global = simulate_rate_adaptation(
            params(),
            &RateAdaptConfig::default_global(),
            &mut mk(),
            horizon,
        )
        .unwrap();
        assert!(
            per.savings.fraction() > global.savings.fraction() + 0.1,
            "per {} vs global {}",
            per.savings,
            global.savings
        );
        assert_eq!(per.loss_rate, 0.0);
        assert_eq!(global.loss_rate, 0.0);
    }

    #[test]
    fn ml_bursts_save_during_compute_phase() {
        let cfg = RateAdaptConfig::default_per_pipeline();
        // 1 ms iterations, 10% communication at 2 Tbps — below the
        // frequency floor's 2.56 Tbps capacity, so bursts fit even before
        // the controller ramps up.
        let mut src = OnOffSource::new(
            1_000_000,
            900_000,
            Gbps::from_tbps(2.0),
            8000,
            0,
            SimTime::from_millis(20),
        )
        .unwrap();
        let r =
            simulate_rate_adaptation(params(), &cfg, &mut src, SimTime::from_millis(20)).unwrap();
        assert!(r.savings.fraction() > 0.3, "savings {}", r.savings);
        assert!(r.loss_rate < 0.01, "loss {}", r.loss_rate);
        assert!(r.freq_updates > 0);
    }

    #[test]
    fn reactive_ramp_up_loses_packets_on_hard_bursts() {
        // §4.3's challenge made visible: a 6.4 Tbps burst landing on a
        // pipeline clocked at the 0.2 floor (2.56 Tbps) overwhelms the
        // buffer before the next control tick can ramp the clock.
        let cfg = RateAdaptConfig::default_per_pipeline();
        let mut src = OnOffSource::new(
            1_000_000,
            900_000,
            Gbps::from_tbps(6.4),
            8000,
            0,
            SimTime::from_millis(10),
        )
        .unwrap();
        let r =
            simulate_rate_adaptation(params(), &cfg, &mut src, SimTime::from_millis(10)).unwrap();
        assert!(
            r.loss_rate > 0.05,
            "expected burst-front loss, got {}",
            r.loss_rate
        );
        // Still saves energy — the trade-off is real, not one-sided.
        assert!(r.savings.fraction() > 0.2, "savings {}", r.savings);
    }

    #[test]
    fn adaptation_does_not_melt_latency_under_load() {
        let cfg = RateAdaptConfig::default_per_pipeline();
        let mut src = CbrSource::new(
            Gbps::from_tbps(10.0),
            10_000,
            0,
            SimTime::ZERO,
            SimTime::from_millis(5),
        )
        .unwrap();
        let r =
            simulate_rate_adaptation(params(), &cfg, &mut src, SimTime::from_millis(5)).unwrap();
        // At ~78% of pipeline rate with target 0.8 the clock stays near
        // max; the p99 latency must stay modest (< 1 ms).
        assert!(r.p99_latency_ns < 1_000_000.0, "p99 {}", r.p99_latency_ns);
        assert!(r.loss_rate < 0.05, "loss {}", r.loss_rate);
    }

    #[test]
    fn idle_floor_proportionality_value() {
        let p = idle_floor_proportionality(&params(), &RateAdaptConfig::default_per_pipeline());
        // 1 − 430/750 ≈ 0.427: better than 10% but far from compute's 85%
        // — rate adaptation alone cannot fix proportionality (§4.4's
        // motivation for parking).
        assert!((p.fraction() - (1.0 - 430.0 / 750.0)).abs() < 1e-9);
    }

    #[test]
    fn config_validation() {
        let mut src = CbrSource::new(Gbps::new(1.0), 100, 0, SimTime::ZERO, SimTime::MAX).unwrap();
        let bad = RateAdaptConfig {
            control_interval_ns: 0,
            ..RateAdaptConfig::default_global()
        };
        assert!(simulate_rate_adaptation(params(), &bad, &mut src, SimTime::from_secs(1)).is_err());
        let bad = RateAdaptConfig {
            target_utilization: 0.0,
            ..RateAdaptConfig::default_global()
        };
        assert!(simulate_rate_adaptation(params(), &bad, &mut src, SimTime::from_secs(1)).is_err());
        let bad = RateAdaptConfig {
            min_freq: 1.5,
            ..RateAdaptConfig::default_global()
        };
        assert!(simulate_rate_adaptation(params(), &bad, &mut src, SimTime::from_secs(1)).is_err());
        let good = RateAdaptConfig::default_global();
        assert!(simulate_rate_adaptation(params(), &good, &mut src, SimTime::ZERO).is_err());
    }
}
