//! # npp-mechanisms
//!
//! Executable models of every mechanism §4 of *"It Is Time to Address
//! Network Power Proportionality"* proposes (plus the historical EEE
//! baseline the paper starts from), built on the `npp-simnet` substrate:
//!
//! - [`eee`] — 802.3az Energy Efficient Ethernet (low-power idle with
//!   sleep/wake transitions), the 2010s link-sleeping approach; the module
//!   also demonstrates *why* it became obsolete at modern line rates;
//! - [`knobs`] — §4.1 static optimization: exposing power-gating knobs,
//!   C-state catalogs, and the gap between software-exposed and
//!   physically-possible savings (including the "port down in software
//!   but powered in hardware" bug the paper cites);
//! - [`ocs_sched`] — §4.2 static optimization: concentrating traffic with
//!   a job scheduler and tailoring the topology with optical circuit
//!   switches so unused switches can be turned off;
//! - [`rate_adapt`] — §4.3 dynamic optimization: per-pipeline frequency
//!   scaling (vs. today's global-only scaling), driven by measured load;
//! - [`pipeline_park`] — §4.4 dynamic optimization: turning whole
//!   pipelines off behind a circuit-switch indirection layer (Figure 5),
//!   with reactive and predictive policies;
//! - [`redesign`] — §4.5: the clean-slate options — many small
//!   pipelines/chiplets (granularity sweep) and co-packaged optics;
//! - [`comparison`] — a harness running all mechanisms on a common
//!   workload and reporting the achieved effective proportionality.
//!
//! ```
//! use npp_mechanisms::knobs::{apply_profile, DeploymentProfile};
//!
//! // §4.1: today's firmware exposes none of the physically possible
//! // savings for an underutilized L2 leaf.
//! let r = apply_profile(&DeploymentProfile::l2_leaf_today()).unwrap();
//! assert_eq!(r.exposed_savings.percent(), 0.0);
//! assert!(r.physical_savings.percent() > 25.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comparison;
pub mod eee;
pub mod fabric;
pub mod governor;
pub mod isp_study;
pub mod knobs;
pub mod mechanism;
pub mod ocs_dynamics;
pub mod ocs_sched;
pub mod pipeline_park;
pub mod rate_adapt;
pub mod redesign;

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum MechanismError {
    /// Propagated simulator error.
    Sim(npp_simnet::SimError),
    /// Propagated power-model error.
    Power(npp_power::PowerError),
    /// Propagated topology error.
    Topology(npp_topology::TopologyError),
    /// Propagated workload error.
    Workload(npp_workload::WorkloadError),
    /// Invalid mechanism configuration.
    Config(String),
}

impl core::fmt::Display for MechanismError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MechanismError::Sim(e) => write!(f, "simulation: {e}"),
            MechanismError::Power(e) => write!(f, "power model: {e}"),
            MechanismError::Topology(e) => write!(f, "topology: {e}"),
            MechanismError::Workload(e) => write!(f, "workload: {e}"),
            MechanismError::Config(msg) => write!(f, "invalid mechanism config: {msg}"),
        }
    }
}

impl std::error::Error for MechanismError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MechanismError::Sim(e) => Some(e),
            MechanismError::Power(e) => Some(e),
            MechanismError::Topology(e) => Some(e),
            MechanismError::Workload(e) => Some(e),
            MechanismError::Config(_) => None,
        }
    }
}

impl From<npp_simnet::SimError> for MechanismError {
    fn from(e: npp_simnet::SimError) -> Self {
        MechanismError::Sim(e)
    }
}
impl From<npp_power::PowerError> for MechanismError {
    fn from(e: npp_power::PowerError) -> Self {
        MechanismError::Power(e)
    }
}
impl From<npp_topology::TopologyError> for MechanismError {
    fn from(e: npp_topology::TopologyError) -> Self {
        MechanismError::Topology(e)
    }
}
impl From<npp_workload::WorkloadError> for MechanismError {
    fn from(e: npp_workload::WorkloadError) -> Self {
        MechanismError::Workload(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, MechanismError>;
