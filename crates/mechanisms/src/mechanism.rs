//! Uniform naming and construction of the §4 dynamic mechanisms.
//!
//! The comparison harness ([`crate::comparison`]) hard-codes the set of
//! mechanisms it runs; external drivers (the `npp-sweep` engine, spec
//! files on disk) need to *name* a mechanism and get a runnable
//! configuration back. [`Mechanism`] is that factory: a serializable
//! enum covering every dynamic §4 mechanism, each expanding to the same
//! configuration the comparison table uses, with the two headline knobs
//! (control interval and target utilization) overridable per run.

use serde::{Deserialize, Serialize};

use npp_simnet::sources::TrafficSource;
use npp_simnet::switchsim::SwitchParams;
use npp_simnet::SimTime;
use npp_units::Ratio;

use crate::comparison::MechanismOutcome;
use crate::pipeline_park::{
    park_floor_proportionality, simulate_parking_full, ParkConfig, PredictiveSchedule,
};
use crate::rate_adapt::{
    idle_floor_proportionality, simulate_rate_adaptation_full, RateAdaptConfig,
};
use crate::{MechanismError, Result};
use npp_simnet::switchsim::PipelineSwitch;

/// Knobs shared by every dynamic mechanism (§4.3/§4.4 controllers).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MechanismKnobs {
    /// Control-loop interval, ns.
    pub control_interval_ns: u64,
    /// Utilization headroom target in `(0, 1]`.
    pub target_utilization: f64,
}

impl Default for MechanismKnobs {
    fn default() -> Self {
        // Matches RateAdaptConfig::default_per_pipeline / ParkConfig::reactive.
        Self {
            control_interval_ns: 100_000,
            target_utilization: 0.8,
        }
    }
}

/// Every dynamic §4 mechanism, nameable from a spec file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mechanism {
    /// Today's operating point: every pipeline on, full clock.
    AllOn,
    /// §4.3 rate adaptation restricted to the shared ASIC clock.
    RateAdaptGlobal,
    /// §4.3 per-pipeline rate adaptation.
    RateAdaptPerPipeline,
    /// §4.4 reactive pipeline parking.
    ParkReactive,
    /// §4.4 predictive pipeline parking (known ML iteration schedule).
    ParkPredictive,
}

impl Mechanism {
    /// Every mechanism, in the comparison table's order.
    pub fn all() -> [Mechanism; 5] {
        [
            Mechanism::AllOn,
            Mechanism::RateAdaptGlobal,
            Mechanism::RateAdaptPerPipeline,
            Mechanism::ParkReactive,
            Mechanism::ParkPredictive,
        ]
    }

    /// Human-readable name, matching the comparison table labels.
    pub fn name(self) -> &'static str {
        match self {
            Mechanism::AllOn => "all-on (today)",
            Mechanism::RateAdaptGlobal => "rate adaptation (global clock)",
            Mechanism::RateAdaptPerPipeline => "rate adaptation (per-pipeline)",
            Mechanism::ParkReactive => "pipeline parking (reactive)",
            Mechanism::ParkPredictive => "pipeline parking (predictive)",
        }
    }

    /// Parses the spec-file identifier (the serialized variant name).
    ///
    /// # Errors
    ///
    /// Returns [`MechanismError::Config`] for unknown names.
    pub fn from_ident(ident: &str) -> Result<Self> {
        match ident {
            "AllOn" => Ok(Mechanism::AllOn),
            "RateAdaptGlobal" => Ok(Mechanism::RateAdaptGlobal),
            "RateAdaptPerPipeline" => Ok(Mechanism::RateAdaptPerPipeline),
            "ParkReactive" => Ok(Mechanism::ParkReactive),
            "ParkPredictive" => Ok(Mechanism::ParkPredictive),
            other => Err(MechanismError::Config(format!(
                "unknown mechanism {other:?}"
            ))),
        }
    }

    /// Runs this mechanism on `source` and reports the same outcome row
    /// the comparison harness produces.
    ///
    /// The predictive parking schedule is the comparison harness's ML
    /// schedule (1 ms iterations, 100 µs burst, 200 µs pre-wake); the
    /// reactive/adaptive controllers take their interval and target
    /// from `knobs`.
    ///
    /// # Errors
    ///
    /// Propagates configuration and simulator errors.
    pub fn run(
        self,
        params: SwitchParams,
        knobs: MechanismKnobs,
        source: &mut dyn TrafficSource,
        horizon: SimTime,
    ) -> Result<MechanismOutcome> {
        self.run_full(params, knobs, source, horizon)
            .map(|(outcome, _)| outcome)
    }

    /// Like [`Mechanism::run`], but also returns the simulated switch so
    /// callers can replay its power timelines into the PowerScope
    /// recorder (`npp_simnet::powerscope`).
    ///
    /// For [`Mechanism::AllOn`] the switch is a freshly constructed
    /// full-power instance with no traffic applied — its timelines are
    /// flat at peak, which is exactly the all-on power profile.
    ///
    /// # Errors
    ///
    /// Propagates configuration and simulator errors.
    pub fn run_full(
        self,
        params: SwitchParams,
        knobs: MechanismKnobs,
        source: &mut dyn TrafficSource,
        horizon: SimTime,
    ) -> Result<(MechanismOutcome, PipelineSwitch)> {
        match self {
            Mechanism::AllOn => {
                let outcome = MechanismOutcome {
                    name: self.name().into(),
                    savings: Ratio::ZERO,
                    proportionality_floor: Ratio::ZERO,
                    loss_rate: 0.0,
                    p99_latency_ns: 0.0,
                };
                let sw = PipelineSwitch::new(params, SimTime::ZERO)?;
                Ok((outcome, sw))
            }
            Mechanism::RateAdaptGlobal | Mechanism::RateAdaptPerPipeline => {
                let cfg = RateAdaptConfig {
                    control_interval_ns: knobs.control_interval_ns,
                    target_utilization: knobs.target_utilization,
                    per_pipeline: self == Mechanism::RateAdaptPerPipeline,
                    ..RateAdaptConfig::default_per_pipeline()
                };
                let (r, sw) = simulate_rate_adaptation_full(params, &cfg, source, horizon)?;
                let outcome = MechanismOutcome {
                    name: self.name().into(),
                    savings: r.savings,
                    proportionality_floor: idle_floor_proportionality(&params, &cfg),
                    loss_rate: r.loss_rate,
                    p99_latency_ns: r.p99_latency_ns,
                };
                Ok((outcome, sw))
            }
            Mechanism::ParkReactive | Mechanism::ParkPredictive => {
                let schedule = (self == Mechanism::ParkPredictive).then_some(PredictiveSchedule {
                    period_ns: 1_000_000,
                    burst_start_ns: 900_000,
                    burst_len_ns: 100_000,
                    prewake_ns: 200_000,
                });
                let cfg = ParkConfig {
                    control_interval_ns: knobs.control_interval_ns,
                    target_utilization: knobs.target_utilization,
                    schedule,
                    ..ParkConfig::reactive()
                };
                let (r, sw) = simulate_parking_full(params, &cfg, source, horizon)?;
                let outcome = MechanismOutcome {
                    name: self.name().into(),
                    savings: r.savings,
                    proportionality_floor: park_floor_proportionality(&params, 0),
                    loss_rate: r.loss_rate,
                    p99_latency_ns: r.p99_latency_ns,
                };
                Ok((outcome, sw))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comparison::{compare_mechanisms, ml_workload};

    const HORIZON: SimTime = SimTime::from_millis(5);

    #[test]
    fn factory_reproduces_comparison_table() {
        let params = SwitchParams::paper_51t2();
        let expected = compare_mechanisms(HORIZON).unwrap();
        for (mech, want) in Mechanism::all().into_iter().zip(&expected) {
            let got = mech
                .run(
                    params,
                    MechanismKnobs::default(),
                    &mut ml_workload(HORIZON),
                    HORIZON,
                )
                .unwrap();
            assert_eq!(&got, want, "{}", mech.name());
        }
    }

    #[test]
    fn idents_round_trip() {
        for mech in Mechanism::all() {
            let json = serde_json::to_string(&mech).unwrap();
            let back: Mechanism = serde_json::from_str(&json).unwrap();
            assert_eq!(back, mech);
            // The serialized form is the bare variant name.
            let ident = json.trim_matches('"');
            assert_eq!(Mechanism::from_ident(ident).unwrap(), mech);
        }
        assert!(Mechanism::from_ident("Nonsense").is_err());
    }

    #[test]
    fn knobs_change_outcomes() {
        let params = SwitchParams::paper_51t2();
        let loose = MechanismKnobs {
            control_interval_ns: 500_000,
            target_utilization: 0.5,
        };
        let a = Mechanism::RateAdaptPerPipeline
            .run(
                params,
                MechanismKnobs::default(),
                &mut ml_workload(HORIZON),
                HORIZON,
            )
            .unwrap();
        let b = Mechanism::RateAdaptPerPipeline
            .run(params, loose, &mut ml_workload(HORIZON), HORIZON)
            .unwrap();
        assert_ne!(a.savings, b.savings);
    }
}
