//! Scheduling network jobs (§4.2): concentrating traffic so unused
//! switches can be turned off, with optional OCS topology tailoring.
//!
//! Three levers, composable and individually measurable:
//!
//! 1. **Placement** — a job scheduler that packs a job's ranks onto
//!    adjacent hosts keeps its traffic inside few edge/agg switches;
//!    spreading ranks across pods lights up the whole fabric.
//! 2. **Routing concentration** — steering each demand onto one ECMP path
//!    (instead of spraying over all of them) leaves sibling switches
//!    untouched.
//! 3. **OCS bypass** — for stable inter-pod demands, an optical circuit
//!    switch patched between the aggregation and core layers can carry
//!    pod-to-pod traffic directly, removing the core switches from the
//!    active set at the cost of the OCS device power and a per-job
//!    reconfiguration delay.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use npp_topology::graph::{NodeId, Topology};
use npp_topology::ocs::OcsSpec;
use npp_units::{Ratio, Seconds, Watts};

use crate::{MechanismError, Result};

/// How a job's ranks are assigned to hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Consecutive hosts (the §4.2-friendly scheduler).
    Packed,
    /// Strided across the host list (locality-oblivious scheduler).
    Spread,
}

/// How demands are routed over ECMP path sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutingMode {
    /// Every demand takes the first shortest path (deterministic hashing
    /// tuned for concentration).
    Concentrated,
    /// Every demand is sprayed over all shortest paths (load balancing
    /// tuned for throughput).
    Sprayed,
}

/// A job: a rank count and the ordered pairs of ranks that exchange
/// traffic (extracted from a `npp_workload` traffic matrix).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Job name.
    pub name: String,
    /// Number of ranks.
    pub ranks: usize,
    /// Communicating (src, dst) rank pairs.
    pub pairs: Vec<(usize, usize)>,
}

impl Job {
    /// Builds a job from a traffic matrix, keeping pairs with nonzero
    /// demand.
    pub fn from_matrix(
        name: impl Into<String>,
        m: &npp_workload::parallelism::TrafficMatrix,
    ) -> Self {
        let n = m.ranks();
        let mut pairs = Vec::new();
        for s in 0..n {
            for d in 0..n {
                if s != d && m.get(s, d).value() > 0.0 {
                    pairs.push((s, d));
                }
            }
        }
        Self {
            name: name.into(),
            ranks: n,
            pairs,
        }
    }
}

/// The §4.2 plan for one cluster + job set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OcsPlan {
    /// Switches that must stay on.
    pub active_switches: BTreeSet<NodeId>,
    /// Switches that can be turned off.
    pub parked_switches: BTreeSet<NodeId>,
    /// Inter-pod circuits established on the OCS (by (src-switch,
    /// dst-switch) of the aggregation layer), empty without OCS.
    pub circuits: Vec<(NodeId, NodeId)>,
    /// Network power with the plan applied (switches + OCS).
    pub power: Watts,
    /// Network power with every switch on and no OCS.
    pub power_all_on: Watts,
    /// Relative saving.
    pub savings: Ratio,
    /// One-off reconfiguration latency when (re)applying the plan.
    pub reconfiguration: Seconds,
}

/// Assigns a job's ranks to hosts.
///
/// # Errors
///
/// Rejects jobs larger than the host pool.
pub fn place(topo: &Topology, job: &Job, placement: Placement) -> Result<Vec<NodeId>> {
    let hosts = topo.hosts();
    if job.ranks > hosts.len() {
        return Err(MechanismError::Config(format!(
            "job {} needs {} hosts, cluster has {}",
            job.name,
            job.ranks,
            hosts.len()
        )));
    }
    Ok(match placement {
        Placement::Packed => hosts[..job.ranks].to_vec(),
        Placement::Spread => {
            let stride = hosts.len() / job.ranks;
            (0..job.ranks).map(|r| hosts[r * stride.max(1)]).collect()
        }
    })
}

/// The switches touched when routing the given host-pair demands.
pub fn used_switches(
    topo: &Topology,
    demands: &[(NodeId, NodeId)],
    mode: RoutingMode,
) -> BTreeSet<NodeId> {
    let mut used = BTreeSet::new();
    for &(src, dst) in demands {
        let paths = match mode {
            RoutingMode::Concentrated => topo.ecmp_paths(src, dst, 1),
            RoutingMode::Sprayed => topo.ecmp_paths(src, dst, 1024),
        };
        for path in paths {
            for node in path {
                if topo.node(node).map(|n| n.kind.is_switch()).unwrap_or(false) {
                    used.insert(node);
                }
            }
        }
    }
    used
}

/// Builds the full §4.2 plan: place jobs, route their demands, and
/// (optionally) bypass the core with OCS circuits for inter-pod traffic.
///
/// The OCS model: each demand whose concentrated path crosses a core
/// switch gets its tier-0/1 endpoints patched directly through the OCS,
/// removing the core switches from the demand's path. The OCS charges its
/// control power and one reconfiguration per plan application.
///
/// # Errors
///
/// Propagates placement errors.
pub fn plan(
    topo: &Topology,
    jobs: &[(Job, Placement)],
    switch_power: Watts,
    mode: RoutingMode,
    use_ocs: bool,
) -> Result<OcsPlan> {
    // Gather host-pair demands for every job.
    let mut demands = Vec::new();
    for (job, placement) in jobs {
        let hosts = place(topo, job, *placement)?;
        for &(s, d) in &job.pairs {
            demands.push((hosts[s], hosts[d]));
        }
    }

    let mut active = used_switches(topo, &demands, mode);
    let mut circuits = Vec::new();
    let mut ocs_power = Watts::ZERO;
    let mut reconfiguration = Seconds::ZERO;

    if use_ocs {
        // For each demand whose path uses a core (tier-2) switch, patch an
        // agg→agg circuit and drop the cores it crossed.
        let mut bypassed: BTreeSet<NodeId> = BTreeSet::new();
        for &(src, dst) in &demands {
            for path in topo.ecmp_paths(src, dst, 1) {
                let cores: Vec<NodeId> = path
                    .iter()
                    .copied()
                    .filter(|&n| {
                        matches!(
                            topo.node(n).map(|x| x.kind),
                            Some(npp_topology::graph::NodeKind::Switch { tier: 2 })
                        )
                    })
                    .collect();
                if cores.is_empty() {
                    continue;
                }
                // The aggregation switches on either side of the core hop.
                let aggs: Vec<NodeId> = path
                    .iter()
                    .copied()
                    .filter(|&n| {
                        matches!(
                            topo.node(n).map(|x| x.kind),
                            Some(npp_topology::graph::NodeKind::Switch { tier: 1 })
                        )
                    })
                    .collect();
                if aggs.len() >= 2 {
                    let pair = (aggs[0], aggs[aggs.len() - 1]);
                    if !circuits.contains(&pair) {
                        circuits.push(pair);
                    }
                    bypassed.extend(cores);
                }
            }
        }
        // Cores only serving bypassed demands turn off.
        for core in &bypassed {
            active.remove(core);
        }
        if !circuits.is_empty() {
            let spec = OcsSpec::off_the_shelf(2 * circuits.len().max(16));
            ocs_power = spec.power;
            reconfiguration = spec.reconfiguration_time;
        }
    }

    if !circuits.is_empty() {
        npp_telemetry::metrics::counter_add("ocs.reconfigurations", 1);
        npp_telemetry::metrics::counter_add("ocs.circuits", circuits.len() as u64);
    }
    let all_switches: BTreeSet<NodeId> = topo.switches().into_iter().collect();
    let parked: BTreeSet<NodeId> = all_switches.difference(&active).copied().collect();
    let power = switch_power * active.len() as f64 + ocs_power;
    let power_all_on = switch_power * all_switches.len() as f64;
    Ok(OcsPlan {
        active_switches: active,
        parked_switches: parked,
        circuits,
        power,
        power_all_on,
        savings: Ratio::new(1.0 - power / power_all_on),
        reconfiguration,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use npp_topology::builder::three_tier_fat_tree;
    use npp_units::Gbps;
    use npp_workload::parallelism::TrafficMatrix;

    fn fabric() -> Topology {
        three_tier_fat_tree(4, Gbps::new(400.0)).unwrap()
    }

    fn ring_job(ranks: usize) -> Job {
        let ring: Vec<usize> = (0..ranks).collect();
        let m = TrafficMatrix::ring(ranks, &ring, Gbps::new(100.0)).unwrap();
        Job::from_matrix("ring", &m)
    }

    #[test]
    fn packed_intra_pod_job_parks_most_of_the_fabric() {
        // A 4-rank ring packed into one pod (k=4: 4 hosts per pod) touches
        // only that pod's 2 edge and ≤2 agg switches.
        let topo = fabric();
        let p = plan(
            &topo,
            &[(ring_job(4), Placement::Packed)],
            Watts::new(750.0),
            RoutingMode::Concentrated,
            false,
        )
        .unwrap();
        assert!(
            p.active_switches.len() <= 4,
            "active: {}",
            p.active_switches.len()
        );
        // 20 switches total → at least 16 park.
        assert!(p.parked_switches.len() >= 16);
        assert!(p.savings.fraction() > 0.75, "savings {}", p.savings);
    }

    #[test]
    fn spread_placement_lights_up_the_fabric() {
        let topo = fabric();
        let packed = plan(
            &topo,
            &[(ring_job(4), Placement::Packed)],
            Watts::new(750.0),
            RoutingMode::Concentrated,
            false,
        )
        .unwrap();
        let spread = plan(
            &topo,
            &[(ring_job(4), Placement::Spread)],
            Watts::new(750.0),
            RoutingMode::Concentrated,
            false,
        )
        .unwrap();
        assert!(
            spread.active_switches.len() > packed.active_switches.len(),
            "spread {} vs packed {}",
            spread.active_switches.len(),
            packed.active_switches.len()
        );
        assert!(spread.savings < packed.savings);
    }

    #[test]
    fn spraying_uses_more_switches_than_concentrating() {
        let topo = fabric();
        let job = ring_job(8); // spans 2 pods
        let conc = plan(
            &topo,
            &[(job.clone(), Placement::Packed)],
            Watts::new(750.0),
            RoutingMode::Concentrated,
            false,
        )
        .unwrap();
        let spray = plan(
            &topo,
            &[(job, Placement::Packed)],
            Watts::new(750.0),
            RoutingMode::Sprayed,
            false,
        )
        .unwrap();
        assert!(spray.active_switches.len() > conc.active_switches.len());
    }

    #[test]
    fn ocs_bypasses_core_for_inter_pod_jobs() {
        let topo = fabric();
        let job = ring_job(8); // spans pods 0 and 1 when packed
        let without = plan(
            &topo,
            &[(job.clone(), Placement::Packed)],
            Watts::new(750.0),
            RoutingMode::Concentrated,
            false,
        )
        .unwrap();
        let with = plan(
            &topo,
            &[(job, Placement::Packed)],
            Watts::new(750.0),
            RoutingMode::Concentrated,
            true,
        )
        .unwrap();
        assert!(!with.circuits.is_empty());
        assert!(
            with.active_switches.len() < without.active_switches.len(),
            "with OCS {} vs without {}",
            with.active_switches.len(),
            without.active_switches.len()
        );
        // OCS power is far below the cores it replaces.
        assert!(with.power < without.power);
        // Reconfiguration is tens of ms — fine for day-long jobs (§4.2).
        assert!(with.reconfiguration.as_millis() >= 10.0);
        assert!(with.reconfiguration.as_millis() <= 100.0);
    }

    #[test]
    fn intra_pod_job_gains_nothing_from_ocs() {
        let topo = fabric();
        let without = plan(
            &topo,
            &[(ring_job(4), Placement::Packed)],
            Watts::new(750.0),
            RoutingMode::Concentrated,
            false,
        )
        .unwrap();
        let with = plan(
            &topo,
            &[(ring_job(4), Placement::Packed)],
            Watts::new(750.0),
            RoutingMode::Concentrated,
            true,
        )
        .unwrap();
        assert!(with.circuits.is_empty());
        assert_eq!(with.power, without.power);
    }

    #[test]
    fn oversized_job_rejected() {
        let topo = fabric();
        assert!(plan(
            &topo,
            &[(ring_job(17), Placement::Packed)],
            Watts::new(750.0),
            RoutingMode::Concentrated,
            false,
        )
        .is_err());
    }

    #[test]
    fn multiple_jobs_union_their_footprints() {
        let topo = fabric();
        let two = plan(
            &topo,
            &[
                (ring_job(4), Placement::Packed),
                (ring_job(16), Placement::Packed),
            ],
            Watts::new(750.0),
            RoutingMode::Concentrated,
            false,
        )
        .unwrap();
        let one = plan(
            &topo,
            &[(ring_job(4), Placement::Packed)],
            Watts::new(750.0),
            RoutingMode::Concentrated,
            false,
        )
        .unwrap();
        assert!(two.active_switches.len() >= one.active_switches.len());
        assert!(two.active_switches.is_superset(&one.active_switches));
    }

    #[test]
    fn job_from_matrix_extracts_pairs() {
        let m = TrafficMatrix::ring(4, &[0, 1, 2, 3], Gbps::new(10.0)).unwrap();
        let j = Job::from_matrix("r", &m);
        assert_eq!(j.ranks, 4);
        assert_eq!(j.pairs.len(), 4);
        assert!(j.pairs.contains(&(3, 0)));
    }
}
