//! Exposing power knobs (§4.1): configuration-driven static gating.
//!
//! The paper's observations, each modeled here:
//!
//! 1. routers ship hardware "bloat" that stays powered even when the
//!    deployment cannot use it (full-FIB memory behind a route reflector,
//!    L3 blocks in an L2-only role);
//! 2. some knobs are user-controllable today — like shutting ports — but
//!    are *buggy*: ports disabled in software often keep drawing power in
//!    hardware;
//! 3. the fix the paper proposes is a catalog of vetted low-power modes
//!    (networking "C-states") instead of exposing raw component knobs.
//!
//! [`apply_profile`] derives a gating configuration from a deployment
//! profile and reports both the *exposed* savings (what today's NOS knobs
//! deliver, including the port bug) and the *physical* savings (what the
//! hardware could do if every knob were exposed and worked).

use serde::{Deserialize, Serialize};

use npp_power::gating::{switch_component_model, Component, GateState, SWITCH_PIPELINES};
use npp_power::Proportionality;
use npp_units::{Ratio, Watts};

use crate::{MechanismError, Result};

/// What a deployment actually needs from the switch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeploymentProfile {
    /// Ports in use out of the switch's total.
    pub ports_used: usize,
    /// Total ports.
    pub ports_total: usize,
    /// Whether L3 routing is required (false = pure L2 fabric role).
    pub l3_routing: bool,
    /// Whether the full routing table must be held locally (false when a
    /// route reflector serves most of the RIB — the paper's example).
    pub full_fib: bool,
    /// Whether the NOS actually powers down disabled ports in hardware.
    /// `false` models the bug reported by [15, 24]: ports down in
    /// software, still drawing power.
    pub port_gating_works: bool,
}

impl DeploymentProfile {
    /// A leaf running L2-only with half its ports connected, behind a
    /// route reflector, on today's buggy firmware.
    pub fn l2_leaf_today() -> Self {
        Self {
            ports_used: 32,
            ports_total: 64,
            l3_routing: false,
            full_fib: false,
            port_gating_works: false,
        }
    }

    /// The same deployment with fixed firmware.
    pub fn l2_leaf_fixed() -> Self {
        Self {
            port_gating_works: true,
            ..Self::l2_leaf_today()
        }
    }
}

/// The §4.1 what-if result for one deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnobReport {
    /// Full (ungated) switch power.
    pub max_power: Watts,
    /// Power with only the knobs today's NOS exposes (port shutdown —
    /// honoring the gating bug if present).
    pub exposed_power: Watts,
    /// Power if every physically gateable component were gated per the
    /// profile.
    pub physical_power: Watts,
    /// Savings from exposed knobs.
    pub exposed_savings: Ratio,
    /// Savings physically available.
    pub physical_savings: Ratio,
    /// Idle proportionality if the physical configuration were the
    /// device's idle state.
    pub physical_proportionality: Proportionality,
    /// The gated component tree (for inspection/printing).
    pub tree: Component,
}

/// Applies a deployment profile to the paper-calibrated switch component
/// model and reports exposed vs. physical savings.
///
/// Gating rules (assumptions documented in DESIGN.md):
///
/// - unused ports ⇒ their share of SerDes can be gated; a fraction of
///   whole pipelines equal to the unused-port fraction can be parked
///   (ports attach to pipelines in groups);
/// - no L3 ⇒ 40 % of match-action logic can be scaled out;
/// - partial FIB ⇒ half of the pipeline memory can be gated.
///
/// # Errors
///
/// Rejects inconsistent profiles (`ports_used > ports_total`).
pub fn apply_profile(profile: &DeploymentProfile) -> Result<KnobReport> {
    if profile.ports_total == 0 || profile.ports_used > profile.ports_total {
        return Err(MechanismError::Config(format!(
            "ports_used {} / ports_total {} is inconsistent",
            profile.ports_used, profile.ports_total
        )));
    }
    let mut tree = switch_component_model();
    let max_power = tree.max_power();

    let unused_fraction = 1.0 - profile.ports_used as f64 / profile.ports_total as f64;

    // --- Exposed knobs: port shutdown only. ---
    // With working gating, shutting a port frees its SerDes share; with
    // the bug, software-down ports keep burning power.
    let exposed_power = if profile.port_gating_works {
        for i in 0..SWITCH_PIPELINES {
            tree.set_state(
                &format!("asic/pipeline{i}/serdes"),
                GateState::Scaled(1.0 - unused_fraction),
            )
            .map_err(MechanismError::Power)?;
        }
        let p = tree.power();
        tree.reset();
        p
    } else {
        max_power
    };

    // --- Physical capability: everything §4.1 lists. ---
    // Whole pipelines park when their port group is entirely unused.
    let parked_pipelines = (unused_fraction * SWITCH_PIPELINES as f64).floor() as usize;
    for i in 0..parked_pipelines {
        tree.set_state(
            &format!("asic/pipeline{}", SWITCH_PIPELINES - 1 - i),
            GateState::Off,
        )
        .map_err(MechanismError::Power)?;
    }
    // Remaining pipelines: residual unused SerDes, L3 logic, FIB memory.
    let residual_unused = unused_fraction * SWITCH_PIPELINES as f64 - parked_pipelines as f64;
    let live = SWITCH_PIPELINES - parked_pipelines;
    for i in 0..live {
        let serdes_scale = if i == live - 1 {
            1.0 - residual_unused
        } else {
            1.0
        };
        tree.set_state(
            &format!("asic/pipeline{i}/serdes"),
            GateState::Scaled(serdes_scale),
        )
        .map_err(MechanismError::Power)?;
        if !profile.l3_routing {
            tree.set_state(&format!("asic/pipeline{i}/logic"), GateState::Scaled(0.6))
                .map_err(MechanismError::Power)?;
        }
        if !profile.full_fib {
            tree.set_state(&format!("asic/pipeline{i}/memory"), GateState::Scaled(0.5))
                .map_err(MechanismError::Power)?;
        }
    }
    let physical_power = tree.power();
    let physical_proportionality =
        Proportionality::from_idle_max(physical_power, max_power).map_err(MechanismError::Power)?;

    Ok(KnobReport {
        max_power,
        exposed_power,
        physical_power,
        exposed_savings: Ratio::new(1.0 - exposed_power / max_power),
        physical_savings: Ratio::new(1.0 - physical_power / max_power),
        physical_proportionality,
        tree,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buggy_firmware_exposes_nothing() {
        let r = apply_profile(&DeploymentProfile::l2_leaf_today()).unwrap();
        assert_eq!(r.exposed_power, r.max_power);
        assert!(r.exposed_savings.approx_eq(Ratio::ZERO, 1e-12));
        // The hardware could do much better — that gap is the paper's
        // §4.1 complaint.
        assert!(
            r.physical_savings.fraction() > 0.25,
            "{}",
            r.physical_savings
        );
    }

    #[test]
    fn fixed_firmware_recovers_port_serdes() {
        let r = apply_profile(&DeploymentProfile::l2_leaf_fixed()).unwrap();
        // Half the ports unused → half the SerDes power (4×75/2 = 150 W).
        assert!(r.exposed_power.approx_eq(Watts::new(750.0 - 150.0), 1e-9));
        assert!((r.exposed_savings.fraction() - 0.2).abs() < 1e-9);
        // Physical still beats exposed (pipelines, logic, memory).
        assert!(r.physical_savings > r.exposed_savings);
    }

    #[test]
    fn physical_configuration_for_l2_half_ports() {
        let r = apply_profile(&DeploymentProfile::l2_leaf_fixed()).unwrap();
        // 2 of 4 pipelines parked (half the ports unused), the rest with
        // L3 logic at 60% and FIB memory at 50%:
        // 198 overhead + 2×(75 + 0.6·45 + 0.5·18) = 198 + 2×111 = 420 W.
        assert!(
            r.physical_power.approx_eq(Watts::new(420.0), 1e-9),
            "{}",
            r.physical_power
        );
        assert!((r.physical_proportionality.fraction() - 0.44).abs() < 0.0001);
    }

    #[test]
    fn fully_used_switch_saves_only_config_knobs() {
        let profile = DeploymentProfile {
            ports_used: 64,
            ports_total: 64,
            l3_routing: true,
            full_fib: true,
            port_gating_works: true,
        };
        let r = apply_profile(&profile).unwrap();
        assert!(r.exposed_savings.approx_eq(Ratio::ZERO, 1e-12));
        assert!(r.physical_savings.approx_eq(Ratio::ZERO, 1e-12));
    }

    #[test]
    fn route_reflector_saves_fib_memory() {
        let with_fib = apply_profile(&DeploymentProfile {
            full_fib: true,
            ..DeploymentProfile::l2_leaf_fixed()
        })
        .unwrap();
        let without = apply_profile(&DeploymentProfile::l2_leaf_fixed()).unwrap();
        // Dropping the FIB halves memory power in live pipelines:
        // 2×18×0.5 = 18 W.
        assert!(
            (with_fib.physical_power - without.physical_power).approx_eq(Watts::new(18.0), 1e-9)
        );
    }

    #[test]
    fn invalid_profiles_rejected() {
        let bad = DeploymentProfile {
            ports_used: 65,
            ..DeploymentProfile::l2_leaf_today()
        };
        assert!(apply_profile(&bad).is_err());
        let bad = DeploymentProfile {
            ports_total: 0,
            ports_used: 0,
            ..DeploymentProfile::l2_leaf_today()
        };
        assert!(apply_profile(&bad).is_err());
    }

    #[test]
    fn report_tree_reflects_gating() {
        let r = apply_profile(&DeploymentProfile::l2_leaf_fixed()).unwrap();
        assert_eq!(
            r.tree.find("asic/pipeline3").unwrap().state(),
            GateState::Off
        );
    }
}
