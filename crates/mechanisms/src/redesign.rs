//! Redesigning the ASIC (§4.5): what if power proportionality were the
//! primary design objective?
//!
//! Two §4.5 ideas, quantified:
//!
//! 1. **Granularity** — replace the 4 big pipelines with many small ones
//!    (chiplets). Packet processing "reads from memory but writes little",
//!    so load distributes across units with limited overhead; more,
//!    smaller units can be parked to track load more closely. The cost is
//!    a per-unit overhead (duplicated SerDes framing, clocking, NoC
//!    interfaces), modeled as a fraction that grows with the unit count.
//! 2. **Co-packaged optics (CPO)** — move the optical conversion from
//!    pluggable transceivers into the switch package. Published CPO
//!    figures put the per-bit optics power at roughly half the pluggable
//!    level; and once the optics live next to the ASIC, adding the §4.4
//!    circuit-switch layer is "trivial", so the CPO model also exposes
//!    the parking floor it enables.

use serde::{Deserialize, Serialize};

use npp_simnet::switchsim::{PipelinePowerParams, SwitchParams};
use npp_units::{Gbps, Ratio, Watts};

use crate::{MechanismError, Result};

/// A redesigned switch with `units` equal processing units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RedesignedSwitch {
    /// Number of processing units (pipelines/chiplets).
    pub units: usize,
    /// Service rate of one unit.
    pub unit_rate: Gbps,
    /// Power of one unit (static + dynamic at full frequency).
    pub unit_power: Watts,
    /// Always-on chassis power.
    pub overhead: Watts,
}

/// Fraction of a unit's power that is per-unit overhead (interfaces,
/// clock distribution, NoC) as a function of the unit count. Calibrated
/// so the 4-pipeline baseline has the paper's 750 W and overhead grows
/// logarithmically with fragmentation: each doubling of the unit count
/// adds 6 % of the unit's power back as overhead.
pub fn fragmentation_overhead(units: usize) -> f64 {
    let doublings = (units as f64 / 4.0).log2().max(0.0);
    0.06 * doublings
}

impl RedesignedSwitch {
    /// Splits the paper-calibrated 51.2 Tbps switch into `units` equal
    /// units (power-of-two between 4 and 256), preserving aggregate
    /// capacity and charging [`fragmentation_overhead`].
    ///
    /// # Errors
    ///
    /// Rejects unit counts outside the supported range or not powers of
    /// two.
    pub fn from_baseline(units: usize) -> Result<Self> {
        if !(4..=256).contains(&units) || !units.is_power_of_two() {
            return Err(MechanismError::Config(format!(
                "unit count {units} must be a power of two in [4, 256]"
            )));
        }
        let base = SwitchParams::paper_51t2();
        let total_pipeline_power = base.pipeline_power.at_freq(1.0) * base.pipelines as f64;
        let per_unit_clean = total_pipeline_power / units as f64;
        let per_unit = per_unit_clean * (1.0 + fragmentation_overhead(units));
        Ok(Self {
            units,
            unit_rate: Gbps::from_tbps(51.2 / units as f64),
            unit_power: per_unit,
            overhead: base.overhead_power,
        })
    }

    /// Full-load power.
    pub fn max_power(&self) -> Watts {
        self.overhead + self.unit_power * self.units as f64
    }

    /// Power with the minimum number of units needed to carry `load`
    /// (the rest parked) — the idealized §4.4 policy on this design.
    pub fn power_at_load(&self, load: Ratio) -> Watts {
        let demand = load.clamp_unit().fraction() * 51.2e3; // Gbps
        let needed = (demand / self.unit_rate.value()).ceil().max(1.0);
        self.overhead + self.unit_power * needed.min(self.units as f64)
    }

    /// The proportionality this design reaches at (near-)zero load with
    /// one unit awake (Equation 1).
    pub fn idle_proportionality(&self) -> Ratio {
        Ratio::new(1.0 - (self.overhead + self.unit_power) / self.max_power())
    }

    /// Average power over the ML duty cycle: idle (one unit) for
    /// `1 − duty`, full rate for `duty`.
    pub fn average_power_ml(&self, duty: f64) -> Watts {
        self.power_at_load(Ratio::ONE) * duty.clamp(0.0, 1.0)
            + self.power_at_load(Ratio::ZERO) * (1.0 - duty.clamp(0.0, 1.0))
    }

    /// Converts to simulator parameters (for running the §4.3/§4.4
    /// policies on the redesigned switch).
    pub fn to_switch_params(&self) -> SwitchParams {
        let base = SwitchParams::paper_51t2();
        SwitchParams {
            ports: base.ports,
            pipelines: self.units,
            pipeline_rate: self.unit_rate,
            buffer_bytes: base.buffer_bytes / (self.units as u64 / 4).max(1),
            pipeline_power: PipelinePowerParams {
                // Keep the baseline's ~28/72 static/dynamic split.
                static_power: self.unit_power * 0.275,
                dynamic_power: self.unit_power * 0.725,
            },
            overhead_power: self.overhead,
            wake_ns: base.wake_ns,
            remap_ns: base.remap_ns,
            overflow: base.overflow,
        }
    }
}

/// One row of the granularity sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GranularityPoint {
    /// Unit count.
    pub units: usize,
    /// Full-load power (grows with fragmentation overhead).
    pub max_power: Watts,
    /// Idle (one-unit) proportionality.
    pub idle_proportionality: Ratio,
    /// Average power on the ML duty cycle (10 % communication).
    pub average_power_ml: Watts,
    /// Saving vs. the 4-pipeline baseline on the same duty cycle.
    pub savings_vs_baseline: Ratio,
}

/// Sweeps the unit count and reports the §4.5 granularity trade-off:
/// finer units track load better (deeper parking) but pay fragmentation
/// overhead at full speed.
///
/// # Errors
///
/// Propagates construction errors.
pub fn granularity_sweep(duty: f64) -> Result<Vec<GranularityPoint>> {
    let baseline = RedesignedSwitch::from_baseline(4)?.average_power_ml(duty);
    [4usize, 8, 16, 32, 64, 128, 256]
        .into_iter()
        .map(|units| {
            let sw = RedesignedSwitch::from_baseline(units)?;
            let avg = sw.average_power_ml(duty);
            Ok(GranularityPoint {
                units,
                max_power: sw.max_power(),
                idle_proportionality: sw.idle_proportionality(),
                average_power_ml: avg,
                savings_vs_baseline: Ratio::new(1.0 - avg / baseline),
            })
        })
        .collect()
}

/// Co-packaged optics model: the per-link optical power folded into the
/// switch at a discount vs. pluggables, with the §4.4 circuit layer free.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpoSwitch {
    /// Electrical (ASIC + chassis) switch power.
    pub electrical: Watts,
    /// Total optics power at full port count.
    pub optics: Watts,
    /// Optics power gateable per-port (CPO ports can be dark).
    pub port_gateable: bool,
}

impl CpoSwitch {
    /// CPO per-bit power discount vs. pluggable transceivers (published
    /// CPO platform figures: ≈ 30–50 % lower; we use 40 %).
    pub const CPO_DISCOUNT: f64 = 0.40;

    /// Builds a CPO variant of the paper switch: 64 ports of 800 G whose
    /// pluggable transceivers (16.5 W each, Table 2) move on-package at
    /// the CPO discount.
    pub fn paper_cpo() -> Self {
        let pluggable_total = 64.0 * 16.5;
        Self {
            electrical: Watts::new(750.0),
            optics: Watts::new(pluggable_total * (1.0 - Self::CPO_DISCOUNT)),
            port_gateable: true,
        }
    }

    /// The pluggable-transceiver switch it replaces (same ports).
    pub fn pluggable_total() -> Watts {
        Watts::new(750.0 + 64.0 * 16.5)
    }

    /// Full power of switch + optics.
    pub fn max_power(&self) -> Watts {
        self.electrical + self.optics
    }

    /// Power with only `active_ports` of 64 lit (dark optics gated when
    /// supported).
    pub fn power_with_ports(&self, active_ports: usize) -> Watts {
        let frac = (active_ports.min(64)) as f64 / 64.0;
        if self.port_gateable {
            self.electrical + self.optics * frac
        } else {
            self.max_power()
        }
    }

    /// Power saving of the CPO design vs. pluggables at full load.
    pub fn full_load_savings(&self) -> Ratio {
        Ratio::new(1.0 - self.max_power() / Self::pluggable_total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_unchanged_at_four_units() {
        let sw = RedesignedSwitch::from_baseline(4).unwrap();
        assert!(sw.max_power().approx_eq(Watts::new(750.0), 1e-9));
        assert!(sw.unit_rate.approx_eq(Gbps::from_tbps(12.8), 1e-9));
        assert_eq!(fragmentation_overhead(4), 0.0);
    }

    #[test]
    fn finer_units_deepen_idle_proportionality() {
        let coarse = RedesignedSwitch::from_baseline(4).unwrap();
        let fine = RedesignedSwitch::from_baseline(64).unwrap();
        assert!(
            fine.idle_proportionality() > coarse.idle_proportionality(),
            "fine {} vs coarse {}",
            fine.idle_proportionality(),
            coarse.idle_proportionality()
        );
        // With 64 units, idle keeps 1/64 of unit power: proportionality
        // approaches the chassis-overhead bound 1 − 198/max.
        assert!(fine.idle_proportionality().fraction() > 0.6);
    }

    #[test]
    fn fragmentation_overhead_grows_max_power() {
        let p4 = RedesignedSwitch::from_baseline(4).unwrap().max_power();
        let p64 = RedesignedSwitch::from_baseline(64).unwrap().max_power();
        let p256 = RedesignedSwitch::from_baseline(256).unwrap().max_power();
        assert!(p64 > p4);
        assert!(p256 > p64);
        // But stays within ~40% of the baseline for 256 units.
        assert!(p256.value() < 750.0 * 1.4);
    }

    #[test]
    fn granularity_sweep_finds_an_optimum() {
        // On the 10% ML duty cycle, finer granularity first wins (deeper
        // idle) then the fragmentation tax erodes the gain — the §4.5
        // trade-off in one curve.
        let sweep = granularity_sweep(0.10).unwrap();
        assert_eq!(sweep.len(), 7);
        let best = sweep
            .iter()
            .max_by(|a, b| {
                a.savings_vs_baseline
                    .partial_cmp(&b.savings_vs_baseline)
                    .unwrap()
            })
            .unwrap();
        assert!(best.units > 4, "finer than baseline should win");
        assert!(best.savings_vs_baseline.fraction() > 0.2);
        // Savings are not monotone to 256: the tax bites eventually.
        let last = sweep.last().unwrap();
        assert!(last.savings_vs_baseline <= best.savings_vs_baseline);
    }

    #[test]
    fn power_at_load_steps_with_units() {
        let sw = RedesignedSwitch::from_baseline(16).unwrap();
        let idle = sw.power_at_load(Ratio::ZERO);
        let half = sw.power_at_load(Ratio::new(0.5));
        let full = sw.power_at_load(Ratio::ONE);
        assert!(idle < half && half < full);
        // Half load needs exactly 8 of 16 units.
        let expected = sw.overhead + sw.unit_power * 8.0;
        assert!(half.approx_eq(expected, 1e-9));
        // Loads are clamped.
        assert_eq!(sw.power_at_load(Ratio::new(2.0)), full);
    }

    #[test]
    fn to_switch_params_preserves_capacity_and_power() {
        let sw = RedesignedSwitch::from_baseline(16).unwrap();
        let params = sw.to_switch_params();
        assert_eq!(params.pipelines, 16);
        assert!((params.pipeline_rate * 16.0).approx_eq(Gbps::from_tbps(51.2), 1e-6));
        assert!(params.max_power().approx_eq(sw.max_power(), 1e-6));
    }

    #[test]
    fn invalid_unit_counts_rejected() {
        assert!(RedesignedSwitch::from_baseline(2).is_err());
        assert!(RedesignedSwitch::from_baseline(3).is_err());
        assert!(RedesignedSwitch::from_baseline(12).is_err());
        assert!(RedesignedSwitch::from_baseline(512).is_err());
    }

    #[test]
    fn cpo_saves_at_full_load_and_enables_port_gating() {
        let cpo = CpoSwitch::paper_cpo();
        // 40% optics discount: 750 + 0.6·1056 = 1383.6 W vs 1806 W.
        assert!(cpo.max_power().approx_eq(Watts::new(1383.6), 1e-9));
        assert!((cpo.full_load_savings().fraction() - 0.234).abs() < 0.001);
        // Dark ports gate their optics.
        let half = cpo.power_with_ports(32);
        assert!(half.approx_eq(Watts::new(750.0 + 0.6 * 1056.0 / 2.0), 1e-9));
        // Non-gateable variant (pluggables without knobs) saves nothing.
        let stuck = CpoSwitch {
            port_gateable: false,
            ..cpo
        };
        assert_eq!(stuck.power_with_ports(0), stuck.max_power());
    }
}
