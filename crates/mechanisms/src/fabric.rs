//! Fabric-scale underutilization study: route a training job's
//! collective over an explicit fat tree and measure which switches and
//! links actually work — then price the §4 mechanisms fleet-wide.
//!
//! §3.4: "not all paths in the network are used all the time, especially
//! in full bisection bandwidth networks". Here that becomes a number: a
//! ring all-reduce touches a thin slice of a fat tree even during the
//! communication phase, so device-off mechanisms have headroom *beyond*
//! the phase-level idleness the core analysis models.

use serde::{Deserialize, Serialize};

use npp_power::devices::DeviceDb;
use npp_power::{PowerModel, Proportionality};
use npp_topology::builder::three_tier_fat_tree;
use npp_topology::loads::LinkLoads;
use npp_topology::{NodeId, Topology};
use npp_units::{Gbps, Joules, Ratio, Seconds};

use crate::{MechanismError, Result};

/// Study configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FabricStudyConfig {
    /// Fat-tree arity (k pods, k³/4 hosts).
    pub k: usize,
    /// Link speed throughout the fabric.
    pub link_speed: Gbps,
    /// Number of ranks in the data-parallel ring (≤ host count).
    pub ring_ranks: usize,
    /// Iteration time.
    pub iteration: Seconds,
    /// Communication ratio of the iteration.
    pub comm_ratio: Ratio,
    /// Network proportionality for the two-state devices.
    pub proportionality: Proportionality,
}

impl Default for FabricStudyConfig {
    fn default() -> Self {
        Self {
            k: 8,
            link_speed: Gbps::new(400.0),
            ring_ranks: 64,
            iteration: Seconds::new(1.0),
            comm_ratio: Ratio::new(0.1),
            proportionality: Proportionality::NETWORK_BASELINE,
        }
    }
}

/// Per-iteration network energy under each scheme.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FabricReport {
    /// Switches in the fabric.
    pub switches_total: usize,
    /// Switches that carry any traffic during the communication phase.
    pub switches_touched: usize,
    /// Inter-switch links carrying nothing even during communication.
    pub links_unused_during_comm: usize,
    /// Inter-switch links in the fabric.
    pub links_total: usize,
    /// Mean inter-switch link utilization during the communication phase.
    pub mean_comm_utilization: Ratio,
    /// Energy per iteration with every device always at max (worst case).
    pub energy_all_max: Joules,
    /// Energy with today's two-state devices at the configured
    /// proportionality (the core model's assumption, fabric-resolved).
    pub energy_two_state: Joules,
    /// Energy if the scheduler turns untouched switches/links fully off
    /// for the duration of the job (§4.2).
    pub energy_parked: Joules,
    /// Energy with parking *and* ideal link sleeping on the used links
    /// during the computation phase (EEE-perfect, §4.3/§4.4 composite).
    pub energy_parked_and_sleeping: Joules,
    /// Savings of the parked scheme vs. two-state.
    pub savings_parked: Ratio,
    /// Savings of the full composite vs. two-state.
    pub savings_composite: Ratio,
}

/// Runs the study.
///
/// # Errors
///
/// Rejects ring sizes exceeding the host count and propagates topology
/// errors.
pub fn run_fabric_study(cfg: &FabricStudyConfig) -> Result<FabricReport> {
    let topo = three_tier_fat_tree(cfg.k, cfg.link_speed)?;
    let hosts = topo.hosts();
    if cfg.ring_ranks < 2 || cfg.ring_ranks > hosts.len() {
        return Err(MechanismError::Config(format!(
            "ring of {} ranks does not fit {} hosts",
            cfg.ring_ranks,
            hosts.len()
        )));
    }

    // Ring all-reduce at line rate: rank i sends to rank i+1 (packed
    // placement: consecutive hosts).
    let demands: Vec<(NodeId, NodeId, Gbps)> = (0..cfg.ring_ranks)
        .map(|i| (hosts[i], hosts[(i + 1) % cfg.ring_ranks], cfg.link_speed))
        .collect();
    let loads = LinkLoads::route(&topo, &demands, 16)?;

    let inter_switch = topo.inter_switch_links();
    let links_total = inter_switch.len();
    let unused_links: Vec<_> = loads
        .unused_links(&topo)
        .into_iter()
        .filter(|l| inter_switch.contains(l))
        .collect();
    let touched_switches = touched_switches(&topo, &loads);

    // Mean utilization over inter-switch links only.
    let utils = loads.utilizations(&topo);
    let mean_comm = Ratio::new(
        inter_switch
            .iter()
            .map(|l| utils[l.0].fraction())
            .sum::<f64>()
            / links_total as f64,
    );

    // Device powers.
    let db = DeviceDb::paper_baseline();
    let sw_max = db.switch().max_power();
    let sw_idle = cfg.proportionality.idle_power(sw_max);
    let xcvr_max = db.transceiver(cfg.link_speed)?.max_power() * 2.0; // per link
    let xcvr_idle = cfg.proportionality.idle_power(xcvr_max);

    let n_sw = topo.switches().len() as f64;
    let n_touched = touched_switches as f64;
    let n_links = links_total as f64;
    let n_used_links = (links_total - unused_links.len()) as f64;

    let t_comm = cfg.iteration * cfg.comm_ratio.fraction();
    let t_comp = cfg.iteration - t_comm;

    // Scheme 0: everything at max all the time.
    let energy_all_max = (sw_max * n_sw + xcvr_max * n_links) * cfg.iteration;

    // Scheme 1: two-state devices — busy during comm if touched, idle
    // otherwise; all idle during compute.
    let comm_power = sw_max * n_touched
        + sw_idle * (n_sw - n_touched)
        + xcvr_max * n_used_links
        + xcvr_idle * (n_links - n_used_links);
    let comp_power = sw_idle * n_sw + xcvr_idle * n_links;
    let energy_two_state = comm_power * t_comm + comp_power * t_comp;

    // Scheme 2: untouched switches and unused links fully off (§4.2
    // job-scheduler parking); touched devices stay two-state.
    let comm_parked = sw_max * n_touched + xcvr_max * n_used_links;
    let comp_parked = sw_idle * n_touched + xcvr_idle * n_used_links;
    let energy_parked = comm_parked * t_comm + comp_parked * t_comp;

    // Scheme 3: additionally, used links and touched switches sleep
    // (ideally, zero transition cost) during the computation phase.
    let energy_composite = comm_parked * t_comm;

    Ok(FabricReport {
        switches_total: topo.switches().len(),
        switches_touched: touched_switches,
        links_unused_during_comm: unused_links.len(),
        links_total,
        mean_comm_utilization: mean_comm,
        energy_all_max,
        energy_two_state,
        energy_parked,
        energy_parked_and_sleeping: energy_composite,
        savings_parked: Ratio::new(1.0 - energy_parked / energy_two_state),
        savings_composite: Ratio::new(1.0 - energy_composite / energy_two_state),
    })
}

/// Switches incident to at least one loaded link.
fn touched_switches(topo: &Topology, loads: &LinkLoads) -> usize {
    topo.switches()
        .into_iter()
        .filter(|&sw| {
            topo.neighbors(sw)
                .iter()
                .any(|&(_, link)| loads.load(link).value() > 0.0)
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> FabricReport {
        run_fabric_study(&FabricStudyConfig::default()).unwrap()
    }

    #[test]
    fn full_bisection_fabric_is_mostly_untouched_even_during_comm() {
        // §3.4, quantified: a 64-rank ring on a 128-host fat tree leaves
        // a large share of switches completely idle during the
        // communication phase.
        let r = report();
        assert_eq!(r.switches_total, 80);
        assert!(
            r.switches_touched < r.switches_total,
            "touched {}/{}",
            r.switches_touched,
            r.switches_total
        );
        assert!(r.links_unused_during_comm > 0);
        assert!(r.mean_comm_utilization.fraction() < 0.5);
    }

    #[test]
    fn scheme_energies_are_ordered() {
        let r = report();
        assert!(r.energy_two_state < r.energy_all_max);
        assert!(r.energy_parked < r.energy_two_state);
        assert!(r.energy_parked_and_sleeping < r.energy_parked);
        assert!(r.savings_composite > r.savings_parked);
        // The composite captures most of the energy: the fabric works
        // 10% of the time on a slice of the hardware.
        assert!(
            r.savings_composite.fraction() > 0.7,
            "composite savings {}",
            r.savings_composite
        );
    }

    #[test]
    fn small_ring_parks_even_more() {
        let small = run_fabric_study(&FabricStudyConfig {
            ring_ranks: 8,
            ..FabricStudyConfig::default()
        })
        .unwrap();
        let large = report();
        assert!(small.switches_touched <= large.switches_touched);
        assert!(small.savings_parked >= large.savings_parked);
    }

    #[test]
    fn intra_edge_ring_touches_one_switch() {
        // 4 consecutive hosts in a k=8 tree share one edge switch
        // (k/2 = 4 hosts per edge); their ring never leaves it.
        let r = run_fabric_study(&FabricStudyConfig {
            ring_ranks: 4,
            ..FabricStudyConfig::default()
        })
        .unwrap();
        assert_eq!(r.switches_touched, 1, "touched {}", r.switches_touched);
        assert_eq!(r.links_unused_during_comm, r.links_total);
    }

    #[test]
    fn proportionality_shifts_two_state_but_not_composite() {
        let base = report();
        let perfect = run_fabric_study(&FabricStudyConfig {
            proportionality: Proportionality::PERFECT,
            ..FabricStudyConfig::default()
        })
        .unwrap();
        // With perfect proportionality, idle devices already draw zero —
        // two-state converges toward the composite.
        assert!(perfect.energy_two_state < base.energy_two_state);
        assert!(
            (perfect.energy_two_state.value() - perfect.energy_parked_and_sleeping.value()).abs()
                < 1e-6
        );
    }

    #[test]
    fn invalid_ring_sizes_rejected() {
        assert!(run_fabric_study(&FabricStudyConfig {
            ring_ranks: 1,
            ..FabricStudyConfig::default()
        })
        .is_err());
        assert!(run_fabric_study(&FabricStudyConfig {
            ring_ranks: 1000,
            ..FabricStudyConfig::default()
        })
        .is_err());
    }
}

/// The flow-level (fluid-simulated) counterpart of [`run_fabric_study`]:
/// instead of assuming every used link is busy for the whole
/// communication phase, it *runs* the ring all-reduce in
/// `npp_simnet::netsim` and charges each transceiver only for its actual
/// busy time — the upper bound for per-link sleeping mechanisms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowFabricReport {
    /// Simulated completion time of the collective.
    pub makespan: npp_units::Seconds,
    /// Inter-switch links that carried traffic.
    pub links_used: usize,
    /// Inter-switch links total.
    pub links_total: usize,
    /// Transceiver energy if links sleep perfectly outside their busy
    /// time (per iteration).
    pub link_energy_ideal: Joules,
    /// Transceiver energy with always-on links (per iteration).
    pub link_energy_always_on: Joules,
    /// Relative saving on the transceiver fleet.
    pub link_savings: Ratio,
}

/// Runs a ring all-reduce as fluid flows over the fat tree and prices
/// ideal per-link sleeping.
///
/// # Errors
///
/// Propagates topology/simulation errors.
pub fn run_fabric_flow_study(cfg: &FabricStudyConfig) -> Result<FlowFabricReport> {
    use npp_simnet::netsim::NetSim;
    use npp_simnet::SimTime;

    let topo = three_tier_fat_tree(cfg.k, cfg.link_speed)?;
    let hosts = topo.hosts();
    if cfg.ring_ranks < 2 || cfg.ring_ranks > hosts.len() {
        return Err(MechanismError::Config(format!(
            "ring of {} ranks does not fit {} hosts",
            cfg.ring_ranks,
            hosts.len()
        )));
    }
    // Volume: fill the configured communication phase at line rate.
    let bytes =
        cfg.link_speed.value() * 1e9 * cfg.iteration.value() * cfg.comm_ratio.fraction() / 8.0;
    let mut sim = NetSim::new(topo.clone());
    for i in 0..cfg.ring_ranks {
        sim.inject(
            SimTime::ZERO,
            hosts[i],
            hosts[(i + 1) % cfg.ring_ranks],
            bytes,
            i,
        )
        .map_err(MechanismError::Sim)?;
    }
    sim.run().map_err(MechanismError::Sim)?;
    let makespan = sim.makespan().expect("all flows completed").as_seconds();

    let db = DeviceDb::paper_baseline();
    let xcvr_pair = db.transceiver(cfg.link_speed)?.max_power() * 2.0;
    let inter_switch = topo.inter_switch_links();
    let mut busy_energy = Joules::ZERO;
    let mut used = 0usize;
    for &lid in &inter_switch {
        let busy = sim.link_busy_secs(lid);
        if busy > 0.0 {
            used += 1;
        }
        busy_energy += xcvr_pair * npp_units::Seconds::new(busy);
    }
    let always_on = xcvr_pair * cfg.iteration * inter_switch.len() as f64;
    Ok(FlowFabricReport {
        makespan,
        links_used: used,
        links_total: inter_switch.len(),
        link_energy_ideal: busy_energy,
        link_energy_always_on: always_on,
        link_savings: Ratio::new(1.0 - busy_energy / always_on),
    })
}

#[cfg(test)]
mod flow_tests {
    use super::*;

    #[test]
    fn flow_study_matches_phase_structure() {
        let cfg = FabricStudyConfig::default();
        let r = run_fabric_flow_study(&cfg).unwrap();
        // The packed ring runs at line rate: the collective finishes in
        // (almost exactly) the communication phase it was sized for.
        let comm = cfg.iteration.value() * cfg.comm_ratio.fraction();
        assert!(
            (r.makespan.value() - comm).abs() / comm < 0.01,
            "makespan {} vs comm {comm}",
            r.makespan
        );
        assert!(r.links_used < r.links_total);
    }

    #[test]
    fn ideal_link_sleeping_saves_more_than_the_analytic_composite_links() {
        // The fluid study resolves *which* links are busy and for how
        // long: since each used link is busy for at most the comm phase,
        // the ideal saving must be ≥ 1 − comm_ratio × used/total.
        let cfg = FabricStudyConfig::default();
        let r = run_fabric_flow_study(&cfg).unwrap();
        let lower_bound =
            1.0 - cfg.comm_ratio.fraction() * r.links_used as f64 / r.links_total as f64;
        assert!(
            r.link_savings.fraction() >= lower_bound - 1e-9,
            "savings {} < bound {lower_bound}",
            r.link_savings
        );
        assert!(r.link_savings.fraction() > 0.9);
    }

    #[test]
    fn smaller_rings_use_fewer_links() {
        let big = run_fabric_flow_study(&FabricStudyConfig::default()).unwrap();
        let small = run_fabric_flow_study(&FabricStudyConfig {
            ring_ranks: 8,
            ..FabricStudyConfig::default()
        })
        .unwrap();
        assert!(small.links_used <= big.links_used);
        assert!(small.link_savings >= big.link_savings);
    }
}
