//! Pipeline parking (§4.4): turning whole pipelines off behind a
//! circuit-switch indirection layer (Figure 5).
//!
//! Rate adaptation leaves every component powered; parking gates entire
//! pipelines. The catch is the fixed port→pipeline mapping of conventional
//! ASICs — hence the indirection layer, which lets a policy concentrate
//! all ports onto few pipelines and gate the rest.
//!
//! Two policies from the §4.4 discussion:
//!
//! - **reactive**: per control interval, size the active pipeline set to
//!   the measured load (with hysteresis); wakes pay the full wake latency
//!   and can drop packets at burst fronts when buffers overflow;
//! - **predictive**: exploits ML training's predictability — the schedule
//!   of communication phases is known, so pipelines are pre-woken just
//!   before each burst and parked right after it.

use serde::{Deserialize, Serialize};

use npp_simnet::sources::{Arrival, TrafficSource};
use npp_simnet::switchsim::{PipelineState, PipelineSwitch, SwitchParams};
use npp_simnet::SimTime;
use npp_units::{Joules, Ratio, Seconds, Watts};

use crate::{MechanismError, Result};

/// Parking policy configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParkConfig {
    /// Control-loop interval, ns.
    pub control_interval_ns: u64,
    /// Utilization target when sizing the active set.
    pub target_utilization: f64,
    /// Extra pipelines kept as warm standby beyond the load-sized need
    /// (§4.2's "keep some devices in standby" trade-off).
    pub standby: usize,
    /// Predictive schedule; `None` = reactive.
    pub schedule: Option<PredictiveSchedule>,
}

/// A known periodic communication pattern (ML training).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictiveSchedule {
    /// Iteration period, ns.
    pub period_ns: u64,
    /// Offset of the communication burst within the period, ns.
    pub burst_start_ns: u64,
    /// Burst length, ns.
    pub burst_len_ns: u64,
    /// How long before the burst to start waking pipelines, ns.
    pub prewake_ns: u64,
}

impl ParkConfig {
    /// Reactive policy with a 100 µs control loop, 80 % target, no
    /// standby.
    pub fn reactive() -> Self {
        Self {
            control_interval_ns: 100_000,
            target_utilization: 0.8,
            standby: 0,
            schedule: None,
        }
    }

    /// Predictive policy for the given iteration schedule.
    pub fn predictive(schedule: PredictiveSchedule) -> Self {
        Self {
            schedule: Some(schedule),
            ..Self::reactive()
        }
    }

    fn validate(&self, params: &SwitchParams) -> Result<()> {
        if self.control_interval_ns == 0 {
            return Err(MechanismError::Config(
                "control interval must be positive".into(),
            ));
        }
        if !(0.0 < self.target_utilization && self.target_utilization <= 1.0) {
            return Err(MechanismError::Config(format!(
                "target utilization {} outside (0, 1]",
                self.target_utilization
            )));
        }
        if self.standby >= params.pipelines {
            return Err(MechanismError::Config(format!(
                "standby {} must be below the pipeline count {}",
                self.standby, params.pipelines
            )));
        }
        if let Some(s) = self.schedule {
            if s.period_ns == 0 || s.burst_start_ns >= s.period_ns || s.burst_len_ns == 0 {
                return Err(MechanismError::Config(
                    "degenerate predictive schedule".into(),
                ));
            }
        }
        Ok(())
    }
}

/// Outcome of a parking run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParkReport {
    /// Simulated duration.
    pub duration: Seconds,
    /// Energy with parking active.
    pub energy: Joules,
    /// Energy of the all-on switch.
    pub energy_all_on: Joules,
    /// Relative saving.
    pub savings: Ratio,
    /// Time-averaged power.
    pub average_power: Watts,
    /// Packet loss rate (the §4.4 risk).
    pub loss_rate: f64,
    /// Mean switch latency, ns.
    pub mean_latency_ns: f64,
    /// 99th-percentile switch latency, ns.
    pub p99_latency_ns: f64,
    /// Park operations performed.
    pub parks: u64,
    /// Wake operations performed.
    pub wakes: u64,
}

/// How many pipelines the measured load needs.
fn needed_pipelines(params: &SwitchParams, cfg: &ParkConfig, interval_bytes: u64) -> usize {
    let interval_capacity = params.pipeline_rate.value() * cfg.control_interval_ns as f64 / 8.0
        * cfg.target_utilization;
    let need = (interval_bytes as f64 / interval_capacity).ceil() as usize;
    (need.max(1) + cfg.standby).min(params.pipelines)
}

/// Remaps every port onto the first `active` pipelines (round-robin) and
/// parks/wakes pipelines to match the target set size.
fn resize_active_set(
    sw: &mut PipelineSwitch,
    params: &SwitchParams,
    now: SimTime,
    active: usize,
    parks: &mut u64,
    wakes: &mut u64,
) -> Result<()> {
    // Wake sleepers first (they join the active set immediately as
    // Waking; traffic mapped to them is delayed by the wake).
    for i in 0..active {
        if matches!(sw.pipeline_state(i)?, PipelineState::Off) {
            sw.wake_pipeline(now, i, 1.0)?;
            *wakes += 1;
        }
    }
    for port in 0..params.ports {
        let target = port % active;
        if sw.port_pipeline(port)? != target {
            sw.remap_port(now, port, target)?;
        }
    }
    // Park the rest once drained (skip any still busy; the next control
    // tick retries).
    for i in active..params.pipelines {
        if !matches!(sw.pipeline_state(i)?, PipelineState::Off) && sw.is_drained(i, now)? {
            sw.park_pipeline(now, i)?;
            *parks += 1;
        }
    }
    Ok(())
}

/// Runs a parking policy over `source` until `horizon`.
///
/// # Errors
///
/// Propagates configuration and simulator errors.
pub fn simulate_parking(
    params: SwitchParams,
    cfg: &ParkConfig,
    source: &mut dyn TrafficSource,
    horizon: SimTime,
) -> Result<ParkReport> {
    simulate_parking_full(params, cfg, source, horizon).map(|(report, _)| report)
}

/// Like [`simulate_parking`], but also returns the simulated switch so
/// callers can replay its per-pipeline power timelines (the PowerScope
/// exporter feeds them into a windowed residency recorder).
///
/// # Errors
///
/// Propagates configuration and simulator errors.
pub fn simulate_parking_full(
    params: SwitchParams,
    cfg: &ParkConfig,
    source: &mut dyn TrafficSource,
    horizon: SimTime,
) -> Result<(ParkReport, PipelineSwitch)> {
    cfg.validate(&params)?;
    if horizon == SimTime::ZERO {
        return Err(MechanismError::Config("horizon must be positive".into()));
    }
    let mut sw = PipelineSwitch::new(params, SimTime::ZERO)?;
    let mut interval_bytes: u64 = 0;
    let mut next_control = SimTime::from_nanos(cfg.control_interval_ns);
    let (mut parks, mut wakes) = (0u64, 0u64);

    let mut pending = source.next_arrival();
    loop {
        let next_arrival_at = pending.map(|a| a.at).unwrap_or(SimTime::MAX);
        while next_control <= next_arrival_at.min(horizon) {
            let active = match cfg.schedule {
                None => needed_pipelines(&params, cfg, interval_bytes),
                Some(s) => {
                    // Predictive: full set from (burst_start − prewake)
                    // through burst end, minimal set (plus standby)
                    // elsewhere.
                    let phase = next_control.as_nanos() % s.period_ns;
                    let wake_from = s.burst_start_ns.saturating_sub(s.prewake_ns);
                    let burst_end = s.burst_start_ns + s.burst_len_ns;
                    if phase >= wake_from && phase < burst_end {
                        params.pipelines
                    } else {
                        (1 + cfg.standby).min(params.pipelines)
                    }
                }
            };
            resize_active_set(
                &mut sw,
                &params,
                next_control,
                active,
                &mut parks,
                &mut wakes,
            )?;
            interval_bytes = 0;
            next_control = next_control.plus_nanos(cfg.control_interval_ns);
        }

        let Some(Arrival { at, bytes, port }) = pending else {
            break;
        };
        if at >= horizon {
            break;
        }
        interval_bytes += bytes;
        sw.ingress(at, port % params.ports, bytes)?;
        pending = source.next_arrival();
    }

    let report = sw.finish(horizon)?;
    let energy_all_on = params.max_power() * horizon.as_seconds();
    let summary = ParkReport {
        duration: horizon.as_seconds(),
        energy: report.energy,
        energy_all_on,
        savings: Ratio::new(1.0 - report.energy / energy_all_on),
        average_power: report.average_power,
        loss_rate: report.loss.loss_rate(),
        mean_latency_ns: report.mean_latency_ns,
        p99_latency_ns: report.p99_latency_ns,
        parks,
        wakes,
    };
    Ok((summary, sw))
}

/// One point of the §4.4 wake-latency frontier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrontierPoint {
    /// Pipeline wake latency assumed for the hardware.
    pub wake_ns: u64,
    /// Energy saving of reactive parking at that latency.
    pub savings: Ratio,
    /// Packet loss it causes.
    pub loss_rate: f64,
    /// 99th-percentile switch latency, ns.
    pub p99_latency_ns: f64,
}

/// Sweeps the hardware wake latency and reports the §4.4 trade-off
/// frontier: "the challenge here is to be able to turn a pipeline on
/// quickly enough to react to an increase in demand without inducing
/// packet losses". Faster power-gate exits shrink the loss penalty of
/// reactive parking; this quantifies how fast is fast enough for a given
/// workload generator.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn wake_latency_frontier(
    base: SwitchParams,
    cfg: &ParkConfig,
    make_source: &dyn Fn() -> Box<dyn npp_simnet::sources::TrafficSource>,
    horizon: SimTime,
    wake_grid_ns: &[u64],
) -> Result<Vec<FrontierPoint>> {
    wake_grid_ns
        .iter()
        .map(|&wake_ns| {
            let params = SwitchParams { wake_ns, ..base };
            let mut src = make_source();
            let r = simulate_parking(params, cfg, src.as_mut(), horizon)?;
            Ok(FrontierPoint {
                wake_ns,
                savings: r.savings,
                loss_rate: r.loss_rate,
                p99_latency_ns: r.p99_latency_ns,
            })
        })
        .collect()
}

/// The proportionality floor of a parked-down switch: one pipeline on,
/// chassis overhead untouched. For the paper-calibrated switch:
/// `1 − (198 + 138) / 750 ≈ 55 %` — deeper than rate adaptation, still
/// short of compute because of the chassis overhead (§4.5's motivation
/// for full redesign).
pub fn park_floor_proportionality(params: &SwitchParams, standby: usize) -> Ratio {
    let on = 1 + standby;
    let idle = params.overhead_power
        + params.pipeline_power.at_freq(1.0) * on.min(params.pipelines) as f64;
    Ratio::new(1.0 - idle / params.max_power())
}

#[cfg(test)]
mod tests {
    use super::*;
    use npp_simnet::sources::{MergedSource, OnOffSource};
    use npp_units::Gbps;

    fn params() -> SwitchParams {
        SwitchParams::paper_51t2()
    }

    /// 1 ms iterations with a 100 µs burst of 20 Tbps aggregate, spread
    /// over four ports (5 Tbps each) — needs 2 pipelines at the 80%
    /// target, more than 1 pipeline can carry.
    fn ml_source(horizon: SimTime) -> MergedSource {
        let per_port = (0..4)
            .map(|port| {
                Box::new(
                    OnOffSource::new(
                        1_000_000,
                        900_000,
                        Gbps::from_tbps(5.0),
                        12_500,
                        port,
                        horizon,
                    )
                    .unwrap(),
                ) as Box<dyn TrafficSource>
            })
            .collect();
        MergedSource::new(per_port)
    }

    fn schedule() -> PredictiveSchedule {
        PredictiveSchedule {
            period_ns: 1_000_000,
            burst_start_ns: 900_000,
            burst_len_ns: 100_000,
            prewake_ns: 200_000,
        }
    }

    #[test]
    fn reactive_parking_saves_on_bursty_traffic() {
        let horizon = SimTime::from_millis(10);
        let mut src = ml_source(horizon);
        let r = simulate_parking(params(), &ParkConfig::reactive(), &mut src, horizon).unwrap();
        // During the 90% compute phase only one pipeline runs:
        // ≈ 0.9×336 + 0.1×(more) vs 750 → >40% saving.
        assert!(r.savings.fraction() > 0.4, "savings {}", r.savings);
        assert!(
            r.parks > 0 && r.wakes > 0,
            "parks {} wakes {}",
            r.parks,
            r.wakes
        );
    }

    #[test]
    fn reactive_parking_pays_in_loss_or_latency_at_burst_fronts() {
        let horizon = SimTime::from_millis(10);
        let mut src = ml_source(horizon);
        let r = simulate_parking(params(), &ParkConfig::reactive(), &mut src, horizon).unwrap();
        // The burst lands on one awake pipeline until the controller
        // reacts (up to 100 µs later) — §4.4's "turn a pipeline on
        // quickly enough" challenge made visible.
        assert!(
            r.loss_rate > 0.0 || r.p99_latency_ns > 50_000.0,
            "loss {} p99 {}",
            r.loss_rate,
            r.p99_latency_ns
        );
    }

    #[test]
    fn predictive_parking_avoids_the_reactive_penalty() {
        let horizon = SimTime::from_millis(10);
        let reactive = {
            let mut src = ml_source(horizon);
            simulate_parking(params(), &ParkConfig::reactive(), &mut src, horizon).unwrap()
        };
        let predictive = {
            let mut src = ml_source(horizon);
            simulate_parking(
                params(),
                &ParkConfig::predictive(schedule()),
                &mut src,
                horizon,
            )
            .unwrap()
        };
        // Predictive wakes before the burst: (much) lower loss.
        assert!(
            predictive.loss_rate <= reactive.loss_rate,
            "predictive {} vs reactive {}",
            predictive.loss_rate,
            reactive.loss_rate
        );
        assert!(
            predictive.loss_rate < 0.01,
            "predictive loss {}",
            predictive.loss_rate
        );
        // And still saves substantially.
        assert!(
            predictive.savings.fraction() > 0.3,
            "savings {}",
            predictive.savings
        );
    }

    #[test]
    fn standby_trades_energy_for_reaction_time() {
        let horizon = SimTime::from_millis(10);
        let no_standby = {
            let mut src = ml_source(horizon);
            simulate_parking(params(), &ParkConfig::reactive(), &mut src, horizon).unwrap()
        };
        let with_standby = {
            let mut src = ml_source(horizon);
            let cfg = ParkConfig {
                standby: 1,
                ..ParkConfig::reactive()
            };
            simulate_parking(params(), &cfg, &mut src, horizon).unwrap()
        };
        // Standby burns more energy…
        assert!(with_standby.energy > no_standby.energy);
        // …but absorbs burst fronts at least as well.
        assert!(with_standby.loss_rate <= no_standby.loss_rate + 1e-9);
    }

    #[test]
    fn idle_switch_parks_down_to_one_pipeline() {
        let horizon = SimTime::from_millis(5);
        // Source that never fires.
        let mut src =
            OnOffSource::new(1_000_000, 900_000, Gbps::new(1.0), 1500, 0, SimTime::ZERO).unwrap();
        let r = simulate_parking(params(), &ParkConfig::reactive(), &mut src, horizon).unwrap();
        // Floor: 198 + 138 = 336 W (after the first control interval).
        assert!(
            (r.average_power.value() - 336.0) < 25.0,
            "avg {}",
            r.average_power
        );
        assert_eq!(r.loss_rate, 0.0);
    }

    #[test]
    fn park_floor_value() {
        let p = park_floor_proportionality(&params(), 0);
        assert!((p.fraction() - (1.0 - 336.0 / 750.0)).abs() < 1e-9);
        // With standby the floor is shallower.
        let p1 = park_floor_proportionality(&params(), 1);
        assert!(p1 < p);
    }

    #[test]
    fn frontier_faster_wakes_lose_less() {
        let horizon = SimTime::from_millis(10);
        // Bursts of 300 us span three control intervals, so mid-burst
        // wakes actually happen and their latency shows up as loss.
        let mk = || -> Box<dyn npp_simnet::sources::TrafficSource> {
            let per_port = (0..4)
                .map(|port| {
                    Box::new(
                        OnOffSource::new(
                            1_000_000,
                            700_000,
                            Gbps::from_tbps(5.0),
                            12_500,
                            port,
                            horizon,
                        )
                        .unwrap(),
                    ) as Box<dyn TrafficSource>
                })
                .collect();
            Box::new(MergedSource::new(per_port))
        };
        let grid = [1_000u64, 10_000, 100_000, 1_000_000];
        let frontier =
            wake_latency_frontier(params(), &ParkConfig::reactive(), &mk, horizon, &grid).unwrap();
        assert_eq!(frontier.len(), 4);
        // Loss is non-decreasing in wake latency.
        for w in frontier.windows(2) {
            assert!(
                w[1].loss_rate >= w[0].loss_rate - 1e-9,
                "{:?}",
                frontier
                    .iter()
                    .map(|p| (p.wake_ns, p.loss_rate))
                    .collect::<Vec<_>>()
            );
        }
        // A 1 ms wake (full iteration!) loses much more than a 1 µs one.
        assert!(frontier[3].loss_rate > frontier[0].loss_rate);
    }

    #[test]
    fn config_validation() {
        let mut src = ml_source(SimTime::from_millis(1));
        let bad = ParkConfig {
            control_interval_ns: 0,
            ..ParkConfig::reactive()
        };
        assert!(simulate_parking(params(), &bad, &mut src, SimTime::from_millis(1)).is_err());
        let bad = ParkConfig {
            standby: 4,
            ..ParkConfig::reactive()
        };
        assert!(simulate_parking(params(), &bad, &mut src, SimTime::from_millis(1)).is_err());
        let bad = ParkConfig::predictive(PredictiveSchedule {
            period_ns: 0,
            burst_start_ns: 0,
            burst_len_ns: 1,
            prewake_ns: 0,
        });
        assert!(simulate_parking(params(), &bad, &mut src, SimTime::from_millis(1)).is_err());
    }
}
