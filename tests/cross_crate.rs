//! Cross-crate consistency checks: the analytic models, the explicit
//! graph builders, and the simulator must agree wherever they overlap.

use netpp::core::cluster::{ClusterConfig, ClusterModel};
use netpp::power::devices::DeviceDb;
use netpp::power::gating::switch_component_model;
use netpp::power::PowerModel;
use netpp::simnet::switchsim::SwitchParams;
use netpp::topology::builder::three_tier_fat_tree;
use netpp::topology::{FatTreeModel, Topology};
use netpp::units::Gbps;

/// The explicit k-ary fat-tree graph must match the closed-form counts
/// the analytic model predicts, for every k we can afford to build.
#[test]
fn graph_builder_matches_analytic_model() {
    for k in [4, 6, 8, 10] {
        let topo: Topology = three_tier_fat_tree(k, Gbps::new(400.0)).unwrap();
        let model = FatTreeModel::new(k).unwrap();
        assert_eq!(topo.hosts().len() as f64, model.capacity(3), "hosts k={k}");
        assert_eq!(
            topo.switches().len() as f64,
            model.full_switches(3),
            "switches k={k}"
        );
        assert_eq!(
            topo.inter_switch_links().len() as f64,
            model.full_links(3),
            "links k={k}"
        );
    }
}

/// The simulator's switch parameters must be consistent with both the
/// Table 1 power number and the §4.1 component tree.
#[test]
fn simulated_switch_matches_power_models() {
    let sim = SwitchParams::paper_51t2();
    let tree = switch_component_model();
    let table1 = DeviceDb::paper_baseline().switch().max_power();
    assert!(sim.max_power().approx_eq(table1, 1e-9));
    assert!(tree.max_power().approx_eq(table1, 1e-9));
    // Aggregate pipeline rate equals the advertised ASIC capacity.
    assert!((sim.pipeline_rate * sim.pipelines as f64).approx_eq(Gbps::from_tbps(51.2), 1e-9));
}

/// A cluster built at an exact integer-stage host count must cost exactly
/// what the full-tree formulas say — interpolation must vanish there.
#[test]
fn cluster_model_exact_at_integer_stages() {
    // k = 128 (400 G): 2-tier capacity = 8192 hosts.
    let cfg = ClusterConfig::paper_baseline().with_gpus(8192.0);
    let m = ClusterModel::new(cfg).unwrap();
    let inv = m.inventory();
    let ft = FatTreeModel::new(128).unwrap();
    assert!((inv.switches - ft.full_switches(2)).abs() < 1e-6);
    assert!((inv.links - ft.full_links(2)).abs() < 1e-6);
    // Network power = switches·750 + hosts·25.4 + links·2·10, exactly.
    let expected = ft.full_switches(2) * 750.0 + 8192.0 * 25.4 + ft.full_links(2) * 20.0;
    assert!((m.network_max_power().value() - expected).abs() < 1e-3);
}

/// The workload model's phase durations and the cluster phase breakdown
/// must agree on the communication ratio.
#[test]
fn workload_and_phases_agree() {
    use netpp::core::phases::phase_breakdown;
    use netpp::workload::ScalingScenario;
    for bw in [100.0, 400.0, 1600.0] {
        let cfg = ClusterConfig::paper_baseline().with_bandwidth(Gbps::new(bw));
        let iter = cfg
            .workload
            .iteration(cfg.gpus, cfg.bandwidth, ScalingScenario::FixedWorkload)
            .unwrap();
        let model = ClusterModel::new(cfg).unwrap();
        let b = phase_breakdown(&model, ScalingScenario::FixedWorkload).unwrap();
        assert!(
            b.computation.duration.approx_eq(iter.compute, 1e-12),
            "bw {bw}"
        );
        assert!(
            b.communication.duration.approx_eq(iter.comm, 1e-12),
            "bw {bw}"
        );
    }
}

/// Device-table extrapolation and the cluster sweep must cover every
/// bandwidth the paper uses without error.
#[test]
fn paper_bandwidth_grid_is_fully_supported() {
    for bw in [100.0, 200.0, 400.0, 800.0, 1600.0] {
        let cfg = ClusterConfig::paper_baseline().with_bandwidth(Gbps::new(bw));
        let m = ClusterModel::new(cfg).unwrap();
        assert!(m.network_max_power().value() > 0.0);
        assert!(m.inventory().switches > 0.0);
    }
}

/// Bisection bandwidth of the explicit fat tree must equal the full
/// bisection the topology is designed for — and the cluster model's
/// assumption of a non-blocking fabric is therefore justified.
#[test]
fn fat_tree_full_bisection_property() {
    use netpp::topology::bisection::{bisection_bandwidth, full_bisection};
    let speed = Gbps::new(400.0);
    let topo = three_tier_fat_tree(6, speed).unwrap();
    let hosts = topo.hosts().len();
    let b = bisection_bandwidth(&topo);
    assert!(
        b.approx_eq(full_bisection(hosts, speed), 1e-6),
        "bisection {b}"
    );
}
