//! Cross-crate telemetry integration: the canonical `npp.trace/v1`
//! trace of a parallel sweep is bit-identical to the serial one, and
//! per-scenario scoping keeps every simulated scenario's records
//! together regardless of which worker thread ran it.
//!
//! Telemetry recording is process-global, so every test here serializes
//! on one lock (other integration-test files are separate processes and
//! cannot interleave).

use std::sync::Mutex;

use npp_mechanisms::mechanism::Mechanism;
use npp_sweep::{run_sweep, Axis, ExperimentKind, ScenarioSpec, SimulationSpec, SweepSpec};

static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

/// The CI trace-gate grid in miniature: 4 mechanisms x 2 utilization
/// targets over the deterministic ML workload.
fn gate_spec() -> SweepSpec {
    let mut base = ScenarioSpec::paper_baseline();
    base.experiment = ExperimentKind::Simulation(SimulationSpec {
        horizon_ms: 1,
        ..SimulationSpec::comparison_defaults(Mechanism::AllOn)
    });
    SweepSpec {
        name: "trace-identity".into(),
        base,
        axes: vec![
            Axis::Mechanism(vec![
                Mechanism::RateAdaptPerPipeline,
                Mechanism::RateAdaptGlobal,
                Mechanism::ParkReactive,
                Mechanism::ParkPredictive,
            ]),
            Axis::TargetUtilization(vec![0.7, 0.9]),
        ],
    }
}

/// Runs the gate sweep with recording on and returns the canonical
/// trace (caller must hold `TELEMETRY_LOCK`).
fn canonical_trace(jobs: usize) -> String {
    npp_telemetry::start();
    let opts = npp_sweep::SweepOptions {
        jobs,
        cache_dir: None,
        threads: 1,
    };
    run_sweep(&gate_spec(), &opts, None).expect("gate sweep runs");
    npp_telemetry::finish().to_canonical_jsonl()
}

#[test]
fn parallel_trace_is_bit_identical_to_serial() {
    let _guard = TELEMETRY_LOCK.lock().expect("telemetry lock");
    let serial = canonical_trace(1);
    for jobs in [2, 4] {
        let parallel = canonical_trace(jobs);
        assert_eq!(
            serial, parallel,
            "canonical trace must not depend on --jobs (jobs={jobs})"
        );
    }
    assert!(
        serial.starts_with("{\"schema\":\"npp.trace/v1\","),
        "canonical JSONL leads with the schema header"
    );
}

#[test]
fn every_scenario_contributes_a_scoped_span() {
    let _guard = TELEMETRY_LOCK.lock().expect("telemetry lock");
    npp_telemetry::start();
    let opts = npp_sweep::SweepOptions {
        jobs: 2,
        cache_dir: None,
        threads: 1,
    };
    let outcome = run_sweep(&gate_spec(), &opts, None).expect("gate sweep runs");
    let trace = npp_telemetry::finish();

    // Each of the 8 scenarios records under its own scope (its seed),
    // with a begin/end pair for the simulation span.
    for row in &outcome.results.scenarios {
        let begins = trace
            .records
            .iter()
            .filter(|r| {
                r.scope == row.seed
                    && r.name == "scenario.sim"
                    && r.phase == npp_telemetry::Phase::Begin
            })
            .count();
        assert_eq!(begins, 1, "scenario {} must open one span", row.label);
    }

    // Canonical ordering is (scope, t_ns, seq): within one scope, time
    // never goes backwards and seq is strictly increasing.
    let canonical = trace.canonical();
    for pair in canonical.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        if a.scope == b.scope {
            assert!(a.t_ns <= b.t_ns, "sim time reversed inside a scope");
            assert!(a.seq < b.seq, "seq must be strictly increasing");
        }
    }
}

#[test]
fn metrics_registry_counts_the_sweep() {
    let _guard = TELEMETRY_LOCK.lock().expect("telemetry lock");
    npp_telemetry::metrics::reset();
    npp_telemetry::start();
    let opts = npp_sweep::SweepOptions {
        jobs: 2,
        cache_dir: None,
        threads: 1,
    };
    run_sweep(&gate_spec(), &opts, None).expect("gate sweep runs");
    let _ = npp_telemetry::finish();
    let snap = npp_telemetry::metrics::snapshot();
    assert_eq!(snap.counter("sweep.scenarios"), Some(8));
    assert_eq!(snap.counter("sweep.cache_misses"), Some(8));
    assert!(
        snap.counter("switch.rate_adapt_decisions").unwrap_or(0) > 0,
        "rate-adapt scenarios must record decisions: {}",
        snap.to_text()
    );
}
