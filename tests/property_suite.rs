//! Workspace-level property-based tests: invariants that must hold for
//! *any* configuration, not just the paper's grid.

use netpp::core::cluster::{ClusterConfig, ClusterModel};
use netpp::core::savings::average_power;
use netpp::power::Proportionality;
use netpp::topology::ocs::{CircuitSwitch, OcsSpec};
use netpp::topology::FatTreeModel;
use netpp::units::Gbps;
use netpp::workload::ScalingScenario;
use proptest::prelude::*;

/// Valid paper-style bandwidths (must divide 51.2 T into an even radix
/// ≥ 4 so a tree exists).
fn bandwidth() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(100.0),
        Just(200.0),
        Just(400.0),
        Just(800.0),
        Just(1600.0),
        Just(3200.0),
        Just(6400.0),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Average cluster power decreases monotonically in network
    /// proportionality, for any bandwidth, GPU count, and scenario.
    #[test]
    fn power_monotone_in_proportionality(
        bw in bandwidth(),
        gpus in 64.0..100_000.0f64,
        p1 in 0.0..=1.0f64,
        p2 in 0.0..=1.0f64,
        fixed_ratio in any::<bool>(),
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let scenario = if fixed_ratio {
            ScalingScenario::FixedCommRatio
        } else {
            ScalingScenario::FixedWorkload
        };
        let base = ClusterConfig::paper_baseline()
            .with_bandwidth(Gbps::new(bw))
            .with_gpus(gpus);
        let power_lo = average_power(
            &base.clone().with_network_proportionality(Proportionality::new(lo).unwrap()),
            scenario,
        ).unwrap();
        let power_hi = average_power(
            &base.with_network_proportionality(Proportionality::new(hi).unwrap()),
            scenario,
        ).unwrap();
        prop_assert!(power_hi.value() <= power_lo.value() + 1e-6);
    }

    /// The network never draws more than its max, and the phase powers
    /// bound the average.
    #[test]
    fn phase_powers_are_ordered(
        bw in bandwidth(),
        gpus in 64.0..100_000.0f64,
        p in 0.0..=1.0f64,
    ) {
        use netpp::core::phases::phase_breakdown;
        let cfg = ClusterConfig::paper_baseline()
            .with_bandwidth(Gbps::new(bw))
            .with_gpus(gpus)
            .with_network_proportionality(Proportionality::new(p).unwrap());
        let m = ClusterModel::new(cfg).unwrap();
        let b = phase_breakdown(&m, ScalingScenario::FixedWorkload).unwrap();
        let avg = b.average.total().value();
        let lo = b.computation.total().value().min(b.communication.total().value());
        let hi = b.computation.total().value().max(b.communication.total().value());
        prop_assert!(avg >= lo - 1e-9 && avg <= hi + 1e-9);
        prop_assert!(b.computation.network().value() <= m.network_max_power().value() + 1e-9);
        prop_assert!(b.network_efficiency.fraction() >= 0.0);
        prop_assert!(b.network_efficiency.fraction() <= 1.0 + 1e-12);
    }

    /// Fat-tree sizing is monotone in hosts and continuous at integer
    /// stage boundaries (within float tolerance).
    #[test]
    fn fattree_sizing_monotone_and_continuous(
        radix_half in 2usize..256,
        hosts in 4.0..1e7f64,
    ) {
        let m = FatTreeModel::new(radix_half * 2).unwrap();
        let s1 = m.size_for_hosts(hosts).unwrap();
        let s2 = m.size_for_hosts(hosts * 1.01).unwrap();
        prop_assert!(s2.switches >= s1.switches - 1e-9);
        prop_assert!(s2.inter_switch_links >= s1.inter_switch_links - 1e-9);
        // Continuity at the 2-stage boundary.
        let h2 = m.capacity(2);
        let below = m.size_for_hosts(h2 * 0.9999).unwrap();
        let at = m.size_for_hosts(h2).unwrap();
        prop_assert!((below.switches - at.switches).abs() / at.switches < 0.01);
    }

    /// Circuit-switch mappings stay valid involutions under arbitrary
    /// connect/disconnect/reconfigure sequences.
    #[test]
    fn circuit_switch_invariants(ops in prop::collection::vec((0usize..16, 0usize..16, any::<bool>()), 0..64)) {
        let mut cs = CircuitSwitch::new(OcsSpec::off_the_shelf(16));
        for (a, b, disconnect) in ops {
            if disconnect {
                cs.disconnect(a);
            } else {
                let _ = cs.connect(a, b); // may legitimately fail
            }
            cs.check_invariants().unwrap();
        }
    }

    /// Energy accounting in the simulator: a switch that stays all-on
    /// consumes exactly max_power × time, regardless of traffic offered.
    #[test]
    fn all_on_switch_energy_is_exact(
        packets in prop::collection::vec((0u64..1_000_000, 64u64..9000, 0usize..64), 0..50),
    ) {
        use netpp::simnet::switchsim::{PipelineSwitch, SwitchParams};
        use netpp::simnet::SimTime;
        let params = SwitchParams::paper_51t2();
        let mut sw = PipelineSwitch::new(params, SimTime::ZERO).unwrap();
        let mut sorted = packets;
        sorted.sort_by_key(|&(t, _, _)| t);
        for (t_ns, bytes, port) in sorted {
            sw.ingress(SimTime::from_nanos(t_ns), port, bytes).unwrap();
        }
        let end = SimTime::from_millis(2);
        let r = sw.finish(end).unwrap();
        let expected = params.max_power().value() * end.as_seconds().value();
        prop_assert!((r.energy.value() - expected).abs() < 1e-6);
    }

    /// The budget solver inverts average power: solving for the budget of
    /// a known GPU count recovers that count.
    #[test]
    fn budget_solver_round_trips(
        bw in bandwidth(),
        gpus in 128.0..50_000.0f64,
        p in 0.0..=1.0f64,
    ) {
        use netpp::core::speedup::gpus_for_budget;
        let cfg = ClusterConfig::paper_baseline()
            .with_bandwidth(Gbps::new(bw))
            .with_network_proportionality(Proportionality::new(p).unwrap());
        let budget = average_power(
            &cfg.clone().with_gpus(gpus),
            ScalingScenario::FixedWorkload,
        ).unwrap();
        let solved = gpus_for_budget(&cfg, budget, ScalingScenario::FixedWorkload).unwrap();
        prop_assert!(
            (solved - gpus).abs() / gpus < 1e-6,
            "gpus {} -> solved {}", gpus, solved
        );
    }

    /// Energy is conserved through dwell decomposition: for any
    /// monotone transition schedule, the per-dwell energies of
    /// `PowerTracker::dwell_segments` sum to exactly the tracker's own
    /// `energy_until` integral (both integrate piecewise-constant power
    /// over the same integer-nanosecond boundaries, in the same order).
    #[test]
    fn dwell_segments_conserve_energy(
        transitions in prop::collection::vec((0u64..2_000_000_000, 0.0..1_000.0f64), 0..24),
        initial_w in 0.0..1_000.0f64,
        tail_ns in 0u64..1_000_000_000,
    ) {
        use netpp::simnet::{PowerTracker, SimTime};
        use netpp::units::Watts;

        let mut schedule: Vec<(u64, f64)> = transitions;
        schedule.sort_by_key(|&(at_ns, _)| at_ns);

        let mut tracker = PowerTracker::new(SimTime::ZERO, Watts::new(initial_w));
        for &(at_ns, watts) in &schedule {
            tracker
                .set_power(SimTime::from_nanos(at_ns), Watts::new(watts))
                .expect("schedule is sorted, so time never reverses");
        }
        let end = SimTime::from_nanos(
            schedule.last().map_or(0, |&(at_ns, _)| at_ns) + tail_ns,
        );

        let direct = tracker.energy_until(end).expect("end >= last change");
        let segments = tracker.dwell_segments(end).expect("end >= last change");
        let summed: f64 = segments.iter().map(|s| s.energy().value()).sum();
        prop_assert_eq!(
            summed,
            direct.value(),
            "dwell decomposition must be bit-exact"
        );

        // The decomposition tiles [0, end] with no gaps or overlaps.
        let mut cursor = SimTime::ZERO;
        for seg in &segments {
            prop_assert_eq!(seg.from, cursor);
            prop_assert!(seg.to >= seg.from);
            cursor = seg.to;
        }
        prop_assert_eq!(cursor, end);
    }
}
