//! Integration suite for the `npp-sweep` engine: determinism across
//! thread counts, spec serialization hygiene, and cache behaviour.
//!
//! These tests exercise the engine exactly as the `netpp sweep` CLI
//! does — through `run_sweep` and the serde spec types — including a
//! grid that mixes the analytic and simulation paths.

use std::path::PathBuf;

use netpp::mechanisms::mechanism::Mechanism;
use netpp::sweep::{
    run_sweep, Axis, ExperimentKind, FluidFabricSpec, ScenarioSpec, SimWorkload, SimulationSpec,
    SweepOptions, SweepSpec,
};

/// A unique scratch directory per test, under the system temp dir.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("npp-sweep-suite-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// An analytic grid: 3 bandwidths x 3 proportionalities x 2 comm ratios.
fn analytic_spec() -> SweepSpec {
    SweepSpec {
        name: "suite-analytic".into(),
        base: ScenarioSpec::paper_baseline(),
        axes: vec![
            Axis::BandwidthGbps(vec![100.0, 200.0, 400.0]),
            Axis::NetworkProportionality(vec![0.1, 0.5, 0.9]),
            Axis::CommRatio(vec![0.1, 0.2]),
        ],
    }
}

/// A simulation grid: all five mechanisms on a short seeded Poisson
/// workload (2 ms horizon keeps the suite fast).
fn simulation_spec() -> SweepSpec {
    let mut base = ScenarioSpec::paper_baseline();
    let mut sim = SimulationSpec::comparison_defaults(Mechanism::AllOn);
    sim.horizon_ms = 2;
    sim.workload = SimWorkload::Poisson {
        rate_gbps: 800.0,
        packet_bytes: 4096,
    };
    base.experiment = ExperimentKind::Simulation(sim);
    SweepSpec {
        name: "suite-sim".into(),
        base,
        axes: vec![
            Axis::Mechanism(Mechanism::all().to_vec()),
            Axis::TargetUtilization(vec![0.6, 0.8]),
        ],
    }
}

/// A fluid-fabric grid: pod fat-tree max-min runs at two flow counts.
fn fluid_spec() -> SweepSpec {
    let mut base = ScenarioSpec::paper_baseline();
    base.experiment = ExperimentKind::FluidFabric(FluidFabricSpec { flows: 200 });
    SweepSpec {
        name: "suite-fluid".into(),
        base,
        axes: vec![Axis::FluidFlows(vec![200, 800])],
    }
}

#[test]
fn analytic_sweep_is_thread_count_invariant() {
    let spec = analytic_spec();
    let serial = run_sweep(&spec, &SweepOptions::serial(), None).unwrap();
    for jobs in [2, 8] {
        let parallel = run_sweep(
            &spec,
            &SweepOptions {
                jobs,
                cache_dir: None,
                threads: 1,
            },
            None,
        )
        .unwrap();
        let a = serde_json::to_string_pretty(&serial.results).unwrap();
        let b = serde_json::to_string_pretty(&parallel.results).unwrap();
        assert_eq!(a, b, "jobs={jobs} diverged from the serial reference");
    }
}

#[test]
fn simulation_sweep_is_thread_count_invariant() {
    let spec = simulation_spec();
    let serial = run_sweep(&spec, &SweepOptions::serial(), None).unwrap();
    let parallel = run_sweep(
        &spec,
        &SweepOptions {
            jobs: 8,
            cache_dir: None,
            threads: 1,
        },
        None,
    )
    .unwrap();
    let a = serde_json::to_string_pretty(&serial.results).unwrap();
    let b = serde_json::to_string_pretty(&parallel.results).unwrap();
    assert_eq!(a, b, "simulated scenarios diverged across thread counts");
    // Every mechanism actually produced a row.
    assert_eq!(serial.results.total, Mechanism::all().len() * 2);
}

#[test]
fn fluid_fabric_sweep_is_engine_thread_invariant() {
    // `threads` shards each scenario's max-min engine by link-sharing
    // component; the results document must be byte-identical at every
    // value because it never enters the content hash.
    let spec = fluid_spec();
    let serial = run_sweep(&spec, &SweepOptions::serial(), None).unwrap();
    let reference = serde_json::to_string_pretty(&serial.results).unwrap();
    for threads in [2, 8] {
        let sharded = run_sweep(
            &spec,
            &SweepOptions {
                jobs: 2,
                cache_dir: None,
                threads,
            },
            None,
        )
        .unwrap();
        let doc = serde_json::to_string_pretty(&sharded.results).unwrap();
        assert_eq!(doc, reference, "threads={threads} diverged");
    }
    assert_eq!(serial.results.total, 2);
    for row in &serial.results.scenarios {
        assert!(
            row.metrics.savings > 0.0 && row.metrics.savings < 1.0,
            "fluid savings out of range: {}",
            row.metrics.savings
        );
        assert!(row.metrics.p99_latency_ns > 0.0, "zero makespan");
    }
}

#[test]
fn fluid_fabric_example_spec_parses_and_expands() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/specs/fluid_fabric.json"
    ))
    .unwrap();
    let spec: SweepSpec = serde_json::from_str(&text).unwrap();
    assert_eq!(spec.grid_size(), 3);
    assert!(matches!(
        spec.base.experiment,
        ExperimentKind::FluidFabric(_)
    ));
}

#[test]
fn seeds_and_hashes_are_stable_across_runs() {
    let spec = simulation_spec();
    let one = run_sweep(&spec, &SweepOptions::serial(), None).unwrap();
    let two = run_sweep(&spec, &SweepOptions::parallel(), None).unwrap();
    for (a, b) in one.results.scenarios.iter().zip(&two.results.scenarios) {
        assert_eq!(a.hash, b.hash);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.metrics, b.metrics);
    }
}

#[test]
fn sweep_spec_round_trips_through_json() {
    for spec in [analytic_spec(), simulation_spec()] {
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let back: SweepSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
        // Compact and pretty forms agree.
        let compact: SweepSpec =
            serde_json::from_str(&serde_json::to_string(&spec).unwrap()).unwrap();
        assert_eq!(spec, compact);
    }
}

#[test]
fn unknown_fields_are_rejected() {
    let mut json = serde_json::to_value(&analytic_spec()).unwrap();
    // A typo at the top level must fail loudly...
    let top = format!(
        "{{\"name\": \"x\", \"base\": {}, \"axes\": [], \"surprise\": 1}}",
        serde_json::to_string(&analytic_spec().base).unwrap()
    );
    assert!(serde_json::from_str::<SweepSpec>(&top).is_err());
    // ...and so must one nested inside the base scenario.
    if let serde_json::Value::Object(fields) = &mut json {
        for (key, value) in fields.iter_mut() {
            if key == "base" {
                if let serde_json::Value::Object(base) = value {
                    base.push(("gpu_count_typo".to_string(), serde_json::Value::Null));
                }
            }
        }
    }
    let text = serde_json::to_string(&json).unwrap();
    assert!(serde_json::from_str::<SweepSpec>(&text).is_err());
}

#[test]
fn missing_required_fields_are_rejected() {
    let json = r#"{"name": "x", "axes": []}"#;
    assert!(serde_json::from_str::<SweepSpec>(json).is_err());
}

#[test]
fn cache_turns_reruns_into_hits() {
    let dir = scratch_dir("hits");
    let spec = analytic_spec();
    let opts = SweepOptions {
        jobs: 4,
        cache_dir: Some(dir.clone()),
        threads: 1,
    };

    let cold = run_sweep(&spec, &opts, None).unwrap();
    assert_eq!(cold.report.cache_hits, 0);
    assert_eq!(cold.report.cache_misses, spec.grid_size());

    let warm = run_sweep(&spec, &opts, None).unwrap();
    assert_eq!(warm.report.cache_hits, spec.grid_size());
    assert_eq!(warm.report.cache_misses, 0);
    // The cached run reproduces the cold run's document bit for bit.
    assert_eq!(
        serde_json::to_string_pretty(&cold.results).unwrap(),
        serde_json::to_string_pretty(&warm.results).unwrap()
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn editing_the_spec_invalidates_only_changed_scenarios() {
    let dir = scratch_dir("invalidate");
    let mut spec = analytic_spec();
    let opts = SweepOptions {
        jobs: 4,
        cache_dir: Some(dir.clone()),
        threads: 1,
    };
    run_sweep(&spec, &opts, None).unwrap();

    // Adding one bandwidth value leaves the original 18 scenarios
    // cached and executes only the 6 new ones.
    spec.axes[0] = Axis::BandwidthGbps(vec![100.0, 200.0, 400.0, 800.0]);
    let grown = run_sweep(&spec, &opts, None).unwrap();
    assert_eq!(grown.report.cache_hits, 18);
    assert_eq!(grown.report.cache_misses, 6);

    // Changing a base field reaches every scenario: all misses.
    spec.base.transceivers_per_link = 4.0;
    let changed = run_sweep(&spec, &opts, None).unwrap();
    assert_eq!(changed.report.cache_hits, 0);
    assert_eq!(changed.report.cache_misses, spec.grid_size());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn frontier_indices_are_consistent_with_metrics() {
    let outcome = run_sweep(&analytic_spec(), &SweepOptions::serial(), None).unwrap();
    let scenarios = &outcome.results.scenarios;
    // No frontier member may be dominated by any scenario.
    for &i in &outcome.results.frontier {
        let f = &scenarios[i].metrics;
        for s in scenarios {
            let dominates =
                s.metrics.slowdown < f.slowdown && s.metrics.power_saved_w > f.power_saved_w;
            assert!(!dominates, "frontier index {i} is dominated");
        }
    }
}

#[test]
fn concurrent_executors_share_one_cache_dir_without_interleaving() {
    // Satellite for the serving refactor: two executors hammering the
    // same cache directory concurrently must never interleave partial
    // writes. Each cache handle appends whole JSONL lines to its own
    // per-writer segment files, so a reopened index must parse every
    // record cleanly (zero corrupt lines) and agree with both runs.
    let dir = scratch_dir("concurrent");
    let spec = analytic_spec();
    let reference = run_sweep(&spec, &SweepOptions::serial(), None).unwrap();
    let expected = serde_json::to_string_pretty(&reference.results).unwrap();

    let outcomes: Vec<_> = std::thread::scope(|scope| {
        (0..2)
            .map(|_| {
                let dir = dir.clone();
                let spec = spec.clone();
                scope.spawn(move || {
                    let opts = SweepOptions {
                        jobs: 4,
                        cache_dir: Some(dir),
                        threads: 1,
                    };
                    run_sweep(&spec, &opts, None).unwrap()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    for outcome in &outcomes {
        assert_eq!(
            serde_json::to_string_pretty(&outcome.results).unwrap(),
            expected
        );
    }

    // A fresh handle over the shared directory sees every scenario,
    // parses every segment line, and reports zero corruption.
    let cache = netpp::sweep::ResultCache::open(&dir).unwrap();
    assert_eq!(cache.len(), spec.grid_size());
    assert_eq!(cache.stats().corrupt_skipped, 0);
    std::fs::remove_dir_all(&dir).unwrap();
}
