//! Differential suite: the indexed fair-share engine must be
//! *bit-identical* to the preserved naive progressive-filling engine on
//! random topologies and flow sets.
//!
//! The indexed engine ([`netpp::simnet::netsim::NetSim`]) additionally
//! runs its own full-recompute oracle after every event in test builds,
//! so each case here checks the allocator twice: once against the
//! in-engine oracle (rates, per event) and once end-to-end against
//! [`netpp::simnet::netsim_naive::NaiveNetSim`] (completion times, final
//! rates, and per-link statistics).

use netpp::simnet::netsim::NetSim;
use netpp::simnet::netsim_naive::NaiveNetSim;
use netpp::simnet::scenarios::{
    hotpath_scenario, pod_fattree_scenario_with, spine_fattree_scenario_with,
};
use netpp::simnet::{CompIndex, SimTime, StealMode};
use netpp::topology::builder::{fat_tree_pods, leaf_spine, three_tier_fat_tree};
use netpp::topology::Topology;
use netpp::units::Gbps;
use proptest::prelude::*;

/// Thread counts every case is replayed at. 1 must take the serial
/// path verbatim; 2 and 8 exercise under- and over-subscribed sharding
/// (8 workers usually exceeds the component count, so the pool clamps).
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// A randomly-shaped flow: indices are reduced modulo the host count at
/// injection time so one strategy serves every topology.
type RawFlow = (u16, u16, f64, u64, u16);

fn flows_strategy() -> impl Strategy<Value = Vec<RawFlow>> {
    prop::collection::vec(
        (
            0u16..64,        // src selector
            0u16..64,        // dst selector
            1e4..5e7f64,     // bytes
            0u64..5_000_000, // injection time (ns)
            0u16..16,        // ECMP path choice
        ),
        1..20,
    )
}

/// Runs both engines on the same topology and flows, then asserts the
/// observable outcomes are identical down to the last bit.
fn assert_engines_agree(topo: &Topology, flows: &[RawFlow]) -> Result<(), String> {
    let hosts = topo.hosts();
    let n = hosts.len();
    let mut fast = NetSim::new(topo.clone());
    let mut naive = NaiveNetSim::new(topo.clone());
    let mut injected = 0usize;
    for &(s, d, bytes, at_ns, pc) in flows {
        let src = hosts[s as usize % n];
        let mut dst = hosts[d as usize % n];
        if src == dst {
            dst = hosts[(d as usize + 1) % n];
        }
        let at = SimTime::from_nanos(at_ns);
        let a = fast.inject(at, src, dst, bytes, pc as usize);
        let b = naive.inject(at, src, dst, bytes, pc as usize);
        prop_assert_eq!(a.is_ok(), b.is_ok(), "injection acceptance diverged");
        if a.is_ok() {
            injected += 1;
        }
    }
    prop_assert!(injected > 0);
    // Replay the same system through the component-sharded parallel
    // runtime before running the serial engines: every thread count
    // must later match the serial digest bit-for-bit.
    let mut sharded = Vec::new();
    for &threads in &THREAD_COUNTS[1..] {
        let mut par = NetSim::new(topo.clone());
        for &(s, d, bytes, at_ns, pc) in flows {
            let src = hosts[s as usize % n];
            let mut dst = hosts[d as usize % n];
            if src == dst {
                dst = hosts[(d as usize + 1) % n];
            }
            let _ = par.inject(SimTime::from_nanos(at_ns), src, dst, bytes, pc as usize);
        }
        sharded.push((threads, par));
    }

    let ra = fast.run();
    let rb = naive.run();
    prop_assert_eq!(ra.is_ok(), rb.is_ok(), "run outcome diverged");
    for (threads, par) in &mut sharded {
        let rp = par.run_threads(*threads);
        prop_assert_eq!(
            rp.is_ok(),
            ra.is_ok(),
            "parallel run outcome diverged at {} threads",
            *threads
        );
    }
    if ra.is_err() {
        return Ok(());
    }
    for (threads, par) in &sharded {
        prop_assert_eq!(
            par.state_digest(),
            fast.state_digest(),
            "parallel engine diverged from serial at {} threads",
            *threads
        );
    }

    prop_assert_eq!(fast.makespan(), naive.makespan(), "makespan diverged");
    for i in 0..injected {
        let id = netpp::simnet::netsim::FlowId(i);
        let st = fast.status(id).expect("flow exists");
        prop_assert_eq!(
            st.finished,
            naive.finished_at(id),
            "flow {} completion diverged",
            i
        );
        let naive_rate = naive.rate(id).expect("flow exists");
        prop_assert_eq!(
            st.rate.to_bits(),
            naive_rate.to_bits(),
            "flow {} final rate diverged: {} vs {}",
            i,
            st.rate,
            naive_rate
        );
    }
    for l in topo.links() {
        prop_assert_eq!(
            fast.link_bytes(l.id).to_bits(),
            naive.link_bytes(l.id).to_bits(),
            "link {} bytes diverged",
            l.id.0
        );
        prop_assert_eq!(
            fast.link_busy_secs(l.id).to_bits(),
            naive.link_busy_secs(l.id).to_bits(),
            "link {} busy time diverged",
            l.id.0
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random leaf–spine shapes × random flow sets.
    #[test]
    fn engines_agree_on_random_leaf_spines(
        leaves in 1usize..=3,
        spines in 1usize..=2,
        hosts_per_leaf in 2usize..=4,
        speed in prop_oneof![Just(40.0), Just(100.0), Just(400.0)],
        flows in flows_strategy(),
    ) {
        let topo = leaf_spine(leaves, spines, hosts_per_leaf, Gbps::new(speed)).unwrap();
        assert_engines_agree(&topo, &flows)?;
    }

    /// Random flow sets on a k=4 fat tree (multi-path ECMP stressing
    /// the dirty-closure walk across pods).
    #[test]
    fn engines_agree_on_fat_tree(flows in flows_strategy()) {
        let topo = three_tier_fat_tree(4, Gbps::new(100.0)).unwrap();
        assert_engines_agree(&topo, &flows)?;
    }
}

/// The benchmark scenario itself is covered by the differential check,
/// so the committed `BENCH_simnet.json` speedups compare engines that
/// provably compute the same fluid system.
#[test]
fn engines_agree_on_the_hotpath_scenario() {
    let scenario = hotpath_scenario(192).unwrap();
    let mut fast = NetSim::new(scenario.topo.clone());
    let mut naive = NaiveNetSim::new(scenario.topo.clone());
    scenario
        .inject_into(|at, s, d, b, p| fast.inject(at, s, d, b, p).map(|_| ()))
        .unwrap();
    scenario
        .inject_into(|at, s, d, b, p| naive.inject(at, s, d, b, p).map(|_| ()))
        .unwrap();
    fast.run().unwrap();
    naive.run().unwrap();
    assert_eq!(fast.makespan(), naive.makespan());
    for i in 0..scenario.flows.len() {
        let id = netpp::simnet::netsim::FlowId(i);
        assert_eq!(
            fast.status(id).unwrap().finished,
            naive.finished_at(id),
            "flow {i}"
        );
    }
    // Both engines walked the same event sequence.
    assert_eq!(fast.events_processed(), naive.events_processed());
}

/// The parallel runtime on a genuinely multi-component fabric
/// (disconnected fat-tree planes) must agree with the serial indexed
/// engine *and* the naive oracle — the full three-way identity the
/// scaling benchmark's headline numbers rest on.
#[test]
fn parallel_indexed_and_naive_agree_on_pod_planes() {
    let scenario = pod_fattree_scenario_with(3, 4, 2, 120).unwrap();
    let mut naive = NaiveNetSim::new(scenario.topo.clone());
    scenario
        .inject_into(|at, s, d, b, p| naive.inject(at, s, d, b, p).map(|_| ()))
        .unwrap();
    naive.run().unwrap();

    let mut digests = Vec::new();
    for &threads in &THREAD_COUNTS {
        let mut sim = NetSim::new(scenario.topo.clone());
        scenario
            .inject_into(|at, s, d, b, p| sim.inject(at, s, d, b, p).map(|_| ()))
            .unwrap();
        sim.run_threads(threads).unwrap();
        assert_eq!(sim.makespan(), naive.makespan(), "threads={threads}");
        for i in 0..scenario.flows.len() {
            let id = netpp::simnet::netsim::FlowId(i);
            let st = sim.status(id).unwrap();
            assert_eq!(
                st.finished,
                naive.finished_at(id),
                "flow {i} at {threads} threads"
            );
            assert_eq!(
                st.rate.to_bits(),
                naive.rate(id).unwrap().to_bits(),
                "flow {i} rate at {threads} threads"
            );
        }
        for l in scenario.topo.links() {
            assert_eq!(
                sim.link_busy_secs(l.id).to_bits(),
                naive.link_busy_secs(l.id).to_bits(),
                "link {} busy at {threads} threads",
                l.id.0
            );
        }
        if threads > 1 {
            assert!(
                sim.engine_metrics().components >= 3,
                "three isolated planes must shard into >= 3 components"
            );
        }
        digests.push(sim.state_digest());
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "state digests diverged across thread counts: {digests:x?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random flow sets across disconnected fat-tree planes, replayed
    /// at every thread count: parallel == indexed == naive, bit for
    /// bit. Cross-plane traffic is impossible (no route), so injection
    /// only targets within-plane pairs via the modular reduction.
    #[test]
    fn engines_agree_on_disconnected_pod_planes(flows in flows_strategy()) {
        let topo = fat_tree_pods(2, 4, Gbps::new(100.0)).unwrap();
        let hosts = topo.hosts();
        let plane_hosts = hosts.len() / 2;
        // Remap destinations into the source's plane so every flow is
        // routable; everything else rides the shared strategy.
        let flows: Vec<RawFlow> = flows
            .iter()
            .map(|&(s, d, bytes, at, pc)| {
                let src = s as usize % hosts.len();
                let plane = src / plane_hosts;
                let mut dst_in = d as usize % plane_hosts;
                if plane * plane_hosts + dst_in == src {
                    // Keep the self-loop fixup inside the plane too, so
                    // every generated flow stays routable.
                    dst_in = (dst_in + 1) % plane_hosts;
                }
                let dst = plane * plane_hosts + dst_in;
                (src as u16, dst as u16, bytes, at, pc)
            })
            .collect();
        assert_engines_agree(&topo, &flows)?;
    }
}

/// The single-giant-component spine fabric: every flow shares one
/// component, so component sharding contributes nothing and the
/// within-component splitter carries the whole parallel path. The
/// three-way identity (parallel == indexed == naive) must hold with
/// fan-out forced on at every thread count.
#[test]
fn parallel_indexed_and_naive_agree_on_the_spine_fabric() {
    let scenario = spine_fattree_scenario_with(2, 4, 1, 2, 96).unwrap();
    let mut naive = NaiveNetSim::new(scenario.topo.clone());
    scenario
        .inject_into(|at, s, d, b, p| naive.inject(at, s, d, b, p).map(|_| ()))
        .unwrap();
    naive.run().unwrap();

    let mut digests = Vec::new();
    for &threads in &THREAD_COUNTS {
        let mut sim = NetSim::new(scenario.topo.clone());
        scenario
            .inject_into(|at, s, d, b, p| sim.inject(at, s, d, b, p).map(|_| ()))
            .unwrap();
        sim.set_parallel_fanout_min(1);
        sim.run_threads(threads).unwrap();
        assert_eq!(sim.makespan(), naive.makespan(), "threads={threads}");
        for i in 0..scenario.flows.len() {
            let id = netpp::simnet::netsim::FlowId(i);
            let st = sim.status(id).unwrap();
            assert_eq!(
                st.finished,
                naive.finished_at(id),
                "flow {i} at {threads} threads"
            );
            assert_eq!(
                st.rate.to_bits(),
                naive.rate(id).unwrap().to_bits(),
                "flow {i} rate at {threads} threads"
            );
        }
        assert_eq!(
            sim.engine_metrics().components,
            1,
            "the spine glue must collapse the fabric into one component"
        );
        digests.push(sim.state_digest());
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "state digests diverged across thread counts: {digests:x?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Skewed component histograms (~80% of flows crammed into plane 0
    /// of four disconnected planes, the rest spread across the other
    /// three) with epoch work stealing forced on AND off, at every
    /// thread count, with fan-out forced down to every epoch: the final
    /// state must be bit-identical to the serial engine and the naive
    /// oracle regardless.
    #[test]
    fn steal_modes_agree_on_skewed_histograms(flows in flows_strategy()) {
        let topo = fat_tree_pods(4, 4, Gbps::new(100.0)).unwrap();
        let hosts = topo.hosts();
        let plane_hosts = hosts.len() / 4;
        // Skew: 4 of 5 flows land in plane 0; the remainder rotate
        // through planes 1..4. All traffic stays within its plane.
        let flows: Vec<RawFlow> = flows
            .iter()
            .enumerate()
            .map(|(i, &(s, d, bytes, at, pc))| {
                let plane = if i % 5 < 4 { 0 } else { 1 + i % 3 };
                let src_in = s as usize % plane_hosts;
                let mut dst_in = d as usize % plane_hosts;
                if dst_in == src_in {
                    dst_in = (dst_in + 1) % plane_hosts;
                }
                let src = plane * plane_hosts + src_in;
                let dst = plane * plane_hosts + dst_in;
                (src as u16, dst as u16, bytes, at, pc)
            })
            .collect();

        let inject_all = |sim: &mut NetSim| {
            for &(s, d, bytes, at_ns, pc) in &flows {
                let _ = sim.inject(
                    SimTime::from_nanos(at_ns),
                    hosts[s as usize],
                    hosts[d as usize],
                    bytes,
                    pc as usize,
                );
            }
        };
        let mut naive = NaiveNetSim::new(topo.clone());
        for &(s, d, bytes, at_ns, pc) in &flows {
            let _ = naive.inject(
                SimTime::from_nanos(at_ns),
                hosts[s as usize],
                hosts[d as usize],
                bytes,
                pc as usize,
            );
        }
        let mut serial = NetSim::new(topo.clone());
        inject_all(&mut serial);
        let serial_ok = serial.run().is_ok();
        prop_assert_eq!(naive.run().is_ok(), serial_ok, "naive diverged on outcome");
        for &threads in &THREAD_COUNTS {
            for mode in [StealMode::Always, StealMode::Never] {
                let mut par = NetSim::new(topo.clone());
                inject_all(&mut par);
                par.set_steal_mode(mode);
                par.set_parallel_fanout_min(1);
                let ok = par.run_threads(threads).is_ok();
                prop_assert_eq!(ok, serial_ok, "outcome diverged at {} threads {:?}", threads, mode);
                if serial_ok {
                    prop_assert_eq!(
                        par.state_digest(),
                        serial.state_digest(),
                        "digest diverged at {} threads in {:?}",
                        threads,
                        mode
                    );
                }
            }
        }
        if serial_ok {
            prop_assert_eq!(serial.makespan(), naive.makespan(), "makespan diverged");
        }
    }
}

/// Partition-equality helper for the component-index churn test: two
/// indices agree when they connect exactly the same directed-link
/// pairs.
fn same_partition(a: &mut CompIndex, b: &mut CompIndex, n_dl: usize) -> bool {
    (0..n_dl as u32).all(|d1| {
        (0..n_dl as u32).all(|d2| (a.root(d1) == a.root(d2)) == (b.root(d1) == b.root(d2)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arrival/departure churn on the persistent component index: under
    /// interleaved arrivals, batched departure counting, and
    /// threshold-tripped rebuilds, the incremental index must stay a
    /// *coarsening* of the from-scratch oracle at all times, and match
    /// it exactly after every rebuild.
    #[test]
    fn comp_index_churn_matches_from_scratch_rebuild(
        paths in prop::collection::vec(
            prop::collection::vec(0u32..24, 1..6),
            1..20,
        ),
        departures in prop::collection::vec(0usize..1024, 0..12),
        floor in 1usize..4,
    ) {
        const N_DL: usize = 24;
        let mut idx = CompIndex::new(N_DL);
        idx.set_rebuild_floor(floor);
        let mut departed = vec![false; paths.len()];
        let mut finished_total = 0usize;
        // Interleave: absorb each arrival, then fire any departures
        // whose sampled index has already arrived.
        let mut dep_iter = departures.iter();
        for arrived in 1..=paths.len() {
            if let Some(d) = dep_iter.next() {
                let i = d % arrived;
                if !departed[i] {
                    departed[i] = true;
                    finished_total += 1;
                }
            }
            idx.absorb_arrivals(arrived, |i| &paths[i]);
            idx.observe_finished(finished_total);
            let rebuilt = idx.should_rebuild();
            if rebuilt {
                let live: Vec<&[u32]> = (0..arrived)
                    .filter(|&i| !departed[i])
                    .map(|i| paths[i].as_slice())
                    .collect();
                idx.rebuild(live.iter().copied());
            }
            // The from-scratch oracle over the currently-live paths.
            let mut oracle = CompIndex::new(N_DL);
            let live: Vec<usize> = (0..arrived).filter(|&i| !departed[i]).collect();
            oracle.absorb_arrivals(live.len(), |j| &paths[live[j]]);
            if rebuilt {
                prop_assert!(
                    same_partition(&mut idx, &mut oracle, N_DL),
                    "index must equal the oracle right after a rebuild"
                );
            } else {
                // Lazy departures only ever coarsen: every pair the
                // oracle connects, the incremental index connects too.
                for d1 in 0..N_DL as u32 {
                    for d2 in 0..N_DL as u32 {
                        if oracle.root(d1) == oracle.root(d2) {
                            prop_assert_eq!(
                                idx.root(d1), idx.root(d2),
                                "incremental index split an oracle component"
                            );
                        }
                    }
                }
            }
        }
        // A forced final rebuild always converges to the oracle.
        let live: Vec<&[u32]> = (0..paths.len())
            .filter(|&i| !departed[i])
            .map(|i| paths[i].as_slice())
            .collect();
        idx.rebuild(live.iter().copied());
        let mut oracle = CompIndex::new(N_DL);
        let live_idx: Vec<usize> = (0..paths.len()).filter(|&i| !departed[i]).collect();
        oracle.absorb_arrivals(live_idx.len(), |j| &paths[live_idx[j]]);
        prop_assert!(same_partition(&mut idx, &mut oracle, N_DL));
    }
}
