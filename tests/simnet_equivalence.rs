//! Differential suite: the indexed fair-share engine must be
//! *bit-identical* to the preserved naive progressive-filling engine on
//! random topologies and flow sets.
//!
//! The indexed engine ([`netpp::simnet::netsim::NetSim`]) additionally
//! runs its own full-recompute oracle after every event in test builds,
//! so each case here checks the allocator twice: once against the
//! in-engine oracle (rates, per event) and once end-to-end against
//! [`netpp::simnet::netsim_naive::NaiveNetSim`] (completion times, final
//! rates, and per-link statistics).

use netpp::simnet::netsim::NetSim;
use netpp::simnet::netsim_naive::NaiveNetSim;
use netpp::simnet::scenarios::hotpath_scenario;
use netpp::simnet::SimTime;
use netpp::topology::builder::{leaf_spine, three_tier_fat_tree};
use netpp::topology::Topology;
use netpp::units::Gbps;
use proptest::prelude::*;

/// A randomly-shaped flow: indices are reduced modulo the host count at
/// injection time so one strategy serves every topology.
type RawFlow = (u16, u16, f64, u64, u16);

fn flows_strategy() -> impl Strategy<Value = Vec<RawFlow>> {
    prop::collection::vec(
        (
            0u16..64,        // src selector
            0u16..64,        // dst selector
            1e4..5e7f64,     // bytes
            0u64..5_000_000, // injection time (ns)
            0u16..16,        // ECMP path choice
        ),
        1..20,
    )
}

/// Runs both engines on the same topology and flows, then asserts the
/// observable outcomes are identical down to the last bit.
fn assert_engines_agree(topo: &Topology, flows: &[RawFlow]) -> Result<(), String> {
    let hosts = topo.hosts();
    let n = hosts.len();
    let mut fast = NetSim::new(topo.clone());
    let mut naive = NaiveNetSim::new(topo.clone());
    let mut injected = 0usize;
    for &(s, d, bytes, at_ns, pc) in flows {
        let src = hosts[s as usize % n];
        let mut dst = hosts[d as usize % n];
        if src == dst {
            dst = hosts[(d as usize + 1) % n];
        }
        let at = SimTime::from_nanos(at_ns);
        let a = fast.inject(at, src, dst, bytes, pc as usize);
        let b = naive.inject(at, src, dst, bytes, pc as usize);
        prop_assert_eq!(a.is_ok(), b.is_ok(), "injection acceptance diverged");
        if a.is_ok() {
            injected += 1;
        }
    }
    prop_assert!(injected > 0);
    let ra = fast.run();
    let rb = naive.run();
    prop_assert_eq!(ra.is_ok(), rb.is_ok(), "run outcome diverged");
    if ra.is_err() {
        return Ok(());
    }

    prop_assert_eq!(fast.makespan(), naive.makespan(), "makespan diverged");
    for i in 0..injected {
        let id = netpp::simnet::netsim::FlowId(i);
        let st = fast.status(id).expect("flow exists");
        prop_assert_eq!(
            st.finished,
            naive.finished_at(id),
            "flow {} completion diverged",
            i
        );
        let naive_rate = naive.rate(id).expect("flow exists");
        prop_assert_eq!(
            st.rate.to_bits(),
            naive_rate.to_bits(),
            "flow {} final rate diverged: {} vs {}",
            i,
            st.rate,
            naive_rate
        );
    }
    for l in topo.links() {
        prop_assert_eq!(
            fast.link_bytes(l.id).to_bits(),
            naive.link_bytes(l.id).to_bits(),
            "link {} bytes diverged",
            l.id.0
        );
        prop_assert_eq!(
            fast.link_busy_secs(l.id).to_bits(),
            naive.link_busy_secs(l.id).to_bits(),
            "link {} busy time diverged",
            l.id.0
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random leaf–spine shapes × random flow sets.
    #[test]
    fn engines_agree_on_random_leaf_spines(
        leaves in 1usize..=3,
        spines in 1usize..=2,
        hosts_per_leaf in 2usize..=4,
        speed in prop_oneof![Just(40.0), Just(100.0), Just(400.0)],
        flows in flows_strategy(),
    ) {
        let topo = leaf_spine(leaves, spines, hosts_per_leaf, Gbps::new(speed)).unwrap();
        assert_engines_agree(&topo, &flows)?;
    }

    /// Random flow sets on a k=4 fat tree (multi-path ECMP stressing
    /// the dirty-closure walk across pods).
    #[test]
    fn engines_agree_on_fat_tree(flows in flows_strategy()) {
        let topo = three_tier_fat_tree(4, Gbps::new(100.0)).unwrap();
        assert_engines_agree(&topo, &flows)?;
    }
}

/// The benchmark scenario itself is covered by the differential check,
/// so the committed `BENCH_simnet.json` speedups compare engines that
/// provably compute the same fluid system.
#[test]
fn engines_agree_on_the_hotpath_scenario() {
    let scenario = hotpath_scenario(192).unwrap();
    let mut fast = NetSim::new(scenario.topo.clone());
    let mut naive = NaiveNetSim::new(scenario.topo.clone());
    scenario
        .inject_into(|at, s, d, b, p| fast.inject(at, s, d, b, p).map(|_| ()))
        .unwrap();
    scenario
        .inject_into(|at, s, d, b, p| naive.inject(at, s, d, b, p).map(|_| ()))
        .unwrap();
    fast.run().unwrap();
    naive.run().unwrap();
    assert_eq!(fast.makespan(), naive.makespan());
    for i in 0..scenario.flows.len() {
        let id = netpp::simnet::netsim::FlowId(i);
        assert_eq!(
            fast.status(id).unwrap().finished,
            naive.finished_at(id),
            "flow {i}"
        );
    }
    // Both engines walked the same event sequence.
    assert_eq!(fast.events_processed(), naive.events_processed());
}
