//! End-to-end mechanism scenarios: workload generation → simulation →
//! energy verdicts, spanning npp-workload, npp-simnet, and
//! npp-mechanisms through the facade.

use netpp::mechanisms::comparison::{compare_mechanisms, ml_workload};
use netpp::mechanisms::eee::{simulate_eee, EeeParams};
use netpp::mechanisms::knobs::{apply_profile, DeploymentProfile};
use netpp::mechanisms::ocs_sched::{plan, Job, Placement, RoutingMode};
use netpp::mechanisms::pipeline_park::{simulate_parking, ParkConfig, PredictiveSchedule};
use netpp::simnet::sources::OnOffSource;
use netpp::simnet::switchsim::SwitchParams;
use netpp::simnet::SimTime;
use netpp::topology::builder::three_tier_fat_tree;
use netpp::units::{Gbps, Watts};
use netpp::workload::parallelism::TrafficMatrix;
use netpp::workload::trace::{LoadTrace, MlPhaseTrace};

#[test]
fn comparison_covers_all_dynamic_mechanisms() {
    let table = compare_mechanisms(SimTime::from_millis(10)).unwrap();
    assert_eq!(table.len(), 5);
    // Every mechanism except the baseline saves energy on ML traffic.
    for row in &table[1..] {
        assert!(
            row.savings.fraction() > 0.1,
            "{} saved only {}",
            row.name,
            row.savings
        );
    }
    // And none reaches compute's 85% proportionality — the §4.5 takeaway.
    for row in &table {
        assert!(row.proportionality_floor.fraction() < 0.85, "{}", row.name);
    }
}

#[test]
fn predictive_parking_from_workload_trace() {
    // Derive the predictive schedule from the *workload model* rather
    // than hand-coding it: the trace knows the phase boundaries.
    let trace = MlPhaseTrace {
        compute: netpp::units::Seconds::from_millis(0.9),
        comm: netpp::units::Seconds::from_millis(0.1),
        peak: netpp::units::Ratio::ONE,
    };
    let period_ns = (trace.period().value() * 1e9).round() as u64;
    let burst_start_ns = (trace.compute.value() * 1e9).round() as u64;
    let schedule = PredictiveSchedule {
        period_ns,
        burst_start_ns,
        burst_len_ns: period_ns - burst_start_ns,
        prewake_ns: 200_000,
    };
    let horizon = SimTime::from_millis(10);
    let r = simulate_parking(
        SwitchParams::paper_51t2(),
        &ParkConfig::predictive(schedule),
        &mut ml_workload(horizon),
        horizon,
    )
    .unwrap();
    assert!(r.loss_rate < 0.01, "loss {}", r.loss_rate);
    assert!(r.savings.fraction() > 0.3, "savings {}", r.savings);
    // Sanity: the trace itself says the network idles 90% of the time.
    let mean = trace.mean_utilization(netpp::units::Seconds::new(1.0), 10_000);
    assert!((mean.fraction() - 0.1).abs() < 0.01);
}

#[test]
fn eee_end_to_end_on_ml_traffic() {
    let horizon = SimTime::from_millis(10);
    let mut src = OnOffSource::new(1_000_000, 900_000, Gbps::new(10.0), 1500, 0, horizon).unwrap();
    let r = simulate_eee(&EeeParams::ten_gbase_t(), &mut src, horizon).unwrap();
    // On 10G, EEE recovers most of the computation-phase idle energy.
    assert!(r.savings.fraction() > 0.6, "savings {}", r.savings);
    // But the added latency is microseconds — visible, bounded.
    assert!(r.max_added_latency_ns <= 10_000.0);
}

#[test]
fn scheduler_plus_ocs_on_parallel_training_job() {
    let topo = three_tier_fat_tree(8, Gbps::new(400.0)).unwrap();
    let job = Job::from_matrix(
        "3d",
        &TrafficMatrix::three_d_parallel(
            4,
            4,
            4,
            Gbps::new(100.0),
            Gbps::new(25.0),
            Gbps::new(50.0),
        )
        .unwrap(),
    );
    let naive = plan(
        &topo,
        &[(job.clone(), Placement::Spread)],
        Watts::new(750.0),
        RoutingMode::Sprayed,
        false,
    )
    .unwrap();
    let tuned = plan(
        &topo,
        &[(job, Placement::Packed)],
        Watts::new(750.0),
        RoutingMode::Concentrated,
        true,
    )
    .unwrap();
    assert!(tuned.power < naive.power);
    assert!(tuned.savings.fraction() > 0.3, "savings {}", tuned.savings);
    // The plan partitions the switch set exactly.
    assert_eq!(
        tuned.active_switches.len() + tuned.parked_switches.len(),
        topo.switches().len()
    );
}

#[test]
fn knob_gap_between_exposed_and_physical() {
    // The §4.1 punchline as one integration assertion: for a typical
    // underutilized deployment, physically possible savings exceed the
    // exposed ones by a wide margin on today's (buggy) firmware.
    let r = apply_profile(&DeploymentProfile::l2_leaf_today()).unwrap();
    assert!(r.physical_savings.fraction() - r.exposed_savings.fraction() > 0.3);
}
