//! Workspace-level property tests for the powerscope recorder: the
//! windowed residency/energy accounting must agree *bit for bit* with
//! the simulator's own [`PowerTracker`] dwell accounting — for any
//! schedule, any window width (including widths that straddle power
//! changes), and both the batch-ingest and streaming event paths.

use netpp::power::Tier;
use netpp::simnet::power_tracker::PowerTracker;
use netpp::simnet::powerscope::{DeviceMeta, PowerState, Recorder, WindowConfig, STATE_COUNT};
use netpp::simnet::SimTime;
use netpp::units::Watts;
use proptest::prelude::*;

const PEAK_W: f64 = 750.0;

fn classify(p: Watts) -> PowerState {
    PowerState::classify(p, Watts::new(PEAK_W))
}

fn meta(name: &str) -> DeviceMeta {
    DeviceMeta {
        name: name.into(),
        tier: Tier::Tor,
        peak: Watts::new(PEAK_W),
    }
}

/// Window widths chosen to *not* divide the schedule deltas, so
/// windows straddle power changes; includes pathological 1 ns windows
/// and widths larger than most horizons.
fn window_ns() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(1u64),
        Just(7),
        Just(1_000),
        Just(33_333),
        Just(100_000),
        Just(1_048_576),
        Just(10_000_000),
        1u64..5_000_000,
    ]
}

/// A random step schedule as (delta_ns, milliwatts) pairs. Zero deltas
/// exercise same-instant restatements; levels span off (0) through
/// above-peak. Deltas are reduced modulo a width-dependent cap before
/// use (see [`delta_cap`]) so tiny windows cannot explode the row
/// count.
fn schedule() -> impl Strategy<Value = Vec<(u64, u32)>> {
    proptest::collection::vec((0u64..3_000_000, 0u32..=1_500_000), 0..40)
}

/// Bounds schedule deltas so the whole horizon spans at most ~500
/// windows per event — keeps the row count test-sized even for 1 ns
/// windows while still leaving deltas both shorter and longer than the
/// window width (the straddling cases).
fn delta_cap(width: u64) -> u64 {
    width.saturating_mul(500).clamp(1, 3_000_000)
}

/// Builds the reference tracker from a schedule; returns it plus the
/// time of its last change.
fn build_tracker(start_mw: u32, sched: &[(u64, u32)], cap: u64) -> (PowerTracker, u64) {
    let mut tracker = PowerTracker::new(SimTime::ZERO, Watts::new(f64::from(start_mw) / 1000.0));
    let mut t = 0u64;
    for &(dt, mw) in sched {
        t += dt % cap;
        tracker
            .set_power(SimTime::from_nanos(t), Watts::new(f64::from(mw) / 1000.0))
            .expect("monotone schedule");
    }
    (tracker, t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Windowed energies sum `to_bits`-identically to `energy_until`,
    /// windows tile the horizon exactly, and per-state residency equals
    /// the classified dwell segments.
    #[test]
    fn windowed_energy_and_residency_conserve(
        width in window_ns(),
        start_mw in 0u32..=1_000_000,
        sched in schedule(),
        tail in 0u64..2_000_000,
    ) {
        let cap = delta_cap(width);
        let (tracker, last) = build_tracker(start_mw, &sched, cap);
        let end = SimTime::from_nanos(last + tail % cap);

        let mut rec = Recorder::new(WindowConfig::from_nanos(width).unwrap());
        let key = rec.ingest_tracker(meta("dev"), &tracker, &classify).unwrap();
        rec.finish(end).unwrap();
        let rows = rec.drain_closed();

        // 1. Bit-exact energy conservation, both via the recorder's own
        // running total and via an in-order re-sum of the rows.
        let expect = tracker.energy_until(end).unwrap().value();
        let emitted = rec.emitted_energy(key).unwrap();
        prop_assert_eq!(emitted.to_bits(), expect.to_bits(),
            "emitted {} != energy_until {}", emitted, expect);
        let sum = rows.iter().map(|r| r.energy_j).fold(0.0, |a, b| a + b);
        prop_assert_eq!(sum.to_bits(), expect.to_bits(),
            "row sum {} != energy_until {}", sum, expect);

        // 2. Windows abut and their residency tiles every nanosecond of
        // [0, end) — no gaps, no overlap, no slack.
        let mut cursor = 0u64;
        let mut covered = 0u64;
        for r in &rows {
            prop_assert_eq!(r.device, 0);
            prop_assert_eq!(r.start_ns, cursor);
            prop_assert!(r.end_ns > r.start_ns || rows.len() == 1);
            prop_assert_eq!(r.residency_ns.iter().sum::<u64>(), r.duration_ns());
            cursor = r.end_ns;
            covered += r.duration_ns();
        }
        prop_assert_eq!(covered, end.as_nanos());

        // 3. Per-state residency equals the tracker's dwell segments
        // classified with the same rule.
        let mut by_state = [0u64; STATE_COUNT];
        for seg in tracker.dwell_segments(end).unwrap() {
            by_state[classify(seg.power).index()] += seg.duration_ns();
        }
        let mut from_rows = [0u64; STATE_COUNT];
        for r in &rows {
            for (acc, ns) in from_rows.iter_mut().zip(r.residency_ns.iter()) {
                *acc += ns;
            }
        }
        prop_assert_eq!(from_rows, by_state);
    }

    /// Feeding the recorder one event at a time — with extra `advance`
    /// calls that force windows to close early — produces bit-identical
    /// rows to a single batch `ingest_tracker`.
    #[test]
    fn streaming_equals_batch_ingest(
        width in window_ns(),
        start_mw in 0u32..=1_000_000,
        sched in schedule(),
        tail in 0u64..2_000_000,
    ) {
        let cap = delta_cap(width);
        let (tracker, last) = build_tracker(start_mw, &sched, cap);
        let end = SimTime::from_nanos(last + tail % cap);

        let mut batch = Recorder::new(WindowConfig::from_nanos(width).unwrap());
        let bkey = batch.ingest_tracker(meta("dev"), &tracker, &classify).unwrap();
        batch.finish(end).unwrap();

        let mut stream = Recorder::new(WindowConfig::from_nanos(width).unwrap());
        let start = Watts::new(f64::from(start_mw) / 1000.0);
        let skey = stream
            .register(meta("dev"), SimTime::ZERO, start, classify(start))
            .unwrap();
        let mut t = 0u64;
        for &(dt, mw) in &sched {
            t += dt % cap;
            let at = SimTime::from_nanos(t);
            // An advance at the same instant must be a pure flush.
            stream.advance(skey, at).unwrap();
            let p = Watts::new(f64::from(mw) / 1000.0);
            stream.set_power(skey, at, p, classify(p)).unwrap();
            // Early-drain mid-run: draining must not disturb accounting.
            let _ = stream.drain_closed();
        }
        stream.finish(end).unwrap();

        prop_assert_eq!(
            stream.emitted_energy(skey).unwrap().to_bits(),
            batch.emitted_energy(bkey).unwrap().to_bits()
        );
        // The streaming side drained mid-run, so compare the
        // concatenation order-insensitively: re-drain and join.
        let batch_rows = batch.drain_closed();
        let stream_rows = stream.drain_closed();
        // Mid-run drains already consumed earlier rows; rebuild the full
        // streamed sequence by replaying without drains.
        let mut replay = Recorder::new(WindowConfig::from_nanos(width).unwrap());
        let rkey = replay
            .register(meta("dev"), SimTime::ZERO, start, classify(start))
            .unwrap();
        let mut t = 0u64;
        for &(dt, mw) in &sched {
            t += dt % cap;
            let at = SimTime::from_nanos(t);
            replay.advance(rkey, at).unwrap();
            let p = Watts::new(f64::from(mw) / 1000.0);
            replay.set_power(rkey, at, p, classify(p)).unwrap();
        }
        replay.finish(end).unwrap();
        let replay_rows = replay.drain_closed();
        prop_assert_eq!(&replay_rows, &batch_rows, "streaming rows diverge from batch rows");
        // And the tail left after mid-run drains must be a suffix.
        prop_assert!(replay_rows.ends_with(&stream_rows));
    }
}

/// A window wider than the whole horizon yields exactly one partial
/// window carrying all the energy.
#[test]
fn oversized_window_collapses_to_one_row() {
    let mut tracker = PowerTracker::new(SimTime::ZERO, Watts::new(100.0));
    tracker
        .set_power(SimTime::from_micros(3), Watts::new(0.0))
        .unwrap();
    let end = SimTime::from_micros(10);
    let mut rec = Recorder::new(WindowConfig::from_nanos(1_000_000_000).unwrap());
    let key = rec
        .ingest_tracker(meta("one"), &tracker, &classify)
        .unwrap();
    rec.finish(end).unwrap();
    let rows = rec.drain_closed();
    assert_eq!(rows.len(), 1);
    let row = rows.first().unwrap();
    assert_eq!(row.start_ns, 0);
    assert_eq!(row.end_ns, end.as_nanos());
    assert_eq!(
        row.energy_j.to_bits(),
        tracker.energy_until(end).unwrap().value().to_bits()
    );
    assert_eq!(
        rec.emitted_energy(key).unwrap().to_bits(),
        row.energy_j.to_bits()
    );
    // 3 µs at 100 W (on_low), 7 µs off.
    assert_eq!(row.residency_ns[PowerState::OnLow.index()], 3_000);
    assert_eq!(row.residency_ns[PowerState::Off.index()], 7_000);
}
