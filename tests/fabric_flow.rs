//! Cross-validation of the three fabric views: the analytic collective
//! model (npp-workload), the flow-level fluid simulator (npp-simnet),
//! and the link-load router (npp-topology) must tell one consistent
//! story about which links work and for how long.

use netpp::simnet::netsim::NetSim;
use netpp::simnet::SimTime;
use netpp::topology::builder::three_tier_fat_tree;
use netpp::topology::loads::LinkLoads;
use netpp::units::{Bytes, Gbps};
use netpp::workload::collectives::{allreduce_bytes_per_rank, allreduce_time, AllReduceAlgo};

const SPEED: f64 = 100.0;

/// Inject a packed n-rank ring all-reduce into a NetSim over the fabric.
fn inject_ring(sim: &mut NetSim, hosts: &[netpp::topology::NodeId], n: usize, shard: Bytes) {
    let per_rank = allreduce_bytes_per_rank(AllReduceAlgo::Ring, n, shard).unwrap();
    for i in 0..n {
        sim.inject(
            SimTime::ZERO,
            hosts[i],
            hosts[(i + 1) % n],
            per_rank.value(),
            i,
        )
        .unwrap();
    }
}

#[test]
fn fluid_sim_matches_analytic_collective_time_on_k8() {
    let topo = three_tier_fat_tree(8, Gbps::new(SPEED)).unwrap();
    let hosts = topo.hosts();
    let n = 32;
    let shard = Bytes::from_mib(128.0);
    let mut sim = NetSim::new(topo);
    inject_ring(&mut sim, &hosts, n, shard);
    sim.run().unwrap();
    let analytic = allreduce_time(AllReduceAlgo::Ring, n, shard, Gbps::new(SPEED)).unwrap();
    let simulated = sim.makespan().unwrap().as_seconds();
    // The packed ring gets line rate on every hop, so the fluid makespan
    // equals the bandwidth-optimal analytic time.
    assert!(
        (simulated.value() - analytic.value()).abs() / analytic.value() < 0.01,
        "simulated {simulated} vs analytic {analytic}"
    );
}

#[test]
fn fluid_sim_and_static_router_agree_on_idle_links() {
    let topo = three_tier_fat_tree(8, Gbps::new(SPEED)).unwrap();
    let hosts = topo.hosts();
    let n = 32;

    // Static view: route the same ring demands.
    let demands: Vec<_> = (0..n)
        .map(|i| (hosts[i], hosts[(i + 1) % n], Gbps::new(SPEED)))
        .collect();
    let static_loads = LinkLoads::route(&topo, &demands, 16).unwrap();
    let static_unused = static_loads.unused_links(&topo).len();

    // Fluid view: actually run the flows.
    let mut sim = NetSim::new(topo.clone());
    inject_ring(&mut sim, &hosts, n, Bytes::from_mib(16.0));
    sim.run().unwrap();
    let fluid_idle = sim.idle_links().len();

    // ECMP splitting (static, spreads over all paths) touches at least
    // as many links as single-path flows; both leave a large idle set.
    assert!(
        fluid_idle >= static_unused,
        "fluid {fluid_idle} vs static {static_unused}"
    );
    assert!(static_unused > topo.links().len() / 4);
}

#[test]
fn busy_time_never_exceeds_makespan() {
    let topo = three_tier_fat_tree(4, Gbps::new(SPEED)).unwrap();
    let hosts = topo.hosts();
    let mut sim = NetSim::new(topo.clone());
    inject_ring(&mut sim, &hosts, 8, Bytes::from_mib(32.0));
    sim.run().unwrap();
    let makespan = sim.makespan().unwrap().as_seconds().value();
    for link in topo.links() {
        let busy = sim.link_busy_secs(link.id);
        assert!(
            busy <= makespan + 1e-9,
            "link {:?} busy {busy} > makespan {makespan}",
            link.id
        );
    }
}

#[test]
fn flow_conservation_per_ring_hop() {
    // Every host link must carry exactly the per-rank volume (out of the
    // sender) — the fluid simulator must not create or lose bytes.
    let topo = three_tier_fat_tree(4, Gbps::new(SPEED)).unwrap();
    let hosts = topo.hosts();
    let n = 8;
    let shard = Bytes::from_mib(64.0);
    let per_rank = allreduce_bytes_per_rank(AllReduceAlgo::Ring, n, shard).unwrap();
    let mut sim = NetSim::new(topo.clone());
    inject_ring(&mut sim, &hosts, n, shard);
    sim.run().unwrap();
    for (i, &host) in hosts.iter().take(n).enumerate() {
        let host_link = topo.neighbors(host)[0].1;
        let carried = sim.link_bytes(host_link);
        // Each host link carries its outbound flow plus the inbound one:
        // 2 × per-rank bytes.
        // Tolerance covers nanosecond-rounding of completion times.
        assert!(
            (carried - 2.0 * per_rank.value()).abs() < 64.0,
            "host {i}: carried {carried}"
        );
    }
}
