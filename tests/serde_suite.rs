//! Serialization round-trips for the public configuration and result
//! types: every `netpp --json` output must be loadable back without
//! loss, because downstream plotting pipelines depend on it.

use netpp::core::cluster::ClusterConfig;
use netpp::core::savings::paper_table3;
use netpp::power::devices::DeviceDb;
use netpp::power::Proportionality;
use netpp::units::{Gbps, Joules, Ratio, Seconds, Watts};
use proptest::prelude::*;

fn round_trip<T>(value: &T) -> T
where
    T: serde::Serialize + for<'de> serde::Deserialize<'de>,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

#[test]
fn cluster_config_round_trips() {
    let cfg = ClusterConfig::paper_baseline()
        .with_bandwidth(Gbps::new(800.0))
        .with_network_proportionality(Proportionality::new(0.37).unwrap());
    let back = round_trip(&cfg);
    assert_eq!(cfg, back);
}

#[test]
fn device_db_round_trips_values() {
    let db = DeviceDb::paper_baseline();
    let back: DeviceDb = round_trip(&db);
    // The diagnostic `kind` label is deliberately skipped; all power
    // values must survive.
    for bw in [100.0, 200.0, 400.0, 800.0, 1600.0] {
        assert_eq!(
            back.nic_table().power(Gbps::new(bw)).unwrap(),
            db.nic_table().power(Gbps::new(bw)).unwrap()
        );
        assert_eq!(
            back.transceiver_table().power(Gbps::new(bw)).unwrap(),
            db.transceiver_table().power(Gbps::new(bw)).unwrap()
        );
    }
    assert_eq!(back.network_proportionality, db.network_proportionality);
}

#[test]
fn savings_table_round_trips() {
    let table = paper_table3().unwrap();
    let back = round_trip(&table);
    assert_eq!(table, back);
}

#[test]
fn report_types_round_trip() {
    use netpp::mechanisms::fabric::{run_fabric_study, FabricStudyConfig};
    use netpp::mechanisms::redesign::granularity_sweep;
    let fabric = run_fabric_study(&FabricStudyConfig::default()).unwrap();
    assert_eq!(fabric, round_trip(&fabric));
    let sweep = granularity_sweep(0.1).unwrap();
    assert_eq!(sweep, round_trip(&sweep));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Unit newtypes serialize transparently as numbers and round-trip
    /// exactly (serde_json preserves f64 bit patterns for finite values).
    #[test]
    fn unit_newtypes_round_trip(v in -1e15..1e15f64) {
        prop_assert_eq!(round_trip(&Watts::new(v)), Watts::new(v));
        prop_assert_eq!(round_trip(&Joules::new(v)), Joules::new(v));
        prop_assert_eq!(round_trip(&Seconds::new(v)), Seconds::new(v));
        prop_assert_eq!(round_trip(&Gbps::new(v)), Gbps::new(v));
        prop_assert_eq!(round_trip(&Ratio::new(v)), Ratio::new(v));
    }

    /// Proportionality values survive and stay in range.
    #[test]
    fn proportionality_round_trips(f in 0.0..=1.0f64) {
        let p = Proportionality::new(f).unwrap();
        let back: Proportionality = round_trip(&p);
        prop_assert_eq!(back, p);
    }

    /// A randomized cluster config round-trips structurally.
    #[test]
    fn random_configs_round_trip(
        gpus in 8.0..1e6f64,
        bw_idx in 0usize..5,
        p in 0.0..=1.0f64,
    ) {
        let bws = [100.0, 200.0, 400.0, 800.0, 1600.0];
        let cfg = ClusterConfig::paper_baseline()
            .with_gpus(gpus)
            .with_bandwidth(Gbps::new(bws[bw_idx]))
            .with_network_proportionality(Proportionality::new(p).unwrap());
        prop_assert_eq!(round_trip(&cfg), cfg);
    }
}
