//! End-to-end reproduction of every quantitative claim in the paper,
//! exercised through the `netpp` facade exactly as a downstream user
//! would.

use netpp::core::analysis::paper_cost_analysis;
use netpp::core::cluster::{ClusterConfig, ClusterModel};
use netpp::core::phases::phase_breakdown;
use netpp::core::savings::paper_table3;
use netpp::core::speedup::{baseline_budget, figure3, figure4, paper_bandwidths};
use netpp::power::Proportionality;
use netpp::units::Gbps;
use netpp::workload::ScalingScenario;

/// Table 3 of the paper, in percent.
const PAPER_TABLE3: [[f64; 5]; 5] = [
    [0.0, 0.3, 1.2, 2.3, 2.7],
    [0.0, 0.6, 2.5, 4.8, 5.7],
    [0.0, 1.2, 4.7, 8.8, 10.6],
    [0.0, 2.2, 8.7, 16.4, 19.7],
    [0.0, 3.9, 15.6, 29.3, 35.1],
];

#[test]
fn table3_reproduces_to_printed_precision() {
    let table = paper_table3().expect("baseline model builds");
    for (r, row) in PAPER_TABLE3.iter().enumerate() {
        for (c, &expected) in row.iter().enumerate() {
            let got = table.cell(r, c).expect("cell exists").savings.percent();
            assert!(
                (got - expected).abs() <= 0.1,
                "Table 3 [{r}][{c}]: got {got:.2}%, paper prints {expected}%"
            );
        }
    }
}

#[test]
fn abstract_headline_numbers() {
    // "the network accounts for a still sizeable fraction of the total
    // (12%)" / "consumed with an appallingly low efficiency of 11%" /
    // "improving network power proportionality ... one could save close
    // to 9% of the overall cluster energy demand".
    let model = ClusterModel::new(ClusterConfig::paper_baseline()).unwrap();
    let b = phase_breakdown(&model, ScalingScenario::FixedWorkload).unwrap();
    assert!((b.average.network_share().percent() - 12.0).abs() < 0.5);
    assert!((b.network_efficiency.percent() - 11.0).abs() < 0.2);

    let table = paper_table3().unwrap();
    let at_85 = table.cell(2, 3).unwrap().savings.percent();
    assert!(
        at_85 > 8.5 && at_85 < 9.5,
        "85% proportionality saves {at_85:.1}%"
    );
}

#[test]
fn figure2_phase_structure() {
    let model = ClusterModel::new(ClusterConfig::paper_baseline()).unwrap();
    let b = phase_breakdown(&model, ScalingScenario::FixedWorkload).unwrap();
    // Computation dominated by compute; communication split ~50/50.
    assert!(b.computation.gpu_share().percent() > 85.0);
    assert!((b.communication.network_share().percent() - 47.5).abs() < 2.0);
    // The paper's 88.1% label matches the average-row GPU share exactly.
    assert!((b.average.gpu_share().percent() - 88.1).abs() < 0.1);
    // Absolute magnitudes (Figure 2b axes).
    assert!((b.computation.total().as_mw() - 8.62).abs() < 0.05);
    assert!((b.communication.total().as_mw() - 2.19).abs() < 0.05);
}

#[test]
fn section32_cost_numbers() {
    let a = paper_cost_analysis().unwrap();
    // Paper: 365 kW, $416k electricity, $125k cooling. Our unrounded
    // pipeline gives 375 kW / $427k / $128k — within 3% of the paper,
    // which rounded the savings percentage before converting.
    assert!((a.power_reduction().as_kw() - 365.0).abs() < 15.0);
    assert!((a.money.electricity_per_year.as_thousands() - 416.0).abs() < 15.0);
    assert!((a.money.cooling_per_year.as_thousands() - 125.0).abs() < 5.0);
}

#[test]
fn figure3_crossover_structure() {
    let props: Vec<Proportionality> = [0.1, 0.5, 0.9, 1.0]
        .into_iter()
        .map(|f| Proportionality::new(f).unwrap())
        .collect();
    let curves = figure3(&paper_bandwidths(), &props).unwrap();
    let speedup = |bw: f64, pi: usize| {
        curves
            .iter()
            .find(|c| c.bandwidth == Gbps::new(bw))
            .unwrap()
            .points[pi]
            .speedup
    };
    // At poor proportionality, 1600G is dramatically slower and 200G
    // modestly faster than the 400G baseline.
    assert!(speedup(1600.0, 0).percent() < -20.0);
    assert!(speedup(200.0, 0).percent() > 0.0);
    // §3.3: 200G still beats 400G at 50%.
    assert!(speedup(200.0, 1) > speedup(400.0, 1));
    // High bandwidths win only at very high proportionality.
    assert!(speedup(800.0, 3) > speedup(200.0, 3));
    assert!(speedup(1600.0, 3) > speedup(400.0, 3));
    // And not yet at 50%.
    assert!(speedup(1600.0, 1) < speedup(200.0, 1));
}

#[test]
fn figure4_magnitudes() {
    let props: Vec<Proportionality> = [0.0, 0.5]
        .into_iter()
        .map(|f| Proportionality::new(f).unwrap())
        .collect();
    let curves = figure4(&paper_bandwidths(), &props).unwrap();
    // §3.3: "a network power proportionality of 50% on a 800 Gbps
    // network would enable a 10% speedup".
    let s800 = curves
        .iter()
        .find(|c| c.bandwidth == Gbps::new(800.0))
        .unwrap()
        .points[1]
        .speedup
        .percent();
    assert!((s800 - 10.0).abs() < 2.5, "800G@50% speedup {s800:.1}%");
    // Gains are monotone in bandwidth at 50%.
    let gains: Vec<f64> = curves
        .iter()
        .map(|c| c.points[1].speedup.percent())
        .collect();
    for w in gains.windows(2) {
        assert!(w[1] > w[0], "{gains:?}");
    }
}

#[test]
fn budget_is_self_consistent() {
    // The solver applied to the baseline configuration recovers the
    // baseline GPU count — figure 3's zero point.
    let budget = baseline_budget().unwrap();
    let g = netpp::core::speedup::gpus_for_budget(
        &ClusterConfig::paper_baseline(),
        budget,
        ScalingScenario::FixedWorkload,
    )
    .unwrap();
    assert!((g - 15_360.0).abs() < 1.0);
}
