//! # netpp — Network Power Proportionality toolkit
//!
//! Facade crate re-exporting the whole `netpp` workspace: the analytic
//! what-if engine reproducing *"It Is Time to Address Network Power
//! Proportionality"* (HotNets '25) and the simulation substrate for the
//! §4 mechanisms.
//!
//! See the individual crates for details:
//!
//! - [`units`] — typed physical quantities;
//! - [`power`] — power models, device database, cost model, gating;
//! - [`topology`] — fat-tree/Clos models, graphs, OCS, ISP backbones;
//! - [`workload`] — ML iteration model, collectives, traffic generators;
//! - [`core`] — the paper's cluster what-if engine (Tables/Figures);
//! - [`simnet`] — discrete-event simulator with power tracking;
//! - [`mechanisms`] — §4 proposals (knobs, OCS, rate adaptation, parking);
//! - [`report`] — tables, ASCII charts, CSV/JSON export;
//! - [`sweep`] — parallel scenario-sweep & experiment orchestration;
//! - [`serve`] — long-running what-if daemon over the sweep engine.

#![forbid(unsafe_code)]

pub use npp_core as core;
pub use npp_mechanisms as mechanisms;
pub use npp_power as power;
pub use npp_report as report;
pub use npp_serve as serve;
pub use npp_simnet as simnet;
pub use npp_sweep as sweep;
pub use npp_topology as topology;
pub use npp_units as units;
pub use npp_workload as workload;
