//! Design-space sweep: 200 analytic scenarios in one parallel run.
//!
//! Expands a grid over cluster size (8 values), per-GPU bandwidth
//! (5 values), and network power proportionality (5 values) — the three
//! knobs §3 of the paper turns — executes every scenario on the
//! deterministic parallel executor, and prints the best-per-axis table
//! plus the power-saved vs. slowdown Pareto frontier.
//!
//! Run with: `cargo run --example sweep_design_space`
//!
//! The same grid is reachable from the CLI: serialize the spec with
//! `serde_json::to_string_pretty` and feed it to
//! `netpp sweep spec.json --jobs 8 --cache .sweep-cache`.

use netpp::sweep::{
    best_per_axis, frontier_table, run_sweep, Axis, ProgressEvent, ScenarioSpec, SweepOptions,
    SweepSpec,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = SweepSpec {
        name: "design-space".into(),
        base: ScenarioSpec::paper_baseline(),
        axes: vec![
            // Pod multiples of the §2.1 baseline: 1,920 GPUs per pod.
            Axis::Gpus(vec![
                1_920.0, 3_840.0, 7_680.0, 11_520.0, 15_360.0, 23_040.0, 30_720.0, 61_440.0,
            ]),
            // Ethernet generations, Gbit/s per GPU.
            Axis::BandwidthGbps(vec![100.0, 200.0, 400.0, 800.0, 1_600.0]),
            // Today's 10% up to near-perfect proportionality.
            Axis::NetworkProportionality(vec![0.10, 0.30, 0.50, 0.70, 0.90]),
        ],
    };
    println!("expanding `{}`: {} scenarios", spec.name, spec.grid_size());

    let progress = |ev: &ProgressEvent| {
        if let ProgressEvent::Finished { total, wall_ms, .. } = ev {
            println!("ran {total} scenarios in {wall_ms} ms");
        }
    };
    let outcome = run_sweep(&spec, &SweepOptions::parallel(), Some(&progress))?;

    println!();
    println!(
        "{}",
        best_per_axis(&spec, &outcome.results.scenarios).render()
    );
    println!();
    println!(
        "{}",
        frontier_table(&outcome.results.scenarios, &outcome.results.frontier).render()
    );

    // The headline the sweep rediscovers: at fixed workload, higher
    // proportionality strictly saves power at zero slowdown cost, while
    // lower bandwidth trades slowdown for savings.
    let best = outcome
        .results
        .frontier
        .last()
        .map(|&i| &outcome.results.scenarios[i])
        .expect("non-empty frontier");
    println!(
        "\nmax power saved: {:.1} kW ({:.1}% of cluster) at {:.3}x slowdown — {}",
        best.metrics.power_saved_w / 1e3,
        best.metrics.savings * 100.0,
        best.metrics.slowdown,
        best.label
    );
    Ok(())
}
