//! LLM training: derive the communication ratio of a real training setup
//! from first principles, then run the paper's what-if analysis on *your*
//! workload instead of the assumed 10 % ratio.
//!
//! Run with: `cargo run --example llm_training`

use netpp::core::cluster::ClusterConfig;
use netpp::core::savings::savings_table;
use netpp::power::Proportionality;
use netpp::units::Gbps;
use netpp::workload::models::{LlmModel, TrainingSetup};
use netpp::workload::ScalingScenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 405B dense model on the paper's pod.
    let setup = TrainingSetup {
        model: LlmModel::dense_405b(),
        tensor_parallel: 8,
        pipeline_parallel: 16,
        data_parallel: 120,
        batch_tokens: 16e6,
        ..TrainingSetup::paper_pod_70b()
    };
    let iter = setup.iteration()?;
    println!(
        "=== {} on {} GPUs at {} ===",
        setup.model.name,
        setup.gpus(),
        setup.link
    );
    println!("compute phase: {:.3} s", iter.compute.value());
    println!(
        "comm phase:    {:.3} s (ring all-reduce of bf16 gradients)",
        iter.comm.value()
    );
    println!(
        "comm ratio:    {} (the paper assumes 10%)",
        iter.comm_ratio()
    );

    // Feed the derived workload into the what-if engine.
    let mut cfg = ClusterConfig::paper_baseline();
    cfg.gpus = setup.gpus() as f64;
    cfg.workload = setup.to_iteration_model()?;

    let props: Vec<Proportionality> = [0.10, 0.50, 0.85, 1.00]
        .into_iter()
        .map(|f| Proportionality::new(f).expect("static"))
        .collect();
    let bws: Vec<Gbps> = [200.0, 400.0, 800.0].map(Gbps::new).to_vec();
    let table = savings_table(
        &cfg,
        &bws,
        &props,
        Proportionality::NETWORK_BASELINE,
        ScalingScenario::FixedWorkload,
    )?;

    println!("\n=== Cluster power savings for THIS workload ===");
    print!("{:<12}", "Bandwidth");
    for p in &table.proportionalities {
        print!("{:>8}", format!("{p}"));
    }
    println!();
    for (bw, row) in table.bandwidths.iter().zip(&table.cells) {
        print!("{:<12}", format!("{}G", bw.value()));
        for c in row {
            print!("{:>8}", format!("{}", c.savings));
        }
        println!();
    }
    println!(
        "\nWith a {} communication ratio the network idles even more than in the\n\
         paper's baseline, so proportionality is worth correspondingly more/less —\n\
         exactly the sensitivity the paper's fixed 10% assumption hides.",
        iter.comm_ratio()
    );
    Ok(())
}
