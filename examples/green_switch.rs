//! Green switch: drive the §4 mechanisms on a simulated 51.2 Tbps switch
//! under ML training traffic and compare their energy/latency/loss
//! trade-offs.
//!
//! Run with: `cargo run --example green_switch`

use netpp::mechanisms::comparison::{compare_mechanisms, ml_workload};
use netpp::mechanisms::pipeline_park::{simulate_parking, ParkConfig, PredictiveSchedule};
use netpp::simnet::switchsim::SwitchParams;
use netpp::simnet::SimTime;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let horizon = SimTime::from_millis(10);

    println!("=== par. 4 mechanisms on one ML workload (10 iterations of 1 ms) ===\n");
    println!(
        "{:<34} {:>9} {:>12} {:>8} {:>10}",
        "mechanism", "savings", "prop.floor", "loss", "p99 (us)"
    );
    for row in compare_mechanisms(horizon)? {
        println!(
            "{:<34} {:>9} {:>12} {:>7.2}% {:>10.1}",
            row.name,
            format!("{}", row.savings),
            format!("{}", row.proportionality_floor),
            row.loss_rate * 100.0,
            row.p99_latency_ns / 1000.0,
        );
    }

    // Zoom in on the §4.2/§4.4 standby trade-off: energy vs. reaction.
    println!("\n=== Standby trade-off (reactive parking) ===\n");
    println!("{:<10} {:>9} {:>8}", "standby", "savings", "loss");
    for standby in 0..3 {
        let cfg = ParkConfig {
            standby,
            ..ParkConfig::reactive()
        };
        let r = simulate_parking(
            SwitchParams::paper_51t2(),
            &cfg,
            &mut ml_workload(horizon),
            horizon,
        )?;
        println!(
            "{:<10} {:>9} {:>7.2}%",
            standby,
            format!("{}", r.savings),
            r.loss_rate * 100.0
        );
    }

    // And the predictive schedule's pre-wake knob.
    println!("\n=== Pre-wake lead time (predictive parking) ===\n");
    println!("{:<14} {:>9} {:>8}", "prewake (us)", "savings", "loss");
    for prewake_us in [0u64, 50, 100, 200, 400] {
        let cfg = ParkConfig::predictive(PredictiveSchedule {
            period_ns: 1_000_000,
            burst_start_ns: 900_000,
            burst_len_ns: 100_000,
            prewake_ns: prewake_us * 1_000,
        });
        let r = simulate_parking(
            SwitchParams::paper_51t2(),
            &cfg,
            &mut ml_workload(horizon),
            horizon,
        )?;
        println!(
            "{:<14} {:>9} {:>7.2}%",
            prewake_us,
            format!("{}", r.savings),
            r.loss_rate * 100.0
        );
    }
    println!("\nPredictability is the asset: knowing the burst schedule removes");
    println!("the loss penalty that reactive policies pay (par. 4.4).");
    Ok(())
}
