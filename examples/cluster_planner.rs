//! Cluster planner: pick the most power-efficient interface speed for a
//! power-limited ML cluster.
//!
//! This is the §3.3 scenario turned into a planning tool: given a fixed
//! power budget (here: the baseline cluster's draw) and a realistic
//! network proportionality, which per-GPU bandwidth yields the fastest
//! training iterations — and how many GPUs can you afford at each?
//!
//! Run with: `cargo run --example cluster_planner -- [proportionality-%]`

use netpp::core::speedup::{figure3, paper_bandwidths};
use netpp::power::Proportionality;
use netpp::units::Gbps;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prop_pct: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(10.0);
    let prop = Proportionality::from_percent(prop_pct)?;

    println!("Power budget: the 400G/10% baseline cluster's average draw.");
    println!("Network proportionality assumed: {prop}\n");

    let curves = figure3(&paper_bandwidths(), &[prop])?;
    println!(
        "{:<12} {:>10} {:>14} {:>10}",
        "Bandwidth", "GPUs", "Iteration (s)", "Speedup"
    );
    let mut best: Option<(Gbps, f64)> = None;
    for curve in &curves {
        let p = &curve.points[0];
        println!(
            "{:<12} {:>10.0} {:>14.4} {:>10}",
            format!("{}G", curve.bandwidth.value()),
            p.gpus,
            p.iteration_time.value(),
            format!("{}", p.speedup),
        );
        if best.map(|(_, s)| p.speedup.fraction() > s).unwrap_or(true) {
            best = Some((curve.bandwidth, p.speedup.fraction()));
        }
    }
    let (bw, _) = best.expect("non-empty sweep");
    println!("\nRecommended interface speed at {prop} proportionality: {bw}");
    println!("(Rerun with e.g. `-- 95` to see high proportionality flip the answer.)");
    Ok(())
}
