//! Quickstart: the paper's headline analysis in ~40 lines.
//!
//! Builds the §2.1 baseline cluster, asks the two central what-if
//! questions — *how much power does better network proportionality save?*
//! and *what is that worth per year?* — and prints the answers.
//!
//! Run with: `cargo run --example quickstart`

use netpp::core::analysis::cost_of_proportionality;
use netpp::core::cluster::{ClusterConfig, ClusterModel};
use netpp::core::phases::phase_breakdown;
use netpp::power::cost::CostModel;
use netpp::power::Proportionality;
use netpp::workload::ScalingScenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The production baseline: 15,360 H100 GPUs, 400 G per GPU,
    // 51.2 Tbps switches, 10% communication ratio, 10% network
    // power proportionality.
    let baseline = ClusterConfig::paper_baseline();
    let model = ClusterModel::new(baseline.clone())?;

    println!("=== Baseline cluster ===");
    println!("GPUs:               {}", baseline.gpus);
    println!("Switches:           {:.0}", model.inventory().switches);
    println!("Transceivers:       {:.0}", model.inventory().transceivers);
    println!(
        "Compute max power:  {:.2} MW",
        model.compute_max_power().as_mw()
    );
    println!(
        "Network max power:  {:.2} MW",
        model.network_max_power().as_mw()
    );

    // §3.1: where does the power go, phase by phase?
    let phases = phase_breakdown(&model, ScalingScenario::FixedWorkload)?;
    println!("\n=== Phase breakdown (Figure 2) ===");
    println!(
        "computation:   {:.2} MW ({} network)",
        phases.computation.total().as_mw(),
        phases.computation.network_share()
    );
    println!(
        "communication: {:.2} MW ({} network)",
        phases.communication.total().as_mw(),
        phases.communication.network_share()
    );
    println!("network energy efficiency: {}", phases.network_efficiency);

    // §3.2: what would 50% network proportionality be worth?
    let analysis = cost_of_proportionality(
        &baseline,
        Proportionality::NETWORK_BASELINE,
        Proportionality::new(0.50)?,
        &CostModel::paper_baseline(),
        ScalingScenario::FixedWorkload,
    )?;
    println!("\n=== Improving proportionality 10% -> 50% (Table 3 / par. 3.2) ===");
    println!("cluster power saving: {}", analysis.savings);
    println!(
        "power reduction:      {:.0} kW",
        analysis.power_reduction().as_kw()
    );
    println!(
        "annual saving:        ${:.0}k electricity + ${:.0}k cooling",
        analysis.money.electricity_per_year.as_thousands(),
        analysis.money.cooling_per_year.as_thousands()
    );
    Ok(())
}
