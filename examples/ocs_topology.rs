//! OCS topology tailoring (§4.2): place ML jobs on a fat tree, route
//! their collectives, and see how many switches a scheduler + optical
//! circuit switches can turn off.
//!
//! Run with: `cargo run --example ocs_topology`

use netpp::mechanisms::ocs_sched::{plan, Job, Placement, RoutingMode};
use netpp::topology::builder::three_tier_fat_tree;
use netpp::units::{Gbps, Watts};
use netpp::workload::parallelism::TrafficMatrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 128-host, 80-switch fat tree (k = 8) of 400 G links.
    let topo = three_tier_fat_tree(8, Gbps::new(400.0))?;
    println!(
        "fabric: {} hosts, {} switches, {} inter-switch links\n",
        topo.hosts().len(),
        topo.switches().len(),
        topo.inter_switch_links().len()
    );

    // Two concurrent training jobs with the classic parallelism mix:
    // a 3D-parallel 64-rank job and a 32-rank data-parallel ring.
    let job_a = Job::from_matrix(
        "3d-parallel-64",
        &TrafficMatrix::three_d_parallel(
            4, // data parallel
            4, // pipeline stages
            4, // tensor parallel
            Gbps::new(100.0),
            Gbps::new(25.0),
            Gbps::new(50.0),
        )?,
    );
    let ring: Vec<usize> = (0..32).collect();
    let job_b = Job::from_matrix(
        "dp-ring-32",
        &TrafficMatrix::ring(32, &ring, Gbps::new(100.0))?,
    );

    let switch_power = Watts::new(750.0);
    println!(
        "{:<46} {:>12} {:>11} {:>9}",
        "scenario", "switches on", "power (kW)", "savings"
    );
    for (name, placement, mode, ocs) in [
        (
            "status quo: spread + ECMP spray",
            Placement::Spread,
            RoutingMode::Sprayed,
            false,
        ),
        (
            "job scheduler packs ranks",
            Placement::Packed,
            RoutingMode::Sprayed,
            false,
        ),
        (
            "+ concentrated routing",
            Placement::Packed,
            RoutingMode::Concentrated,
            false,
        ),
        (
            "+ OCS core bypass",
            Placement::Packed,
            RoutingMode::Concentrated,
            true,
        ),
    ] {
        let p = plan(
            &topo,
            &[(job_a.clone(), placement), (job_b.clone(), placement)],
            switch_power,
            mode,
            ocs,
        )?;
        println!(
            "{:<46} {:>12} {:>11.1} {:>9}",
            name,
            p.active_switches.len(),
            p.power.as_kw(),
            format!("{}", p.savings),
        );
        if ocs {
            println!(
                "\nOCS details: {} circuits, one-off reconfiguration of {:.0} ms",
                p.circuits.len(),
                p.reconfiguration.as_millis()
            );
            println!("(ML jobs run for days; a per-job reconfiguration of tens of");
            println!(" milliseconds is negligible — the §4.2 argument.)");
        }
    }
    Ok(())
}
