//! ISP backbone (§3.4): a 24-hour diurnal-traffic study on the Abilene
//! topology, showing why "underutilized rather than completely unused"
//! links need load-proportional hardware rather than sleep modes.
//!
//! Run with: `cargo run --example isp_backbone`

use netpp::mechanisms::isp_study::{run_isp_study, IspStudyConfig};
use netpp::power::cost::{CarbonModel, CostModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = IspStudyConfig::default();
    let r = run_isp_study(&cfg)?;

    println!("=== Abilene backbone, gravity traffic, 24h diurnal cycle ===\n");
    println!("hour  demand  mean util  max util");
    for h in r.hours.iter().step_by(3) {
        let bar = "#".repeat((h.mean_utilization.percent() / 2.0).round() as usize);
        println!(
            "{:>4}  {:>5.2}  {:>8}  {:>8}  {bar}",
            h.hour,
            h.demand_factor,
            format!("{}", h.mean_utilization),
            format!("{}", h.max_utilization),
        );
    }

    println!(
        "\nlinks below 50% utilization even at the daily peak: {}",
        r.underutilized_at_peak
    );
    println!("\n=== 24h energy by device model ===");
    println!(
        "today (two-state @10%):        {:.1} kWh",
        r.energy_today.as_kwh()
    );
    println!(
        "two-state @85% (still useless): {:.1} kWh  (links never idle!)",
        r.energy_two_state_improved.as_kwh()
    );
    println!(
        "linear @85%:                   {:.1} kWh  ({} saved)",
        r.energy_linear.as_kwh(),
        r.savings_linear
    );
    println!(
        "linear @85% + link down-rating: {:.1} kWh  ({} saved)",
        r.energy_linear_downrated.as_kwh(),
        r.savings_linear_downrated
    );

    // What the saving is worth, annualized.
    let saved_daily = r.energy_today - r.energy_linear_downrated;
    let annual_kwh = saved_daily.as_kwh() * 365.0;
    let cost = CostModel::paper_baseline();
    let carbon = CarbonModel::us_grid_average();
    println!(
        "\nannualized: {:.0} kWh, ${:.0}, {:.1} tCO2e (US grid)",
        annual_kwh,
        annual_kwh * cost.usd_per_kwh,
        carbon.tonnes_for(netpp::units::Joules::from_kwh(annual_kwh)),
    );
    println!("\nThe §3.4 punchline: a two-state device never sleeps on a backbone —");
    println!("only genuinely load-proportional hardware collects these savings.");
    Ok(())
}
