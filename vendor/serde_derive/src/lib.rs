//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! workspace's offline `serde` stand-in (see `vendor/README.md`).
//!
//! The real `serde_derive` is built on `syn`/`quote`; neither is
//! available in this offline build environment, so this macro parses the
//! derive input directly from `proc_macro::TokenStream`. It supports the
//! subset of shapes the workspace actually uses:
//!
//! - structs with named fields;
//! - tuple structs (typically `#[serde(transparent)]` newtypes);
//! - enums with unit, tuple, and struct variants (externally tagged,
//!   matching serde's default encoding);
//! - container attributes `#[serde(transparent)]` and
//!   `#[serde(deny_unknown_fields)]`;
//! - field attributes `#[serde(skip)]` and `#[serde(default = "path")]`.
//!
//! Generics are deliberately unsupported (no workspace type needs them);
//! deriving on a generic type produces a clear compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Container-level serde attributes.
#[derive(Default)]
struct ContainerAttrs {
    transparent: bool,
    deny_unknown_fields: bool,
}

/// Field-level serde attributes.
#[derive(Default, Clone)]
struct FieldAttrs {
    skip: bool,
    /// Path of a `fn() -> T` supplying the value when absent (or skipped).
    default_fn: Option<String>,
    /// `#[serde(default)]` without a path: use `Default::default()`.
    default_std: bool,
}

struct Field {
    name: String,
    attrs: FieldAttrs,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Input {
    NamedStruct {
        name: String,
        attrs: ContainerAttrs,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        attrs: ContainerAttrs,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives the simplified `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .expect("generated Serialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives the simplified `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated Deserialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("compile_error parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Self {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn at_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(i)) => Ok(i.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    /// Consumes leading outer attributes, returning collected serde
    /// attrs (all non-serde attributes — docs etc. — are discarded).
    fn parse_attrs(&mut self) -> Result<Vec<TokenStream>, String> {
        let mut serde_attrs = Vec::new();
        while self.at_punct('#') {
            self.next();
            let group = match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                other => return Err(format!("expected [...] after #, found {other:?}")),
            };
            let inner: Vec<TokenTree> = group.stream().into_iter().collect();
            if let Some(TokenTree::Ident(path)) = inner.first() {
                if path.to_string() == "serde" {
                    if let Some(TokenTree::Group(args)) = inner.get(1) {
                        serde_attrs.push(args.stream());
                    }
                }
            }
        }
        Ok(serde_attrs)
    }

    /// Consumes an optional visibility qualifier (`pub`, `pub(crate)`, …).
    fn parse_vis(&mut self) {
        if self.at_ident("pub") {
            self.next();
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.next();
                }
            }
        }
    }

    /// Skips a type expression: consumes until a top-level `,`
    /// (angle-bracket depth tracked at the token level).
    fn skip_type(&mut self) {
        let mut angle: i32 = 0;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
                _ => {}
            }
            self.next();
        }
    }
}

fn container_attrs(metas: &[TokenStream]) -> ContainerAttrs {
    let mut out = ContainerAttrs::default();
    for words in metas {
        for t in words.clone() {
            if let TokenTree::Ident(i) = t {
                match i.to_string().as_str() {
                    "transparent" => out.transparent = true,
                    "deny_unknown_fields" => out.deny_unknown_fields = true,
                    _ => {}
                }
            }
        }
    }
    out
}

fn field_attrs(metas: &[TokenStream]) -> Result<FieldAttrs, String> {
    let mut out = FieldAttrs::default();
    for meta in metas {
        let tokens: Vec<TokenTree> = meta.clone().into_iter().collect();
        let mut i = 0;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Ident(id) => match id.to_string().as_str() {
                    "skip" | "skip_deserializing" | "skip_serializing" => {
                        out.skip = true;
                        i += 1;
                    }
                    "default" => {
                        // `default` or `default = "path"`.
                        if matches!(tokens.get(i + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=')
                        {
                            match tokens.get(i + 2) {
                                Some(TokenTree::Literal(l)) => {
                                    let s = l.to_string();
                                    out.default_fn = Some(s.trim_matches('"').to_string());
                                    i += 3;
                                }
                                other => {
                                    return Err(format!(
                                        "expected string literal after default =, found {other:?}"
                                    ))
                                }
                            }
                        } else {
                            out.default_std = true;
                            i += 1;
                        }
                    }
                    other => return Err(format!("unsupported serde field attribute `{other}`")),
                },
                TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
                other => return Err(format!("unexpected token in serde attribute: {other:?}")),
            }
        }
    }
    Ok(out)
}

fn parse_named_fields(group: TokenStream) -> Result<Vec<Field>, String> {
    let mut c = Cursor::new(group);
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let metas = c.parse_attrs()?;
        c.parse_vis();
        let name = c.expect_ident()?;
        if !c.at_punct(':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        c.next();
        c.skip_type();
        if c.at_punct(',') {
            c.next();
        }
        fields.push(Field {
            name,
            attrs: field_attrs(&metas)?,
        });
    }
    Ok(fields)
}

fn parse_tuple_arity(group: TokenStream) -> Result<usize, String> {
    let mut c = Cursor::new(group);
    let mut arity = 0;
    while c.peek().is_some() {
        let _ = c.parse_attrs()?;
        c.parse_vis();
        c.skip_type();
        arity += 1;
        if c.at_punct(',') {
            c.next();
        }
    }
    Ok(arity)
}

fn parse_variants(group: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(group);
    let mut variants = Vec::new();
    while c.peek().is_some() {
        let _ = c.parse_attrs()?;
        let name = c.expect_ident()?;
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                c.next();
                VariantShape::Struct(fields?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = parse_tuple_arity(g.stream());
                c.next();
                VariantShape::Tuple(arity?)
            }
            _ => VariantShape::Unit,
        };
        if c.at_punct(',') {
            c.next();
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

fn parse(input: TokenStream) -> Result<Input, String> {
    let mut c = Cursor::new(input);
    let metas = c.parse_attrs()?;
    let attrs = container_attrs(&metas);
    c.parse_vis();
    let kind = c.expect_ident()?;
    let name = c.expect_ident()?;
    if c.at_punct('<') {
        return Err(format!(
            "the offline serde derive does not support generic types (deriving on `{name}`)"
        ));
    }
    match kind.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Input::NamedStruct {
                    name,
                    attrs,
                    fields: parse_named_fields(g.stream())?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Input::TupleStruct {
                    name,
                    attrs,
                    arity: parse_tuple_arity(g.stream())?,
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Input::UnitStruct { name }),
            other => Err(format!("unexpected struct body: {other:?}")),
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Input::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            other => Err(format!("unexpected enum body: {other:?}")),
        },
        other => Err(format!("cannot derive serde traits for a `{other}`")),
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    match input {
        Input::NamedStruct {
            name,
            attrs,
            fields,
        } => {
            let body = if attrs.transparent {
                let f = fields.first().map(|f| f.name.clone()).unwrap_or_default();
                format!("::serde::Serialize::serialize_value(&self.{f})")
            } else {
                let mut pushes = String::new();
                for f in fields.iter().filter(|f| !f.attrs.skip) {
                    pushes.push_str(&format!(
                        "__fields.push((::std::string::String::from({n:?}), \
                         ::serde::Serialize::serialize_value(&self.{n})?));\n",
                        n = f.name
                    ));
                }
                format!(
                    "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> \
                     = ::std::vec::Vec::new();\n{pushes}\
                     ::core::result::Result::Ok(::serde::Value::Object(__fields))"
                )
            };
            wrap_serialize(name, &body)
        }
        Input::TupleStruct { name, attrs, arity } => {
            let body = if attrs.transparent || *arity == 1 {
                "::serde::Serialize::serialize_value(&self.0)".to_string()
            } else {
                let items = (0..*arity)
                    .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})?"))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("::core::result::Result::Ok(::serde::Value::Array(::std::vec![{items}]))")
            };
            wrap_serialize(name, &body)
        }
        Input::UnitStruct { name } => {
            wrap_serialize(name, "::core::result::Result::Ok(::serde::Value::Null)")
        }
        Input::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::core::result::Result::Ok(\
                         ::serde::Value::String(::std::string::String::from({vn:?}))),\n"
                    )),
                    VariantShape::Tuple(arity) => {
                        let binds = (0..*arity)
                            .map(|i| format!("__b{i}"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        let inner = if *arity == 1 {
                            "::serde::Serialize::serialize_value(__b0)?".to_string()
                        } else {
                            let items = (0..*arity)
                                .map(|i| format!("::serde::Serialize::serialize_value(__b{i})?"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!("::serde::Value::Array(::std::vec![{items}])")
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::core::result::Result::Ok(\
                             ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from({vn:?}), {inner})])),\n"
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds = fields
                            .iter()
                            .map(|f| f.name.clone())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let mut pushes = String::new();
                        for f in fields.iter().filter(|f| !f.attrs.skip) {
                            pushes.push_str(&format!(
                                "__fields.push((::std::string::String::from({n:?}), \
                                 ::serde::Serialize::serialize_value({n})?));\n",
                                n = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n\
                             let mut __fields: ::std::vec::Vec<(::std::string::String, \
                             ::serde::Value)> = ::std::vec::Vec::new();\n{pushes}\
                             ::core::result::Result::Ok(::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from({vn:?}), \
                             ::serde::Value::Object(__fields))]))\n}}\n"
                        ));
                    }
                }
            }
            wrap_serialize(name, &format!("match self {{\n{arms}\n}}"))
        }
    }
}

fn wrap_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> ::core::result::Result<::serde::Value, ::serde::Error> \
         {{\n{body}\n}}\n}}\n"
    )
}

fn named_field_deser(container: &str, fields: &[Field], deny_unknown: bool) -> String {
    let mut out = String::new();
    if deny_unknown {
        let known = fields
            .iter()
            .filter(|f| !f.attrs.skip)
            .map(|f| format!("{:?}", f.name))
            .collect::<Vec<_>>()
            .join(" | ");
        let arms = if known.is_empty() {
            String::new()
        } else {
            format!("{known} => {{}}\n")
        };
        out.push_str(&format!(
            "for (__k, _) in __obj.iter() {{ match __k.as_str() {{\n{arms}\
             __other => return ::core::result::Result::Err(::serde::Error::custom(\
             ::std::format!(\"unknown field `{{}}` in {container}\", __other))),\n}} }}\n"
        ));
    }
    let mut inits = String::new();
    for f in fields {
        let n = &f.name;
        let missing = if let Some(path) = &f.attrs.default_fn {
            format!("{path}()")
        } else if f.attrs.default_std || f.attrs.skip {
            "::core::default::Default::default()".to_string()
        } else {
            format!(
                "return ::core::result::Result::Err(::serde::Error::custom(\
                 \"missing field `{n}` in {container}\"))"
            )
        };
        if f.attrs.skip {
            inits.push_str(&format!("{n}: {missing},\n"));
        } else {
            inits.push_str(&format!(
                "{n}: match ::serde::find_field(__obj, {n:?}) {{\n\
                 ::core::option::Option::Some(__v) => \
                 ::serde::Deserialize::deserialize_value(__v)?,\n\
                 ::core::option::Option::None => {missing},\n}},\n"
            ));
        }
    }
    out.push_str(&format!(
        "::core::result::Result::Ok({container} {{\n{inits}}})"
    ));
    out
}

fn gen_deserialize(input: &Input) -> String {
    match input {
        Input::NamedStruct {
            name,
            attrs,
            fields,
        } => {
            let body = if attrs.transparent {
                let f = fields.first().map(|f| f.name.clone()).unwrap_or_default();
                format!(
                    "::core::result::Result::Ok({name} {{ {f}: \
                     ::serde::Deserialize::deserialize_value(__value)? }})"
                )
            } else {
                format!(
                    "let __obj = match __value {{\n\
                     ::serde::Value::Object(__m) => __m,\n\
                     _ => return ::core::result::Result::Err(::serde::Error::custom(\
                     \"expected a JSON object for {name}\")),\n}};\n{}",
                    named_field_deser(name, fields, attrs.deny_unknown_fields)
                )
            };
            wrap_deserialize(name, &body)
        }
        Input::TupleStruct { name, attrs, arity } => {
            let body = if attrs.transparent || *arity == 1 {
                format!(
                    "::core::result::Result::Ok({name}(\
                     ::serde::Deserialize::deserialize_value(__value)?))"
                )
            } else {
                let items = (0..*arity)
                    .map(|i| {
                        format!(
                            "::serde::Deserialize::deserialize_value(\
                             __arr.get({i}).ok_or_else(|| ::serde::Error::custom(\
                             \"tuple struct {name} needs {arity} elements\"))?)?"
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                format!(
                    "let __arr = match __value {{\n\
                     ::serde::Value::Array(__a) => __a,\n\
                     _ => return ::core::result::Result::Err(::serde::Error::custom(\
                     \"expected a JSON array for {name}\")),\n}};\n\
                     ::core::result::Result::Ok({name}({items}))"
                )
            };
            wrap_deserialize(name, &body)
        }
        Input::UnitStruct { name } => {
            wrap_deserialize(name, &format!("::core::result::Result::Ok({name})"))
        }
        Input::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => unit_arms.push_str(&format!(
                        "{vn:?} => ::core::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantShape::Tuple(arity) => {
                        let inner = if *arity == 1 {
                            format!(
                                "::core::result::Result::Ok({name}::{vn}(\
                                 ::serde::Deserialize::deserialize_value(__inner)?))"
                            )
                        } else {
                            let items = (0..*arity)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::deserialize_value(\
                                         __arr.get({i}).ok_or_else(|| ::serde::Error::custom(\
                                         \"variant {name}::{vn} needs {arity} elements\"))?)?"
                                    )
                                })
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "let __arr = match __inner {{\n\
                                 ::serde::Value::Array(__a) => __a,\n\
                                 _ => return ::core::result::Result::Err(::serde::Error::custom(\
                                 \"expected array for variant {name}::{vn}\")),\n}};\n\
                                 ::core::result::Result::Ok({name}::{vn}({items}))"
                            )
                        };
                        tagged_arms.push_str(&format!("{vn:?} => {{ {inner} }}\n"));
                    }
                    VariantShape::Struct(fields) => {
                        let body = format!(
                            "let __obj = match __inner {{\n\
                             ::serde::Value::Object(__m) => __m,\n\
                             _ => return ::core::result::Result::Err(::serde::Error::custom(\
                             \"expected object for variant {name}::{vn}\")),\n}};\n{}",
                            named_field_deser(&format!("{name}::{vn}"), fields, false)
                        );
                        tagged_arms.push_str(&format!("{vn:?} => {{ {body} }}\n"));
                    }
                }
            }
            let body = format!(
                "match __value {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => ::core::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown variant `{{}}` of {name}\", __other))),\n}},\n\
                 ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                 let (__tag, __inner) = &__m[0];\n\
                 match __tag.as_str() {{\n{tagged_arms}\
                 __other => ::core::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown variant `{{}}` of {name}\", __other))),\n}}\n}},\n\
                 _ => ::core::result::Result::Err(::serde::Error::custom(\
                 \"expected a string or single-key object for enum {name}\")),\n}}"
            );
            wrap_deserialize(name, &body)
        }
    }
}

fn wrap_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize_value(__value: &::serde::Value) -> \
         ::core::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}
