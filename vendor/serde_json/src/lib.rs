//! Offline stand-in for `serde_json` (see `vendor/README.md`).
//!
//! Renders and parses JSON text over the serde stand-in's [`Value`]
//! tree. Behavior intentionally matches the real `serde_json` where the
//! workspace depends on it:
//!
//! - floats print in Rust's shortest round-trip form, with a trailing
//!   `.0` added for integral values (`400.0`, not `400`), so every
//!   finite `f64` survives a text round-trip bit-exactly (the
//!   `float_roundtrip` behavior);
//! - non-finite floats render as `null`;
//! - `to_string_pretty` indents with two spaces and separates keys with
//!   `": "`;
//! - object key order is preserved, so equal values render to equal
//!   bytes — the canonical-JSON property `npp-sweep`'s result cache
//!   hashes rely on.

#![forbid(unsafe_code)]

use serde::{Deserialize, Number, Serialize};

pub use serde::{Error, Value};

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Propagates serialization failures from the value's impl.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value()?, None, 0);
    Ok(out)
}

/// Serializes a value to pretty JSON (2-space indent).
///
/// # Errors
///
/// Propagates serialization failures from the value's impl.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value()?, Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Propagates serialization failures from the value's impl.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    value.serialize_value()
}

/// Rebuilds a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Fails on shape or domain mismatches.
pub fn from_value<T: for<'de> Deserialize<'de>>(value: &Value) -> Result<T> {
    T::deserialize_value(value)
}

/// Parses JSON text into a typed value.
///
/// # Errors
///
/// Fails on malformed JSON or shape mismatches.
pub fn from_str<T: for<'de> Deserialize<'de>>(text: &str) -> Result<T> {
    let value = parse(text)?;
    T::deserialize_value(&value)
}

/// Parses JSON bytes (must be UTF-8) into a typed value.
///
/// # Errors
///
/// Fails on invalid UTF-8, malformed JSON, or shape mismatches.
pub fn from_slice<T: for<'de> Deserialize<'de>>(bytes: &[u8]) -> Result<T> {
    let text =
        std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid UTF-8: {e}")))?;
    from_str(text)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

/// Formats an `f64` the way `serde_json` does: shortest round-trip
/// decimal, with `.0` appended to integral values; `null` if non-finite.
fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(Number::PosInt(u)) => out.push_str(&u.to_string()),
        Value::Number(Number::NegInt(i)) => out.push_str(&i.to_string()),
        Value::Number(Number::Float(f)) => write_f64(out, *f),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`] tree.
///
/// # Errors
///
/// Fails on malformed JSON or trailing garbage.
pub fn parse(text: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON input"))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::String),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::custom(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]`, found `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            entries.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}`, found `{}` at byte {}",
                        other as char, self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::custom("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("invalid \\u escape"))?;
                            // Surrogate pairs: decode the low half if present.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    let lo_hex = self
                                        .bytes
                                        .get(self.pos + 2..self.pos + 6)
                                        .ok_or_else(|| Error::custom("truncated surrogate"))?;
                                    let lo = u32::from_str_radix(
                                        std::str::from_utf8(lo_hex)
                                            .map_err(|_| Error::custom("invalid surrogate"))?,
                                        16,
                                    )
                                    .map_err(|_| Error::custom("invalid surrogate"))?;
                                    self.pos += 6;
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| Error::custom("invalid unicode escape"))?);
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::custom("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|e| Error::custom(format!("invalid number `{text}`: {e}")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_formatting_matches_serde_json() {
        assert_eq!(to_string(&400.0f64).unwrap(), "400.0");
        assert_eq!(to_string(&0.047f64).unwrap(), "0.047");
        assert_eq!(to_string(&-1.5f64).unwrap(), "-1.5");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn f64_text_round_trip_is_exact() {
        for v in [
            0.1,
            -196362500211917.94,
            1e-12,
            123_456_789.123_456_79,
            f64::MIN_POSITIVE,
        ] {
            let s = to_string(&v).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} -> {s} -> {back}");
        }
    }

    #[test]
    fn integers_stay_exact() {
        let big = u64::MAX - 1;
        let s = to_string(&big).unwrap();
        assert_eq!(s, format!("{big}"));
        let back: u64 = from_str(&s).unwrap();
        assert_eq!(back, big);
    }

    #[test]
    fn pretty_layout() {
        #[derive(serde::Serialize)]
        struct Row {
            bw: f64,
            label: String,
        }
        let s = to_string_pretty(&Row {
            bw: 400.0,
            label: "x".into(),
        })
        .unwrap();
        assert!(s.contains("\"bw\": 400.0"), "{s}");
        assert!(s.contains("\"label\": \"x\""), "{s}");
    }

    #[test]
    fn parse_nested() {
        let v: Value = from_str(r#"{"a": [1, 2.5, null, true, "s\n"], "b": {"c": -3}}"#).unwrap();
        assert!(v["a"].is_array());
        assert_eq!(v["a"][1], 2.5);
        assert_eq!(v["a"][3], true);
        assert_eq!(v["b"]["c"].as_f64(), Some(-3.0));
        assert_eq!(v["a"][4].as_str(), Some("s\n"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("123 456").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn escapes_round_trip() {
        let s = "quote\" back\\ nl\n tab\t unicode\u{1F600}";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
