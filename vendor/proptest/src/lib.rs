//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Covers the slice of the proptest API this workspace uses: the
//! [`proptest!`] macro with `#![proptest_config(...)]`, range/`Just`/
//! `any::<bool>()`/tuple/`prop_oneof!`/`prop::collection::vec`
//! strategies, and `prop_assert!`/`prop_assert_eq!`. Cases are sampled
//! from a deterministic per-test seed, so failures reproduce across
//! runs. There is no shrinking: a failing case reports the values via
//! the assertion message instead of minimizing them.

#![forbid(unsafe_code)]

use rand::{Rng, SeedableRng, StdRng};

/// A source of random typed values, mirroring `proptest::strategy::Strategy`.
///
/// Object-safe by design so [`prop_oneof!`] can mix heterogeneous
/// strategies behind `Box<dyn Strategy<Value = T>>`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Boxes the strategy for heterogeneous collections.
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Boxes a strategy; helper for the [`prop_oneof!`] expansion.
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Always produces a clone of the wrapped value, like `proptest::strategy::Just`.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical default strategy, mirroring `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// The default strategy for this type.
    type Strategy: Strategy<Value = Self>;

    /// Returns the default strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Returns the default strategy for `T`, like `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Uniform coin flip; `any::<bool>()`'s strategy.
#[derive(Clone, Copy, Debug)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn sample(&self, rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// Full-range integer strategy backing `any::<{integer}>()`.
#[derive(Clone, Copy, Debug)]
pub struct AnyInt<T>(std::marker::PhantomData<T>);

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyInt<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyInt<$t>;
            fn arbitrary() -> AnyInt<$t> {
                AnyInt(std::marker::PhantomData)
            }
        }
    )*};
}

any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Weighted union of boxed strategies; the [`prop_oneof!`] backing type.
pub struct OneOf<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u64,
}

impl<T> OneOf<T> {
    /// Builds a union from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        OneOf { arms, total }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let mut pick = rng.random_range(0u64..self.total);
        for (weight, strat) in &self.arms {
            let w = u64::from(*weight);
            if pick < w {
                return strat.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

/// Length bounds for collection strategies, mirroring `proptest::collection::SizeRange`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        SizeRange {
            start: r.start,
            end: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            start: n,
            end: n + 1,
        }
    }
}

/// Collection strategies, reachable as `prop::collection::*` via the prelude.
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::{Rng, StdRng};

    /// Samples a `Vec` whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.end > self.size.start {
                rng.random_range(self.size.start..self.size.end)
            } else {
                self.size.start
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-test knobs, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Drives one property: runs `config.cases` sampled cases with a
/// deterministic per-test seed.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) on the first case whose
/// closure returns `Err`.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut StdRng) -> Result<(), String>,
{
    // FNV-1a over the test name keeps seeds stable across runs and
    // distinct across tests.
    let mut name_hash = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        name_hash ^= u64::from(b);
        name_hash = name_hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for case in 0..config.cases {
        let seed = name_hash ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(case) + 1);
        let mut rng = StdRng::seed_from_u64(seed);
        if let Err(msg) = f(&mut rng) {
            panic!("property `{name}` failed on case {case} (seed {seed:#x}): {msg}");
        }
    }
}

/// Declares property tests; supports the subset of the real macro's
/// grammar used in this workspace.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                $crate::run_cases(&__config, stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), __rng);)+
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (move || {
                            $body
                            Ok(())
                        })();
                    __outcome
                });
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current property case if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        // Bound to a local first so clippy lints on the caller's
        // expression (e.g. `neg_cmp_op_on_partial_ord`) don't fire on
        // the macro-generated negation.
        let __prop_assert_holds: bool = $cond;
        if !__prop_assert_holds {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fails the current property case if the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l == __r, $($fmt)+);
    }};
}

/// Picks among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$(($weight, $crate::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$((1u32, $crate::boxed($strat))),+])
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, boxed, Arbitrary, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_f64() -> impl Strategy<Value = f64> {
        1e-3..1e3f64
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        fn ranges_and_tuples(x in 0.0..=1.0f64, (a, b) in (0usize..16, 0usize..16)) {
            prop_assert!((0.0..=1.0).contains(&x));
            prop_assert!(a < 16 && b < 16);
        }

        fn oneof_and_vec(
            v in prop::collection::vec((0u64..10, any::<bool>()), 0..8),
            pick in prop_oneof![Just(1u32), Just(2u32), 3u32..5],
        ) {
            prop_assert!(v.len() < 8);
            for (n, _flag) in &v {
                prop_assert!(*n < 10);
            }
            prop_assert!((1..5).contains(&pick));
        }

        fn helper_strategy(y in small_f64()) {
            prop_assert!(y > 0.0, "y was {}", y);
            prop_assert_eq!(y, y);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut runs = Vec::new();
        for _ in 0..2 {
            let mut seen = Vec::new();
            crate::run_cases(&ProptestConfig::with_cases(5), "determinism", |rng| {
                seen.push(Strategy::sample(&(0u64..1000), rng));
                Ok(())
            });
            runs.push(seen);
        }
        assert_eq!(runs[0], runs[1]);
    }

    #[test]
    #[should_panic(expected = "property `failing` failed")]
    fn failing_case_panics() {
        crate::run_cases(&ProptestConfig::with_cases(3), "failing", |_rng| {
            Err("boom".to_string())
        });
    }
}
