//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Keeps `cargo bench -p npp-bench` runnable without the real harness:
//! each benchmark runs a short warm-up, then a fixed number of timed
//! iterations, and prints the mean wall-clock time per iteration. No
//! statistics, outlier analysis, or HTML reports.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Iteration driver handed to each benchmark closure.
pub struct Bencher {
    samples: u64,
    /// Mean time per iteration, recorded by [`Bencher::iter`].
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, first warming up, then averaging `samples` runs.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..3 {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed = start.elapsed() / u32::try_from(self.samples).unwrap_or(1);
    }
}

/// Throughput annotation; accepted and echoed, not analyzed.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark registry, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    sample_size: u64,
}

impl Criterion {
    fn effective_samples(&self) -> u64 {
        if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        }
    }

    /// Runs a standalone benchmark and prints its mean iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.effective_samples(), None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A named group of benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark averages over.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Records the per-iteration throughput for display.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    samples: u64,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    let mut b = Bencher {
        samples: samples.max(1),
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed;
    match throughput {
        Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
            let rate = n as f64 / per_iter.as_secs_f64();
            println!("bench {name}: {per_iter:?}/iter ({rate:.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
            let rate = n as f64 / per_iter.as_secs_f64();
            println!("bench {name}: {per_iter:?}/iter ({rate:.0} B/s)");
        }
        _ => println!("bench {name}: {per_iter:?}/iter"),
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy(c: &mut Criterion) {
        c.bench_function("busy", |b| b.iter(|| black_box((0..100).sum::<u64>())));
        let mut g = c.benchmark_group("grouped");
        g.sample_size(5);
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| black_box((0..100).sum::<u64>())));
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        busy(&mut c);
    }
}
