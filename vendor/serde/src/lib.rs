//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! The build environment for this workspace has no access to crates.io,
//! so the real `serde` cannot be vendored. This crate provides the small
//! slice of its surface the workspace uses, built around an in-memory
//! JSON-like [`Value`] tree instead of serde's zero-copy visitor model:
//!
//! - [`Serialize`] / [`Deserialize`] traits (the latter keeps the `'de`
//!   lifetime parameter so `for<'de> Deserialize<'de>` bounds compile
//!   unchanged);
//! - `#[derive(Serialize, Deserialize)]` re-exported from the sibling
//!   `serde_derive` stand-in;
//! - impls for the primitives, strings, `Option`, `Vec`, slices, arrays,
//!   and tuples used across the workspace.
//!
//! The companion `serde_json` stand-in renders and parses [`Value`]
//! trees as JSON text. Field order is preserved (declaration order for
//! derived structs), which gives every serialization a canonical byte
//! representation — `npp-sweep` relies on that for content-addressed
//! result caching.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON-like value tree: the serialization currency of the
/// stand-in (the counterpart of `serde_json::Value`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// JSON numbers (integers kept exact).
    Number(Number),
    /// JSON strings.
    String(String),
    /// JSON arrays.
    Array(Vec<Value>),
    /// JSON objects; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// A JSON number: integers kept exact, everything else an `f64`.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A float (also produced for `1.0`-style literals).
    Float(f64),
}

impl Number {
    /// The numeric value as an `f64` (lossy beyond 2^53).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::PosInt(u) => u as f64,
            Number::NegInt(i) => i as f64,
            Number::Float(f) => f,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::PosInt(u) => Some(u),
            Number::NegInt(_) => None,
            Number::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// The value as an `i64` if it is an integer in range.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::PosInt(u) => i64::try_from(u).ok(),
            Number::NegInt(i) => Some(i),
            Number::Float(f)
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 =>
            {
                Some(f as i64)
            }
            Number::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::PosInt(a), Number::PosInt(b)) => a == b,
            (Number::NegInt(a), Number::NegInt(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

static NULL: Value = Value::Null;

impl Value {
    /// `true` for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// `true` for `Value::Array`.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// `true` for `Value::Object`.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The entries if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The string slice if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The boolean if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| find_field(m, key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<Value> for f64 {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Finds a field by name in an object's entry list (first match wins,
/// like `serde_json`).
pub fn find_field<'a>(obj: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom<T: core::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Builds the value tree for `self`.
    ///
    /// # Errors
    ///
    /// Implementations may reject unrepresentable states.
    fn serialize_value(&self) -> Result<Value, Error>;
}

/// Types that can be rebuilt from a [`Value`] tree.
///
/// The `'de` lifetime parameter exists only for source compatibility
/// with the real serde (`for<'de> Deserialize<'de>` bounds); the
/// stand-in always deserializes from an owned tree.
pub trait Deserialize<'de>: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Fails on shape or domain mismatches.
    fn deserialize_value(value: &Value) -> Result<Self, Error>;
}

// --- primitive impls -------------------------------------------------------

impl Serialize for Value {
    fn serialize_value(&self) -> Result<Value, Error> {
        Ok(self.clone())
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Result<Value, Error> {
        Ok(Value::Bool(*self))
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom("expected a boolean"))
    }
}

macro_rules! uint_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Result<Value, Error> {
                Ok(Value::Number(Number::PosInt(*self as u64)))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected a ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}
uint_impls!(u8, u16, u32, u64, usize);

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Result<Value, Error> {
                let v = *self as i64;
                Ok(if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                })
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::Number(n) => n
                        .as_i64()
                        .ok_or_else(|| Error::custom(concat!("expected a ", stringify!($t))))?,
                    _ => return Err(Error::custom(concat!("expected a ", stringify!($t)))),
                };
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}
int_impls!(i8, i16, i32, i64, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Result<Value, Error> {
                Ok(Value::Number(Number::Float(*self as f64)))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Number(n) => Ok(n.as_f64() as $t),
                    // serde_json writes non-finite floats as null.
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(Error::custom(concat!("expected a ", stringify!($t)))),
                }
            }
        }
    )*};
}
float_impls!(f32, f64);

impl Serialize for String {
    fn serialize_value(&self) -> Result<Value, Error> {
        Ok(Value::String(self.clone()))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected a string"))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Result<Value, Error> {
        Ok(Value::String(self.to_string()))
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Result<Value, Error> {
        Ok(Value::String(self.to_string()))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Result<Value, Error> {
        (**self).serialize_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_value(&self) -> Result<Value, Error> {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Result<Value, Error> {
        match self {
            Some(v) => v.serialize_value(),
            None => Ok(Value::Null),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Result<Value, Error> {
        Ok(Value::Array(
            self.iter()
                .map(T::serialize_value)
                .collect::<Result<_, _>>()?,
        ))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Result<Value, Error> {
        self.as_slice().serialize_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            _ => Err(Error::custom("expected an array")),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize_value(&self) -> Result<Value, Error> {
        Ok(Value::Array(
            self.iter()
                .map(T::serialize_value)
                .collect::<Result<_, _>>()?,
        ))
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            _ => Err(Error::custom("expected an array")),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_value(&self) -> Result<Value, Error> {
        // Keys must serialize to strings, as in JSON object keys.
        let mut entries = Vec::with_capacity(self.len());
        for (k, v) in self {
            match k.serialize_value()? {
                Value::String(s) => entries.push((s, v.serialize_value()?)),
                _ => return Err(Error::custom("map key must serialize to a string")),
            }
        }
        Ok(Value::Object(entries))
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for std::collections::BTreeMap<String, V> {
    fn deserialize_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
                .collect(),
            _ => Err(Error::custom("expected an object")),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Result<Value, Error> {
        self.as_slice().serialize_value()
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Result<Value, Error> {
                Ok(Value::Array(vec![$(self.$n.serialize_value()?),+]))
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize_value(value: &Value) -> Result<Self, Error> {
                let arr = match value {
                    Value::Array(a) => a,
                    _ => return Err(Error::custom("expected a tuple array")),
                };
                let expected = [$($n,)+].len();
                if arr.len() != expected {
                    return Err(Error::custom(format!(
                        "expected a tuple of {expected} elements, got {}",
                        arr.len()
                    )));
                }
                Ok(($($t::deserialize_value(&arr[$n])?,)+))
            }
        }
    )*};
}
tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_indexing_and_eq() {
        let v = Value::Object(vec![
            ("x".into(), Value::Number(Number::Float(0.5))),
            ("arr".into(), Value::Array(vec![Value::Bool(true)])),
        ]);
        assert_eq!(v["x"], 0.5);
        assert!(v["arr"].is_array());
        assert!(v["missing"].is_null());
        assert_eq!(v["arr"][0], true);
        assert!(v["arr"][9].is_null());
    }

    #[test]
    fn number_integer_float_eq() {
        assert_eq!(Value::Number(Number::PosInt(3)), 3.0);
        assert_eq!(Number::PosInt(4), Number::Float(4.0));
        assert_eq!(Number::NegInt(-4).as_i64(), Some(-4));
    }

    #[test]
    fn option_and_tuple_round_trip() {
        let v = (1u64, -2i64, "hi".to_string(), Some(0.25f64));
        let tree = v.serialize_value().unwrap();
        let back: (u64, i64, String, Option<f64>) = Deserialize::deserialize_value(&tree).unwrap();
        assert_eq!(back, v);
        let none: Option<f64> = Deserialize::deserialize_value(&Value::Null).unwrap();
        assert_eq!(none, None);
    }
}
