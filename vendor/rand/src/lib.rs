//! Offline stand-in for `rand` 0.9 (see `vendor/README.md`).
//!
//! Implements the slice of the `rand` API this workspace uses:
//! `rand::rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::random_range` over float and integer ranges. The generator is
//! xoshiro256++ seeded through SplitMix64 — a different stream than the
//! real `StdRng` (ChaCha12), but equally deterministic and of high
//! enough quality for the simulation workloads here (the Poisson source
//! tests assert the empirical mean rate lands within 10%).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Deterministic construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed. Same seed, same stream.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, matching the real `rand`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Samples a uniform `f64` in `[0, 1)`.
    fn random_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        // 53 high bits give a uniform dyadic rational in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range that knows how to sample itself uniformly, mirroring
/// `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end - self.start;
        let v = self.start + rng.random_f64() * span;
        // Guard the half-open upper bound against rounding.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + rng.random_f64() * (end - start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = bounded_u128(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128;
                if span == u128::from(u64::MAX) {
                    return (start as i128 + rng.next_u64() as i128) as $t;
                }
                let v = bounded_u128(rng, span + 1);
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, bound)` via rejection sampling (`bound <= 2^64`).
fn bounded_u128<R: Rng>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0 && bound <= 1 << 64);
    if bound == 1 << 64 {
        return u128::from(rng.next_u64());
    }
    let bound64 = bound as u64;
    // Reject the biased tail of the u64 space.
    let zone = u64::MAX - (u64::MAX % bound64 + 1) % bound64;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return u128::from(v % bound64);
        }
    }
}

/// RNG implementations namespace, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expands the seed into the full 256-bit state,
            // per the xoshiro authors' recommendation.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.random_range(2.0..5.0);
            assert!((2.0..5.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 3.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn tiny_open_range_used_by_poisson_source() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            assert!((f64::MIN_POSITIVE..1.0).contains(&v));
            assert!(v.ln().is_finite());
        }
    }

    #[test]
    fn int_ranges_uniform_enough() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 6];
        for _ in 0..60_000 {
            counts[rng.random_range(0usize..6)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "counts {counts:?}");
        }
        let v = rng.random_range(-5i64..=5);
        assert!((-5..=5).contains(&v));
    }

    #[test]
    fn negative_float_range() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..100 {
            let v = rng.random_range(-0.25..0.25);
            assert!((-0.25..0.25).contains(&v));
        }
    }
}
